"""The end-to-end design & verification flow -- the paper's Figure 2.

:func:`run_flow` executes every stage of the methodology in order:

1. **UML level** -- build the class / use-case / modified sequence
   diagrams, validate their consistency, extract the latency properties.
2. **ASM level** -- build the N-bank ASM model and model check the full
   PSL property suite by guided exploration (Table 1's procedure).  A
   failure carries a counterexample path back ("when the verification
   terminates with an error, we update UML specification and re-capture").
3. **Translation** -- construct the SystemC-level model (the ASM -> SystemC
   syntax transformation) and run the ASM/SystemC conformance co-execution.
4. **ABV** -- simulate random host traffic on the kernel model with the
   external PSL monitors attached.
5. **RTL refinement** -- build the synthesizable RTL, emit Verilog text.
6. **RTL model checking** -- re-verify the Read-Mode property with the
   RuleBase-style symbolic checker (Table 2's procedure).
7. **OVL** -- simulate the same traffic on the RTL with the OVL checker
   modules loaded (Table 3's right-hand side).

Each stage's outcome lands in a :class:`FlowReport`; the flow stops at
the first failing stage (the Figure 2 feedback edge).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional

from ..abv import summarize
from ..asm import AsmModelChecker, ExplorationConfig
from ..rtl import RtlSimulator, elaborate, emit_verilog
from .asm_model import La1AsmConfig, build_la1_asm
from .conformance import check_la1_conformance
from .monitors import attach_read_mode_monitors
from .ovl_bindings import build_la1_top_with_ovl
from .properties import asm_labeling, device_property_suite
from .rulebase import check_read_mode_rtl
from .rtl_testbench import RtlHost
from .spec import La1Config
from .sysc_model import build_la1_system
from .uml_spec import (
    extracted_properties,
    la1_class_diagram,
    la1_use_cases,
    read_mode_sequence,
    write_mode_sequence,
)

__all__ = ["FlowConfig", "StageResult", "FlowReport", "run_flow"]


@dataclass
class FlowConfig:
    """Parameters of one flow run."""

    banks: int = 2
    #: concrete scale of the simulation-level models
    la1_config: Optional[La1Config] = None
    #: ASM exploration scale
    asm_config: Optional[La1AsmConfig] = None
    #: random host transactions driven during the ABV and OVL stages
    traffic: int = 40
    seed: int = 2004
    #: conformance co-execution depth (half-cycles)
    conformance_depth: int = 4
    #: run the RTL symbolic MC stage on the control abstraction (fast)
    #: or the full datapath ("full", minutes) or skip it (None)
    rtl_mc: Optional[str] = "control"
    #: engine of the RTL MC stage: "bdd" (RuleBase-style reachability)
    #: or "sat" (CNF-unrolled BMC + k-induction, repro.sat -- proves
    #: the 4-bank suite the BDD engine explodes on)
    mc_engine: str = "bdd"
    #: run the static-analysis stage (repro.lint) over the refined RTL,
    #: the PSL suite and the ASM model before model checking
    static_lint: bool = True
    #: RTL simulator backend for the OVL stage: "compiled" (codegen) or
    #: "interp" (the tree-walking reference semantics)
    rtl_backend: str = "compiled"
    #: collect cross-level coverage (repro.cover) during the ASM, ABV
    #: and OVL stages and append a merged closure stage to the report
    coverage: bool = True
    #: coverage fraction the merged DB must reach for the coverage
    #: stage to pass; structural toggle points (every SRAM bit has a
    #: rose and a fell target) dominate the denominator, so short flows
    #: sit low even when the behavioural levels are closed
    coverage_threshold: float = 0.10
    #: process-pool width for the parallelizable stages (repro.par);
    #: jobs > 1 sweeps the RTL model-checking stage's read-mode
    #: conjuncts one process per property -- verdicts are identical to
    #: jobs=1, which checks their conjunction in a single run
    jobs: int = 1
    #: service-grade supervision knobs for the sharded stages
    #: (repro.par.supervise; jobs > 1 only): attempts each shard gets
    #: before quarantine, and the per-shard wall-clock after which a
    #: hung worker is killed and the shard retried.  A quarantined
    #: MC property degrades the stage to inconclusive (FAIL), never to
    #: a silent pass
    shard_attempts: int = 2
    shard_deadline_s: Optional[float] = None
    #: bit-parallel lane width for the OVL simulation stage; lanes > 1
    #: runs it on the "bitpar" backend (rtl_backend then applies to the
    #: other RTL consumers only) with broadcast traffic and lane-0
    #: observation -- stage results and harvested coverage are
    #: identical to lanes=1
    lanes: int = 1
    #: stimulus patterns for the OVL stage: with lanes > 1 and
    #: patterns > 1, lane p drives pattern p of the traffic workload
    #: (shared command schedule, re-drawn addresses/data -- the PPSFP
    #: pattern axis, repro.core.traffic), so one pass sweeps
    #: min(patterns, lanes) OVL-checked stimulus variants; every driven
    #: lane's monitors must stay clean for the stage to pass.  Harvested
    #: coverage stays the lane-0 (pattern-0) view
    patterns: int = 1

    def resolved_la1(self) -> La1Config:
        return self.la1_config or La1Config(banks=self.banks, beat_bits=16,
                                            addr_bits=4)

    def resolved_asm(self) -> La1AsmConfig:
        return self.asm_config or La1AsmConfig(banks=self.banks)


@dataclass
class StageResult:
    """Outcome of one flow stage."""

    name: str
    ok: bool
    detail: str = ""
    cpu_time: float = 0.0
    data: object = None

    def __repr__(self):
        flag = "ok" if self.ok else "FAILED"
        return f"StageResult({self.name}: {flag}, {self.cpu_time:.2f}s)"


@dataclass
class FlowReport:
    """All stage results of a flow run."""

    config: FlowConfig
    stages: list[StageResult] = field(default_factory=list)
    verilog: str = ""

    @property
    def ok(self) -> bool:
        """True when every executed stage passed."""
        return all(stage.ok for stage in self.stages)

    def stage(self, name: str) -> Optional[StageResult]:
        """Look up a stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def render(self) -> str:
        """Human-readable flow summary."""
        lines = [f"LA-1 flow ({self.config.banks} banks):"]
        for stage in self.stages:
            flag = "PASS" if stage.ok else "FAIL"
            lines.append(
                f"  [{flag}] {stage.name:<24} {stage.cpu_time:7.2f}s  "
                f"{stage.detail}"
            )
        lines.append(f"  overall: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _traffic(host, config: La1Config, count: int, seed: int) -> None:
    rng = random.Random(seed)
    word_max = (1 << config.word_bits) - 1
    for __ in range(count):
        bank = rng.randrange(config.banks)
        addr = rng.randrange(config.mem_words)
        if rng.random() < 0.5:
            host.read(bank, addr)
        else:
            host.write(bank, addr, rng.randint(0, word_max))


def run_flow(config: Optional[FlowConfig] = None) -> FlowReport:
    """Execute the Figure 2 flow; stops at the first failing stage."""
    config = config or FlowConfig()
    report = FlowReport(config)
    la1 = config.resolved_la1()
    cover_db = None
    if config.coverage:
        from ..cover import CoverageDB

        cover_db = CoverageDB(meta={"flow": f"la1_{config.banks}banks",
                                    "seed": config.seed})

    # ------------------------------------------------------ 1. UML level
    start = time.perf_counter()
    classes = la1_class_diagram()
    problems = classes.validate()
    problems += la1_use_cases().validate()
    problems += read_mode_sequence(classes).validate()
    problems += write_mode_sequence(classes).validate()
    extracted = extracted_properties()
    report.stages.append(StageResult(
        "uml", not problems,
        f"{len(classes.classes)} classes, {len(extracted)} extracted "
        f"properties" + (f"; problems: {problems}" if problems else ""),
        time.perf_counter() - start,
        data=extracted,
    ))
    if problems:
        return report

    # ------------------------------------------------------ 2. ASM level
    start = time.perf_counter()
    machine = build_la1_asm(config.resolved_asm())
    asm_cov = None
    if cover_db is not None:
        from ..cover import AsmCoverage, la1_state_predicates

        # exploration fires the machine's rules, so the observer sees
        # every transition the model checker takes
        asm_cov = AsmCoverage(machine, la1_state_predicates(config.banks))
    suite = device_property_suite(config.banks)
    checker = AsmModelChecker(machine, asm_labeling(config.banks),
                              ExplorationConfig())
    result = checker.check_combined([p for __, p in suite], name="suite")
    if asm_cov is not None:
        asm_cov.detach()
        asm_cov.harvest(cover_db)
    report.stages.append(StageResult(
        "asm_model_checking", result.holds is True,
        f"{len(suite)} properties, {result.num_nodes} nodes, "
        f"{result.num_transitions} transitions",
        time.perf_counter() - start,
        data=result,
    ))
    if result.holds is not True:
        return report

    # ----------------------------------- 3. translation + conformance
    start = time.perf_counter()
    conformance = check_la1_conformance(
        La1AsmConfig(banks=min(config.banks, 2)),
        max_depth=config.conformance_depth,
    )
    report.stages.append(StageResult(
        "asm_to_systemc_conformance", conformance.conformant,
        f"{conformance.paths_checked} paths, "
        f"{conformance.steps_executed} steps"
        + ("" if conformance.conformant else f"; {conformance.divergence}"),
        time.perf_counter() - start,
        data=conformance,
    ))
    if not conformance.conformant:
        return report

    # ------------------------------------------------------ 4. ABV
    start = time.perf_counter()
    sim, clocks, device, host = build_la1_system(la1)
    monitors = attach_read_mode_monitors(sim, device, clocks)
    functional_cov = psl_cov = None
    if cover_db is not None:
        from ..cover import La1FunctionalCoverage, PslAssertionCoverage

        functional_cov = La1FunctionalCoverage(host)
        psl_cov = PslAssertionCoverage(monitors)
    _traffic(host, la1, config.traffic, config.seed)
    sim.run(config.traffic * 20 + 200)
    abv = summarize(monitors).finish()
    if functional_cov is not None:
        functional_cov.detach()
        psl_cov.detach()
        functional_cov.harvest(cover_db)
        psl_cov.harvest(cover_db)
    report.stages.append(StageResult(
        "systemc_abv", abv.passed,
        f"{len(monitors)} monitors, {monitors[0].samples} samples, "
        f"{len(host.results)} reads completed",
        time.perf_counter() - start,
        data=abv,
    ))
    if not abv.passed:
        return report

    # ------------------------------------------------------ 5. RTL
    start = time.perf_counter()
    from .rtl_model import build_la1_top_rtl

    top = build_la1_top_rtl(la1)
    report.verilog = emit_verilog(top)
    design = elaborate(top)
    report.stages.append(StageResult(
        "rtl_refinement", True,
        f"{design.stats()['regs']} regs, {design.stats()['nets']} nets, "
        f"{len(report.verilog.splitlines())} Verilog lines",
        time.perf_counter() - start,
        data=design.stats(),
    ))

    # --------------------------------------------- 5b. static analysis
    if config.static_lint:
        from ..lint import lint_la1

        start = time.perf_counter()
        lint_report = lint_la1(banks=config.banks)
        counts = lint_report.counts()
        report.stages.append(StageResult(
            "static_lint", lint_report.ok,
            f"{len(lint_report.pass_order)} passes, "
            f"{counts['error']} errors, {counts['warning']} warnings, "
            f"{counts['waived']} waived",
            time.perf_counter() - start,
            data=lint_report,
        ))
        if not lint_report.ok:
            return report

    # ------------------------------------------------ 6. RTL model check
    if config.rtl_mc is not None:
        start = time.perf_counter()
        degraded = ""
        if config.jobs > 1:
            # sweep the read-mode conjuncts one process per property;
            # the conjunction of the per-property verdicts equals the
            # single-run verdict of read_mode_property(0)
            from ..mc import sweep_rtl_properties
            from .properties import read_mode_suite

            sweep = sweep_rtl_properties(
                config.banks,
                read_mode_suite(1),
                datapath=(config.rtl_mc == "full"),
                jobs=config.jobs,
                shard_attempts=config.shard_attempts,
                shard_deadline_s=config.shard_deadline_s,
                engine=config.mc_engine,
            )
            mc = sweep.combined()
            # degraded-run visibility: a sweep that needed the
            # supervision ladder says so instead of passing silently
            par = sweep.par_stats
            notes = []
            if par.get("retries"):
                notes.append(f"{par['retries']} retries")
            if par.get("killed_workers"):
                notes.append(f"{par['killed_workers']} workers reaped")
            if sweep.quarantined:
                notes.append(
                    f"quarantined: {', '.join(sweep.quarantined)}")
            if notes:
                degraded = f" [DEGRADED: {'; '.join(notes)}]"
        elif config.mc_engine == "sat":
            from ..sat.bmc import check_read_mode_sat

            mc = check_read_mode_sat(
                config.banks,
                datapath=(config.rtl_mc == "full"),
            )
        else:
            if config.mc_engine != "bdd":
                raise ValueError(
                    f"unknown mc engine {config.mc_engine!r}")
            mc = check_read_mode_rtl(
                config.banks,
                datapath=(config.rtl_mc == "full"),
            )
        cache = ""
        if mc.bdd_stats and config.mc_engine != "sat":
            hits = mc.bdd_stats.get("cache_hits", 0)
            misses = mc.bdd_stats.get("cache_misses", 0)
            total = hits + misses
            cache = (
                f", computed-table {hits}/{total} hits"
                f" ({mc.bdd_stats.get('cache_clears', 0)} clears)"
            )
        size_label = (
            f"{mc.peak_nodes} clauses, k={mc.iterations}"
            if config.mc_engine == "sat"
            else f"{mc.peak_nodes} BDDs, {mc.iterations} iterations"
        )
        report.stages.append(StageResult(
            "rtl_model_checking", mc.holds is True,
            f"{'full datapath' if config.rtl_mc == 'full' else 'control'} "
            f"model, " + size_label
            + cache
            + (" [STATE EXPLOSION]" if mc.exploded else "")
            + (" [DEADLINE]" if mc.truncated else "")
            + degraded,
            time.perf_counter() - start,
            data=mc,
        ))
        if mc.holds is not True:
            return report

    # ------------------------------------------------------ 7. OVL
    start = time.perf_counter()
    ovl_top = build_la1_top_with_ovl(la1)
    if config.lanes > 1:
        ovl_sim = RtlSimulator(elaborate(ovl_top), backend="bitpar",
                               lanes=config.lanes)
    else:
        ovl_sim = RtlSimulator(elaborate(ovl_top),
                               backend=config.rtl_backend)
    ovl_host = RtlHost(ovl_sim, la1)
    toggle_cov = ovl_cov = None
    if cover_db is not None:
        from ..cover import OvlAssertionCoverage, ToggleCollector

        toggle_cov = ToggleCollector(ovl_sim)
        ovl_cov = OvlAssertionCoverage(ovl_sim)
    patterns_used = 1
    if config.lanes > 1 and config.patterns > 1:
        # pattern-packed OVL: lane p drives stimulus pattern p (shared
        # command schedule, per-lane addr/data), spare lanes replay
        # pattern 0
        from .rtl_testbench import LaneVec
        from .traffic import schedule_values, traffic_schedule

        patterns_used = min(config.patterns, config.lanes)
        pad = config.lanes - patterns_used
        schedule = traffic_schedule(la1, config.traffic, config.seed)
        values = [schedule_values(la1, schedule, config.seed, p)
                  for p in range(patterns_used)]
        for t, (is_read, bank, __a, __w) in enumerate(schedule):
            addr = [v[t][0] for v in values]
            addr = LaneVec(addr + addr[:1] * pad)
            if is_read:
                ovl_host.read(bank, addr)
            else:
                word = [v[t][1] for v in values]
                ovl_host.write(bank, addr,
                               LaneVec(word + word[:1] * pad))
    else:
        _traffic(ovl_host, la1, config.traffic, config.seed)
    ovl_host.run_until_idle()
    if toggle_cov is not None:
        toggle_cov.detach()
        ovl_cov.detach()
        toggle_cov.harvest(cover_db)
        ovl_cov.harvest(cover_db)
    lane_failures = {
        lane: names
        for lane in range(1, patterns_used)
        if (names := ovl_sim.lane_failure_names(lane))
    }
    ovl_ok = ovl_sim.ok and not lane_failures
    report.stages.append(StageResult(
        "rtl_ovl_simulation", ovl_ok,
        f"{ovl_sim.backend} backend, "
        + (f"{patterns_used} stimulus patterns, "
           if patterns_used > 1 else "")
        + f"{len(ovl_sim.design.monitors)} OVL monitors, "
        f"{ovl_sim.edge_count} edges, {len(ovl_host.results)} reads"
        + ("" if ovl_sim.ok else f"; failures: {ovl_sim.failures[:3]}")
        + ("" if not lane_failures
           else f"; pattern-lane failures: {sorted(lane_failures)[:3]}"),
        time.perf_counter() - start,
        data=ovl_sim.stats(),
    ))
    if not ovl_ok:
        return report

    # ------------------------------------------------ 8. coverage closure
    if cover_db is not None:
        start = time.perf_counter()
        covered, total = cover_db.counts()
        per_level = ", ".join(
            f"{level} {cover_db.coverage(level):.0%}"
            for level in cover_db.levels()
        )
        report.stages.append(StageResult(
            "coverage", cover_db.coverage() >= config.coverage_threshold,
            f"{cover_db.coverage():.1%} ({covered}/{total} points; "
            f"{per_level})",
            time.perf_counter() - start,
            data=cover_db,
        ))
    return report
