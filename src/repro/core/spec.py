"""LA-1 protocol constants and timing conventions shared by all levels.

From the paper (Section 3) and the NPF Look-Aside (LA-1) Implementation
Agreement rev 1.1, the modelled interface has:

* a master clock pair K / K# 180 degrees out of phase -- in this
  reproduction a full clock period is two *half-cycles*; K edges land on
  even half-cycles and K# edges on odd half-cycles;
* concurrent read and write operation over unidirectional read and write
  data paths sharing a single address bus;
* 18-pin DDR data paths: each beat carries 16 data bits plus 2 even
  byte-parity bits, two beats per word;
* byte write control (one enable per 8-bit lane per beat);
* read timing per the paper's Figure 3 sequence diagram: the request and
  address are sampled on a rising K; the SRAM array is accessed on the
  next rising K; the data word is released in two consecutive beats on
  the following rising K and rising K#;
* write timing: WRITE_SEL (W#) is sampled on a rising K; the write
  address and first data beat arrive on the following rising K#; the
  second beat arrives on the next rising K, when the (byte-merged) word
  commits to the array.

The scale-model parameters (:class:`La1Config`) default to the full
16-bit beats but can be narrowed so the symbolic model checker operates
on a tractable bit-level design, exactly as RuleBase users abstracted
their behavioral models.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BEAT_DATA_BITS",
    "BEAT_PARITY_BITS",
    "BEATS_PER_WORD",
    "BYTE_LANES_PER_BEAT",
    "READ_LATENCY_HALF_CYCLES",
    "READ_SECOND_BEAT_HALF_CYCLES",
    "WRITE_ADDR_HALF_CYCLES",
    "WRITE_COMMIT_HALF_CYCLES",
    "La1Config",
    "even_parity_int",
    "merge_byte_lanes",
]

#: Data bits per DDR beat (the LA-1 18-pin path: 16 data + 2 parity).
BEAT_DATA_BITS = 16
#: Parity bits per beat (even byte parity, one per 8-bit lane).
BEAT_PARITY_BITS = 2
#: Beats per transferred word.
BEATS_PER_WORD = 2
#: 8-bit lanes per beat.
BYTE_LANES_PER_BEAT = 2

#: Half-cycles from the read request's K edge to the first data beat
#: (request @K(c), array access @K(c+1), beat 0 @K(c+2) = +4 half-cycles).
READ_LATENCY_HALF_CYCLES = 4
#: Half-cycles from the request to the second beat (@K#(c+2) = +5).
READ_SECOND_BEAT_HALF_CYCLES = 5
#: Half-cycles from W# to the write address / first beat (@K#(c) = +1).
WRITE_ADDR_HALF_CYCLES = 1
#: Half-cycles from W# to the commit of the merged word (@K(c+1) = +2).
WRITE_COMMIT_HALF_CYCLES = 2


def even_parity_int(value: int, bits: int) -> int:
    """The even-parity bit of ``value``'s low ``bits`` bits (XOR fold)."""
    value &= (1 << bits) - 1
    parity = 0
    while value:
        parity ^= value & 1
        value >>= 1
    return parity


def merge_byte_lanes(old: int, new: int, byte_enables: int, lanes: int) -> int:
    """Byte-write merge: lane ``i`` of the result comes from ``new`` when
    bit ``i`` of ``byte_enables`` is set, else from ``old``."""
    result = 0
    for lane in range(lanes):
        mask = 0xFF << (8 * lane)
        source = new if (byte_enables >> lane) & 1 else old
        result |= source & mask
    return result


@dataclass(frozen=True)
class La1Config:
    """Scale parameters of a modelled LA-1 device.

    ``beat_bits`` is the data width of one DDR beat (16 in the standard;
    narrowed for symbolic model checking), ``addr_bits`` the address bus
    width, ``banks`` the bank count of the device (Figure 1 shows four).
    """

    banks: int = 4
    beat_bits: int = BEAT_DATA_BITS
    addr_bits: int = 8

    def __post_init__(self):
        if self.banks < 1:
            raise ValueError("banks must be >= 1")
        if self.beat_bits < 1 or self.beat_bits % 8 not in (0, self.beat_bits):
            # allow sub-byte widths for scale models, or whole bytes
            pass
        if self.addr_bits < 1:
            raise ValueError("addr_bits must be >= 1")

    @property
    def word_bits(self) -> int:
        """Bits in a full transferred word (two beats)."""
        return self.beat_bits * BEATS_PER_WORD

    @property
    def byte_lanes(self) -> int:
        """Byte lanes per beat (1 for sub-byte scale models)."""
        return max(1, self.beat_bits // 8)

    @property
    def mem_words(self) -> int:
        """Words in each bank's SRAM array."""
        return 1 << self.addr_bits
