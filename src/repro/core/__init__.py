"""``repro.core`` -- the LA-1 interface at every abstraction level.

The paper's contribution: the Look-Aside (LA-1) interface modelled as

* a UML specification (:mod:`uml_spec`) with Figure 3's clock-annotated
  sequence diagrams,
* an N-bank ASM model (:mod:`asm_model`) with the embedded light
  simulator,
* a SystemC-level executable model (:mod:`sysc_model`) with host driver,
* a synthesizable RTL model (:mod:`rtl_model`) with DDR pipelines and
  tristate bank multiplexing,

verified by the PSL property suite (:mod:`properties`) through
exploration-based model checking, RuleBase-style symbolic model checking
(:mod:`rulebase`), external assertion monitors (:mod:`monitors`) and OVL
checkers (:mod:`ovl_bindings`), tied together by the Figure 2 flow
driver (:mod:`flow`), the ASM/SystemC conformance check
(:mod:`conformance`) and the validation-unit mode
(:mod:`validation_unit`).
"""

from .spec import (
    BEAT_DATA_BITS,
    BEAT_PARITY_BITS,
    BEATS_PER_WORD,
    BYTE_LANES_PER_BEAT,
    READ_LATENCY_HALF_CYCLES,
    READ_SECOND_BEAT_HALF_CYCLES,
    WRITE_ADDR_HALF_CYCLES,
    WRITE_COMMIT_HALF_CYCLES,
    La1Config,
    even_parity_int,
    merge_byte_lanes,
)
from .asm_model import La1AsmAtoms, La1AsmConfig, build_la1_asm
from .properties import (
    asm_labeling,
    device_property_suite,
    read_latency_property,
    read_mode_property,
    read_mode_suite,
    rtl_labels,
)
from .sysc_model import (
    La1Bank,
    La1Device,
    La1Host,
    ReadPort,
    ReadResult,
    SramMemory,
    WritePort,
    build_la1_system,
)
from .rtl_model import (
    build_bank_rtl,
    build_la1_top_rtl,
    build_read_port_rtl,
    build_sram_rtl,
    build_write_port_rtl,
)
from .rtl_testbench import RtlHost
from .rulebase import MC_SCALE_CONFIG, check_read_mode_rtl
from .monitors import EdgeSampler, attach_read_mode_monitors
from .ovl_bindings import attach_read_mode_ovl, build_la1_top_with_ovl
from .conformance import (
    La1SyscImplementation,
    check_la1_conformance,
    observables_for,
)
from .refinement import La1RtlImplementation, check_asm_rtl_refinement
from .uml_spec import (
    extracted_properties,
    la1_class_diagram,
    la1_use_cases,
    read_mode_sequence,
    write_mode_sequence,
)
from .flow import FlowConfig, FlowReport, StageResult, run_flow
from .validation_unit import (
    ComplianceReport,
    DutInterface,
    FaultyDut,
    La1ValidationUnit,
    RtlDut,
    Violation,
)

__all__ = [
    "La1Config",
    "even_parity_int",
    "merge_byte_lanes",
    "BEAT_DATA_BITS",
    "BEAT_PARITY_BITS",
    "BEATS_PER_WORD",
    "BYTE_LANES_PER_BEAT",
    "READ_LATENCY_HALF_CYCLES",
    "READ_SECOND_BEAT_HALF_CYCLES",
    "WRITE_ADDR_HALF_CYCLES",
    "WRITE_COMMIT_HALF_CYCLES",
    "La1AsmConfig",
    "La1AsmAtoms",
    "build_la1_asm",
    "device_property_suite",
    "read_mode_suite",
    "read_mode_property",
    "read_latency_property",
    "asm_labeling",
    "rtl_labels",
    "SramMemory",
    "ReadPort",
    "WritePort",
    "La1Bank",
    "La1Device",
    "La1Host",
    "ReadResult",
    "build_la1_system",
    "build_sram_rtl",
    "build_read_port_rtl",
    "build_write_port_rtl",
    "build_bank_rtl",
    "build_la1_top_rtl",
    "RtlHost",
    "check_read_mode_rtl",
    "MC_SCALE_CONFIG",
    "EdgeSampler",
    "attach_read_mode_monitors",
    "attach_read_mode_ovl",
    "build_la1_top_with_ovl",
    "La1SyscImplementation",
    "check_la1_conformance",
    "observables_for",
    "La1RtlImplementation",
    "check_asm_rtl_refinement",
    "la1_class_diagram",
    "la1_use_cases",
    "read_mode_sequence",
    "write_mode_sequence",
    "extracted_properties",
    "FlowConfig",
    "FlowReport",
    "StageResult",
    "run_flow",
    "DutInterface",
    "La1ValidationUnit",
    "ComplianceReport",
    "Violation",
    "RtlDut",
    "FaultyDut",
]
