"""ASM <-> SystemC conformance for the LA-1 models.

"The tool executes the exploration algorithm in the same time on both the
ASM model and a binary executable generated from the SystemC design.  It
then verifies if for all the possible inputs, both models behave the
same" (paper, Section 5.1).

:class:`La1SyscImplementation` adapts the kernel-level LA-1 device to the
generic co-execution protocol of :mod:`repro.asm.conformance`: every ASM
edge rule replays as interface pin wiggles plus one half-cycle of
simulation, and the observation function projects the concrete device
state back onto the ASM vocabulary (pipeline stage tuples, commit
strobes, per-bank memory).

Abstraction mapping (documented divergences are *refinements*, not
mismatches):

* an abstract data word ``w`` is driven as first beat ``w`` with second
  beat 0, so the ASM's committed word equals the concrete word's low
  beat;
* abstract addresses index the same array words at both levels.
"""

from __future__ import annotations

from typing import Optional

from ..asm.conformance import ConformanceResult, Implementation, check_conformance
from .asm_model import La1AsmConfig, build_la1_asm
from .spec import La1Config
from .sysc_model import La1Device, build_la1_system

__all__ = ["La1SyscImplementation", "check_la1_conformance", "observables_for"]


def observables_for(banks: int) -> list[str]:
    """The ASM state variables compared during co-execution."""
    names = ["phase"]
    for b in range(banks):
        names.extend([f"rp{b}", f"wp{b}", f"mem{b}", f"wcommit{b}"])
    return names


class La1SyscImplementation(Implementation):
    """The SystemC-level LA-1 system as a conformance test subject."""

    def __init__(self, asm_config: La1AsmConfig):
        self.asm_config = asm_config
        banks = asm_config.banks
        # concrete scale chosen so abstract values embed directly: one
        # address bit covers the (small) ASM address domain, beats wide
        # enough for the data domain
        data_max = max(asm_config.data_values)
        addr_count = len(asm_config.addr_values)
        addr_bits = max(1, (addr_count - 1).bit_length())
        beat_bits = max(1, data_max.bit_length())
        self.la1_config = La1Config(
            banks=banks, beat_bits=beat_bits, addr_bits=addr_bits
        )
        self._sim = None
        self._device: Optional[La1Device] = None
        self._phase = 0
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        sim, clocks, device, __ = build_la1_system(self.la1_config)
        self._sim = sim
        self._device = device
        self._clocks = clocks
        sim.initialize()
        # consume the K# edge at t=1 so the next edge is a rising K,
        # matching the ASM's phase-0 start
        sim.run(1)
        self._phase = 0

    def _addr_index(self, addr_value) -> int:
        return self.asm_config.addr_values.index(addr_value)

    def apply(self, rule_name: str, args: dict) -> None:
        device = self._device
        sim = self._sim
        if rule_name == "EdgeK":
            rsel = args.get("rsel", -1)
            wsel = args.get("wsel", -1)
            if rsel >= 0:
                device.r_sel[rsel].write(True)
                device.addr_bus.write(self._addr_index(args["raddr"]))
            if wsel >= 0:
                device.w_sel[wsel].write(True)
            sim.run(1)  # the rising K edge
            for sig in device.r_sel:
                if sig.read():
                    sig.write(False)
            for sig in device.w_sel:
                if sig.read():
                    sig.write(False)
            self._phase = 1
        elif rule_name == "EdgeKSharp":
            # present the write address and the abstract word as beat 0
            device.addr_bus.write(self._addr_index(args["waddr"]))
            device.wdata_bus.write(int(args["wdata"]))
            device.bw_bus.write((1 << self.la1_config.byte_lanes) - 1)
            sim.run(1)  # the rising K# edge
            # beat 1 (sampled at the next K edge) is zero
            device.wdata_bus.write(0)
            self._phase = 0
        else:
            raise ValueError(f"unknown rule {rule_name}")

    # ------------------------------------------------------------------
    def observe(self) -> dict:
        device = self._device
        config = self.asm_config
        obs: dict = {"phase": self._phase}
        beat_mask = (1 << self.la1_config.beat_bits) - 1
        for b in range(config.banks):
            rport = device.banks[b].read_port
            wport = device.banks[b].write_port
            stage = rport._stage
            if stage == "idle":
                obs[f"rp{b}"] = ("idle",)
            elif stage == "req":
                obs[f"rp{b}"] = ("req", config.addr_values[rport._addr])
            else:
                obs[f"rp{b}"] = (
                    stage,
                    config.addr_values[rport._addr],
                    rport._word & beat_mask,
                )
            wstage = wport._stage
            if wstage == "idle":
                obs[f"wp{b}"] = ("idle",)
            elif wstage == "sel":
                obs[f"wp{b}"] = ("sel",)
            else:
                obs[f"wp{b}"] = (
                    "data",
                    config.addr_values[wport._addr],
                    wport._beat0,
                )
            obs[f"mem{b}"] = tuple(
                device.banks[b].memory.read(self._addr_index(a)) & beat_mask
                for a in config.addr_values
            )
            obs[f"wcommit{b}"] = bool(wport.stat_write_commit.read())
        return obs


def check_la1_conformance(
    asm_config: Optional[La1AsmConfig] = None,
    max_depth: int = 6,
    max_paths: int = 4000,
) -> ConformanceResult:
    """Co-execute the ASM and SystemC LA-1 models over all edge sequences
    up to ``max_depth`` half-cycles."""
    asm_config = asm_config or La1AsmConfig(banks=1)
    machine = build_la1_asm(asm_config)
    implementation = La1SyscImplementation(asm_config)
    return check_conformance(
        machine,
        implementation,
        observables_for(asm_config.banks),
        max_depth=max_depth,
        max_paths=max_paths,
    )
