"""The RuleBase experiment driver (Table 2).

One call builds the bit-level LA-1 RTL at the model-checking scale,
symbolically encodes it, embeds the Read-Mode property's checker
automaton and runs BDD reachability under the configured resource
budgets, converting any budget exhaustion -- during encoding or during
reachability -- into the *state explosion* verdict Table 2 reports for
the 4-bank configuration.
"""

from __future__ import annotations

import time
from typing import Optional

from ..bdd import BddBudgetExceeded
from ..mc import SymbolicModel, SymbolicModelChecker
from ..mc.checker import SymbolicCheckResult
from ..psl.ast import Property
from ..rtl import elaborate
from .properties import read_mode_property, rtl_labels
from .rtl_model import build_la1_top_rtl
from .spec import La1Config

__all__ = ["check_read_mode_rtl", "MC_SCALE_CONFIG"]


def MC_SCALE_CONFIG(banks: int) -> La1Config:
    """The model-checking scale: 1-bit beats, 1-bit addresses.

    RuleBase users verified a *behavioral model* of the interface rather
    than the full-width datapath; this is the equivalent reduction that
    keeps the bit-level control and timing exact.
    """
    return La1Config(banks=banks, beat_bits=1, addr_bits=1)


def check_read_mode_rtl(
    banks: int,
    prop: Optional[Property] = None,
    transient_node_budget: Optional[int] = 12_000_000,
    live_node_budget: Optional[int] = 1_500_000,
    gc_threshold: int = 2_000_000,
    datapath: bool = True,
    config: Optional[La1Config] = None,
    property_name: Optional[str] = None,
    deadline_s: Optional[float] = None,
    coi: bool = True,
    design=None,
) -> SymbolicCheckResult:
    """Model check the Read-Mode property on the N-bank RTL.

    Returns a :class:`SymbolicCheckResult`; ``exploded=True`` marks the
    run that ran out of BDD capacity (transient allocation within one
    image step, or live size after garbage collection), and
    ``truncated=True`` a run stopped by the ``deadline_s`` wall-clock
    budget.

    ``coi`` (default on) restricts the symbolic encoding to the cone of
    influence of the label nets the property reads, via
    :func:`repro.lint.coi.reduce_design`: registers the property cannot
    observe get no BDD variables.  Verdicts and counterexample depths
    are unaffected (the dropped state is unconstrained and unobserved);
    only BDD sizes change.  Pass ``coi=False`` to encode the full
    netlist, e.g. for the ablation benchmark.

    ``design`` accepts a pre-elaborated netlist at the matching scale --
    the warm-start used by parallel property sweeps, where each worker
    elaborates once and checks many properties against it (the symbolic
    encoding itself is still rebuilt per property: checker automata are
    satellite state and must not accumulate across checks).
    """
    config = config or MC_SCALE_CONFIG(banks)
    name = property_name or f"read_mode[{banks}banks]"
    start = time.perf_counter()
    the_prop = prop if prop is not None else read_mode_property(0)
    labels = rtl_labels("la1_top", banks)
    coi_roots = None
    if coi:
        used = the_prop.atoms()
        coi_roots = sorted(
            path for atom, (path, __) in labels.items() if atom in used
        )
    try:
        if design is None:
            top = build_la1_top_rtl(config, datapath=datapath)
            design = elaborate(top)
        model = SymbolicModel(
            design,
            node_budget=transient_node_budget,
            coi_roots=coi_roots,
        )
        checker = SymbolicModelChecker(
            model,
            live_node_budget=live_node_budget,
            gc_threshold=gc_threshold,
        )
        return checker.check_property(
            the_prop,
            labels,
            name,
            deadline_s=deadline_s,
        )
    except BddBudgetExceeded:
        elapsed = time.perf_counter() - start
        budget = transient_node_budget or 0
        return SymbolicCheckResult(
            None, elapsed, budget, 0, 0, budget * 88 / 1e6,
            exploded=True, property_name=name,
        )
