"""Bounded refinement checking from ASM directly to RTL.

The paper's future work: "proving the soundness of the complete
refinement process from ASM to RTL.  This will allow reusing the
verification results that can be proved at any level for the other lower
levels."  This module implements the bounded version of that idea:

* :class:`La1RtlImplementation` adapts the *RTL* model to the same
  co-execution protocol the SystemC model uses, replaying ASM edge rules
  as pin wiggles on the bit-level simulator;
* :func:`check_asm_rtl_refinement` co-executes the ASM model and the RTL
  over every edge sequence up to a depth bound, comparing the full
  observable vocabulary (pipeline stages, commit strobes, memory).

A conformant run establishes that, up to the bound, every PSL property
verified on the ASM's atoms holds of the RTL's status nets too -- the
"reuse the verification results" payoff, since the atoms are literally
the same labels :func:`repro.core.properties.rtl_labels` feeds the
symbolic checker.
"""

from __future__ import annotations

from typing import Optional

from ..asm.conformance import ConformanceResult, Implementation, check_conformance
from ..rtl import RtlSimulator, elaborate
from .asm_model import La1AsmConfig, build_la1_asm
from .conformance import observables_for
from .rtl_model import build_la1_top_rtl
from .spec import La1Config

__all__ = ["La1RtlImplementation", "check_asm_rtl_refinement"]


class La1RtlImplementation(Implementation):
    """The RTL LA-1 model as a conformance test subject.

    Observation decodes the one-hot pipeline registers back into the ASM
    stage vocabulary; the abstract-word embedding matches
    :class:`repro.core.conformance.La1SyscImplementation` (abstract word
    = first beat, second beat zero).
    """

    def __init__(self, asm_config: La1AsmConfig):
        self.asm_config = asm_config
        data_max = max(asm_config.data_values)
        addr_count = len(asm_config.addr_values)
        self.la1_config = La1Config(
            banks=asm_config.banks,
            beat_bits=max(1, data_max.bit_length()),
            addr_bits=max(1, (addr_count - 1).bit_length()),
        )
        self._design = elaborate(build_la1_top_rtl(self.la1_config))
        self.sim = RtlSimulator(self._design)
        self._phase = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.sim.reset()
        self._phase = 0

    def _addr_index(self, value) -> int:
        return self.asm_config.addr_values.index(value)

    def _in(self, name: str, value: int) -> None:
        self.sim.set_input(f"la1_top.{name}", value)

    def apply(self, rule_name: str, args: dict) -> None:
        if rule_name == "EdgeK":
            rsel = args.get("rsel", -1)
            wsel = args.get("wsel", -1)
            self._in("r_sel", 0 if rsel < 0 else 1 << rsel)
            self._in("w_sel", 0 if wsel < 0 else 1 << wsel)
            if rsel >= 0:
                self._in("addr", self._addr_index(args["raddr"]))
            # the second beat of any in-flight write is zero
            self._in("wdata", 0)
            self._in("bw", (1 << self.la1_config.byte_lanes) - 1)
            self.sim.step("K")
            self._phase = 1
        elif rule_name == "EdgeKSharp":
            self._in("r_sel", 0)
            self._in("w_sel", 0)
            self._in("addr", self._addr_index(args["waddr"]))
            self._in("wdata", int(args["wdata"]))
            self._in("bw", (1 << self.la1_config.byte_lanes) - 1)
            self.sim.step("K#")
            self._phase = 0
        else:
            raise ValueError(f"unknown rule {rule_name}")

    # ------------------------------------------------------------------
    def _read(self, bank: int, name: str) -> int:
        return self.sim.read(f"la1_top.bank{bank}.{name}")

    def _rp_tuple(self, bank: int) -> tuple:
        config = self.asm_config
        beat_mask = (1 << self.la1_config.beat_bits) - 1
        port = f"la1_top.bank{bank}.read_port"
        addr = config.addr_values[self.sim.read(f"{port}.addr_reg")]
        word = self.sim.read(f"{port}.word_reg") & beat_mask
        if self._read(bank, "mon_req"):
            return ("req", addr)
        if self._read(bank, "mon_fetch"):
            return ("fetch", addr, word)
        # out0 and out1 overlap in the RTL's one-hot encoding (out0 is
        # K-clocked and spans post-K..post-K#; out1 is K#-clocked and
        # spans post-K#..post-K).  The ASM stages are phase-exact: out0
        # exists only in post-K states, out1 only in post-K# states; a
        # lingering RTL stage bit outside its phase is ASM-idle.
        out0 = self._read(bank, "mon_out0")
        out1 = self._read(bank, "mon_out1")
        if out1 and self._phase == 0:
            return ("out1", addr, word)
        if out0 and self._phase == 1:
            return ("out0", addr, word)
        return ("idle",)

    def _wp_tuple(self, bank: int) -> tuple:
        config = self.asm_config
        beat_mask = (1 << self.la1_config.beat_bits) - 1
        port = f"la1_top.bank{bank}.write_port"
        if self._read(bank, "mon_sel") and self._phase == 1:
            return ("sel",)
        if self._read(bank, "mon_wdata") and self._phase == 0:
            addr = config.addr_values[self.sim.read(f"{port}.addr_reg")]
            beat0 = self.sim.read(f"{port}.beat0_reg") & beat_mask
            return ("data", addr, beat0)
        return ("idle",)

    def observe(self) -> dict:
        config = self.asm_config
        beat_mask = (1 << self.la1_config.beat_bits) - 1
        word_bits = self.la1_config.word_bits
        obs: dict = {"phase": self._phase}
        for bank in range(config.banks):
            obs[f"rp{bank}"] = self._rp_tuple(bank)
            obs[f"wp{bank}"] = self._wp_tuple(bank)
            raw = self.sim.read(f"la1_top.bank{bank}.sram.mem")
            obs[f"mem{bank}"] = tuple(
                (raw >> (self._addr_index(a) * word_bits)) & beat_mask
                for a in config.addr_values
            )
            obs[f"wcommit{bank}"] = bool(
                self._read(bank, "stat_write_commit")
            )
        return obs


def check_asm_rtl_refinement(
    asm_config: Optional[La1AsmConfig] = None,
    max_depth: int = 6,
    max_paths: int = 4000,
) -> ConformanceResult:
    """Co-execute the ASM model and the RTL over all edge sequences up to
    ``max_depth`` half-cycles (the bounded ASM->RTL soundness check)."""
    asm_config = asm_config or La1AsmConfig(banks=1)
    machine = build_la1_asm(asm_config)
    implementation = La1RtlImplementation(asm_config)
    return check_conformance(
        machine,
        implementation,
        observables_for(asm_config.banks),
        max_depth=max_depth,
        max_paths=max_paths,
    )
