"""The synthesizable RTL LA-1 model (the paper's Section 4.4).

"For the case of the LA-1 Interface, we map each class to a Verilog
module ... Multiple banks model is obtained from the single one by
instantiating the Read, Write and Memory modules.  The connection between
the control signals is performed using tristate buffers."

Modules:

* :func:`build_sram_rtl` -- the per-bank array: one wide register file
  with combinational read and byte-merged synchronous write;
* :func:`build_read_port_rtl` -- the Figure 3 read pipeline as one-hot
  stage registers split across the K and K# clock domains (DDR);
* :func:`build_write_port_rtl` -- W# capture (K), address/beat0 capture
  (K#), commit (K);
* :func:`build_bank_rtl` -- one bank instantiating the three;
* :func:`build_la1_top_rtl` -- the N-bank device: a phase tracker (two
  cross-domain toggles), shared address/write-data buses, and the shared
  read bus driven through per-bank **tristate buffers**.

Status nets: each bank exposes ``stat_*`` wires gated by the phase net so
each strobe is true for exactly the half-cycle its ASM atom is -- the
labeling contract of :func:`repro.core.properties.rtl_labels`.
"""

from __future__ import annotations

from typing import Optional

from ..rtl.hdl import C, Concat, Expr, Mux, RtlModule, Wire
from .spec import BEATS_PER_WORD, La1Config

__all__ = [
    "build_sram_rtl",
    "build_read_port_rtl",
    "build_write_port_rtl",
    "build_bank_rtl",
    "build_la1_top_rtl",
]


def _merge_word(old: Expr, new: Expr, enables: Expr, config: La1Config) -> Expr:
    """Byte-lane merge of a full word under write enables."""
    total_lanes = config.byte_lanes * BEATS_PER_WORD
    lane_bits = config.word_bits // total_lanes
    parts = []
    for lane in range(total_lanes):
        lo = lane * lane_bits
        hi = lo + lane_bits - 1
        parts.append(
            Mux(enables.bit(lane), new.slice(lo, hi), old.slice(lo, hi))
        )
    return Concat(parts)


def build_sram_rtl(config: La1Config, name: str = "la1_sram") -> RtlModule:
    """The SRAM array module: ``mem_words`` words in one wide register."""
    m = RtlModule(name)
    total_lanes = config.byte_lanes * BEATS_PER_WORD
    raddr = m.input("raddr", config.addr_bits)
    wen = m.input("wen", 1)
    waddr = m.input("waddr", config.addr_bits)
    wword = m.input("wword", config.word_bits)
    wbe = m.input("wbe", total_lanes)
    rdata = m.output("rdata", config.word_bits)

    words = config.mem_words
    m.lint_waive(
        "cdc-no-sync", "mem",
        "DDR by design: the array commits on K from the K#-captured "
        "write pipeline; both edges belong to one differential clock "
        "pair",
    )
    mem = m.reg("mem", words * config.word_bits, clock="K", init=0)

    def word_slice(expr: Expr, index: int) -> Expr:
        lo = index * config.word_bits
        return expr.slice(lo, lo + config.word_bits - 1)

    next_words = []
    for w in range(words):
        old = word_slice(mem.ref(), w)
        hit = wen.ref() & waddr.ref().eq(C(w, config.addr_bits))
        merged = _merge_word(old, wword.ref(), wbe.ref(), config)
        next_words.append(Mux(hit, merged, old))
    m.sync(mem, Concat(next_words))

    read_value: Expr = word_slice(mem.ref(), 0)
    for w in range(1, words):
        read_value = Mux(
            raddr.ref().eq(C(w, config.addr_bits)),
            word_slice(mem.ref(), w),
            read_value,
        )
    m.assign(rdata, read_value)
    return m


def _build_sram_stub(config: La1Config, name: str) -> RtlModule:
    """A stateless SRAM stub (rdata tied to 0) for control-only models."""
    m = RtlModule(name)
    total_lanes = config.byte_lanes * BEATS_PER_WORD
    m.input("raddr", config.addr_bits)
    m.input("wen", 1)
    m.input("waddr", config.addr_bits)
    m.input("wword", config.word_bits)
    m.input("wbe", total_lanes)
    rdata = m.output("rdata", config.word_bits)
    m.assign(rdata, C(0, config.word_bits))
    return m


def build_read_port_rtl(config: La1Config, name: str = "la1_read_port",
                        datapath: bool = True) -> RtlModule:
    """The read-port pipeline module (one bank).

    ``datapath=False`` builds the control skeleton only (stages, status
    strobes, bus-driver enable; data and parity tied to zero) -- the
    abstracted *behavioral model* one writes for a capacity-limited
    symbolic model checker, as the paper's authors did for RuleBase.
    """
    m = RtlModule(name)
    r_sel = m.input("r_sel", 1)
    addr = m.input("addr", config.addr_bits)
    rdata = m.input("rdata", config.word_bits)
    phase = m.input("phase", 1)

    raddr = m.output("raddr", config.addr_bits)
    dout = m.output("dout", config.beat_bits)
    dpar = m.output("dpar", config.byte_lanes)
    drive_en = m.output("drive_en", 1)
    stat_read_req = m.output("stat_read_req", 1)
    stat_read_fetch = m.output("stat_read_fetch", 1)
    stat_data_valid = m.output("stat_data_valid", 1)
    stat_data_valid2 = m.output("stat_data_valid2", 1)

    # one-hot pipeline stages; st_out1 lives in the K# domain (DDR)
    m.lint_waive(
        "cdc-no-sync", "*",
        "DDR by design: K and K# are the two edges of one differential "
        "clock pair (paper Fig. 3), so the pipeline's cross-edge sampling "
        "is synchronous and needs no synchronizer",
    )
    st_req = m.reg("st_req", 1, clock="K", init=0)
    st_fetch = m.reg("st_fetch", 1, clock="K", init=0)
    st_out0 = m.reg("st_out0", 1, clock="K", init=0)
    st_out1 = m.reg("st_out1", 1, clock="K#", init=0)

    busy = st_req.ref() | st_fetch.ref() | st_out0.ref() | st_out1.ref()
    capture = r_sel.ref() & ~busy
    m.sync(st_req, capture)
    m.sync(st_fetch, st_req.ref())
    m.sync(st_out0, st_fetch.ref())
    m.sync(st_out1, st_out0.ref())

    valid0 = st_out0.ref() & phase.ref()
    valid1 = st_out1.ref() & ~phase.ref()
    if datapath:
        addr_reg = m.reg("addr_reg", config.addr_bits, clock="K", init=0)
        word_reg = m.reg("word_reg", config.word_bits, clock="K", init=0)
        m.sync(addr_reg, Mux(capture, addr.ref(), addr_reg.ref()))
        # the array word is latched when the req stage completes
        # (pre-edge rdata is addressed by addr_reg, i.e. the pre-edge
        # array contents)
        m.sync(word_reg, Mux(st_req.ref(), rdata.ref(), word_reg.ref()))
        m.assign(raddr, addr_reg.ref())
        beat0 = word_reg.ref().slice(0, config.beat_bits - 1)
        beat1 = word_reg.ref().slice(config.beat_bits, config.word_bits - 1)
        beat = Mux(valid0, beat0, beat1)
        m.assign(dout, beat)
        lane_bits = max(1, config.beat_bits // max(1, config.byte_lanes))
        parity_bits = []
        for lane in range(config.byte_lanes):
            lo = lane * lane_bits
            parity_bits.append(beat.slice(lo, lo + lane_bits - 1).reduce_xor())
        m.assign(dpar, Concat(parity_bits) if len(parity_bits) > 1
                 else parity_bits[0])
    else:
        m.assign(raddr, C(0, config.addr_bits))
        m.assign(dout, C(0, config.beat_bits))
        m.assign(dpar, C(0, config.byte_lanes))
    m.assign(drive_en, valid0 | valid1)
    m.assign(stat_read_req, st_req.ref() & phase.ref())
    m.assign(stat_read_fetch, st_fetch.ref())
    m.assign(stat_data_valid, valid0)
    m.assign(stat_data_valid2, valid1)
    # raw (ungated) stage levels for edge-clocked external monitors (OVL
    # checkers sample pre-edge values, where the phase-gated strobes are
    # always low)
    for stage_name, stage_reg in (
        ("mon_req", st_req), ("mon_fetch", st_fetch),
        ("mon_out0", st_out0), ("mon_out1", st_out1),
    ):
        out = m.output(stage_name, 1)
        m.assign(out, stage_reg.ref())
    return m


def build_write_port_rtl(config: La1Config, name: str = "la1_write_port",
                         datapath: bool = True) -> RtlModule:
    """The write-port module (one bank).

    ``datapath=False`` keeps only the phase registers and status strobes
    (see :func:`build_read_port_rtl`).
    """
    m = RtlModule(name)
    total_lanes = config.byte_lanes * BEATS_PER_WORD
    w_sel = m.input("w_sel", 1)
    addr = m.input("addr", config.addr_bits)
    wdata = m.input("wdata", config.beat_bits)
    bw = m.input("bw", config.byte_lanes)
    phase = m.input("phase", 1)

    wen = m.output("wen", 1)
    waddr = m.output("waddr", config.addr_bits)
    wword = m.output("wword", config.word_bits)
    wbe = m.output("wbe", total_lanes)
    stat_write_sel = m.output("stat_write_sel", 1)
    stat_write_data = m.output("stat_write_data", 1)
    stat_write_commit = m.output("stat_write_commit", 1)

    m.lint_waive(
        "cdc-no-sync", "*",
        "DDR by design: W# capture (K), data capture (K#) and commit (K) "
        "alternate edges of one differential clock pair (paper Fig. 4)",
    )
    st_sel = m.reg("st_sel", 1, clock="K", init=0)
    st_data = m.reg("st_data", 1, clock="K#", init=0)
    committed = m.reg("committed", 1, clock="K", init=0)

    busy = st_sel.ref() | st_data.ref()
    m.sync(st_sel, w_sel.ref() & ~busy)
    m.sync(st_data, st_sel.ref())
    m.sync(committed, st_data.ref())
    if datapath:
        addr_reg = m.reg("addr_reg", config.addr_bits, clock="K#", init=0)
        beat0_reg = m.reg("beat0_reg", config.beat_bits, clock="K#", init=0)
        bw0_reg = m.reg("bw0_reg", config.byte_lanes, clock="K#", init=0)
        m.sync(addr_reg, Mux(st_sel.ref(), addr.ref(), addr_reg.ref()))
        m.sync(beat0_reg, Mux(st_sel.ref(), wdata.ref(), beat0_reg.ref()))
        m.sync(bw0_reg, Mux(st_sel.ref(), bw.ref(), bw0_reg.ref()))
        # commit on the K edge while st_data holds: beat1 and its
        # enables are taken live off the buses at that edge
        m.assign(waddr, addr_reg.ref())
        m.assign(wword, Concat([beat0_reg.ref(), wdata.ref()]))
        m.assign(wbe, Concat([bw0_reg.ref(), bw.ref()]))
    else:
        m.assign(waddr, C(0, config.addr_bits))
        m.assign(wword, C(0, config.word_bits))
        m.assign(wbe, C(0, total_lanes))
    m.assign(wen, st_data.ref())
    m.assign(stat_write_sel, st_sel.ref() & phase.ref())
    m.assign(stat_write_data, st_data.ref() & ~phase.ref())
    m.assign(stat_write_commit, committed.ref() & phase.ref())
    for stage_name, stage_reg in (
        ("mon_sel", st_sel), ("mon_wdata", st_data),
        ("mon_committed", committed),
    ):
        out = m.output(stage_name, 1)
        m.assign(out, stage_reg.ref())
    return m


def build_bank_rtl(config: La1Config, name: str = "la1_bank",
                   datapath: bool = True) -> RtlModule:
    """One LA-1 bank: read port + write port + SRAM, as instances.

    ``datapath=False`` builds the control-only abstraction (the SRAM is
    replaced by a zero stub so the interface stays identical).
    """
    m = RtlModule(name)
    total_lanes = config.byte_lanes * BEATS_PER_WORD
    r_sel = m.input("r_sel", 1)
    w_sel = m.input("w_sel", 1)
    addr = m.input("addr", config.addr_bits)
    wdata = m.input("wdata", config.beat_bits)
    bw = m.input("bw", config.byte_lanes)
    phase = m.input("phase", 1)

    dout = m.output("dout", config.beat_bits)
    dpar = m.output("dpar", config.byte_lanes)
    drive_en = m.output("drive_en", 1)
    stat_nets: dict[str, Wire] = {}
    for stat in (
        "stat_read_req", "stat_read_fetch", "stat_data_valid",
        "stat_data_valid2", "stat_write_sel", "stat_write_data",
        "stat_write_commit",
        "mon_req", "mon_fetch", "mon_out0", "mon_out1",
        "mon_sel", "mon_wdata", "mon_committed",
    ):
        stat_nets[stat] = m.output(stat, 1)

    rdata = m.wire("rdata", config.word_bits)
    raddr = m.wire("raddr", config.addr_bits)
    wen = m.wire("wen", 1)
    waddr = m.wire("waddr", config.addr_bits)
    wword = m.wire("wword", config.word_bits)
    wbe = m.wire("wbe", total_lanes)

    if datapath:
        sram = build_sram_rtl(config, f"{name}_sram")
    else:
        sram = _build_sram_stub(config, f"{name}_sram")
    read_port = build_read_port_rtl(config, f"{name}_read_port", datapath)
    write_port = build_write_port_rtl(config, f"{name}_write_port", datapath)

    m.instantiate(sram, "sram", {
        "raddr": raddr.ref(),
        "wen": wen.ref(),
        "waddr": waddr.ref(),
        "wword": wword.ref(),
        "wbe": wbe.ref(),
        "rdata": rdata,
    })
    m.instantiate(read_port, "read_port", {
        "r_sel": r_sel.ref(),
        "addr": addr.ref(),
        "rdata": rdata.ref(),
        "phase": phase.ref(),
        "raddr": raddr,
        "dout": dout,
        "dpar": dpar,
        "drive_en": drive_en,
        "stat_read_req": stat_nets["stat_read_req"],
        "stat_read_fetch": stat_nets["stat_read_fetch"],
        "stat_data_valid": stat_nets["stat_data_valid"],
        "stat_data_valid2": stat_nets["stat_data_valid2"],
        "mon_req": stat_nets["mon_req"],
        "mon_fetch": stat_nets["mon_fetch"],
        "mon_out0": stat_nets["mon_out0"],
        "mon_out1": stat_nets["mon_out1"],
    })
    m.instantiate(write_port, "write_port", {
        "w_sel": w_sel.ref(),
        "addr": addr.ref(),
        "wdata": wdata.ref(),
        "bw": bw.ref(),
        "phase": phase.ref(),
        "wen": wen,
        "waddr": waddr,
        "wword": wword,
        "wbe": wbe,
        "stat_write_sel": stat_nets["stat_write_sel"],
        "stat_write_data": stat_nets["stat_write_data"],
        "stat_write_commit": stat_nets["stat_write_commit"],
        "mon_sel": stat_nets["mon_sel"],
        "mon_wdata": stat_nets["mon_wdata"],
        "mon_committed": stat_nets["mon_committed"],
    })
    return m


def build_la1_top_rtl(
    config: Optional[La1Config] = None, name: str = "la1_top",
    datapath: bool = True,
) -> RtlModule:
    """The N-bank LA-1 device with tristate-multiplexed read bus.

    Free inputs (testbench-driven): ``r_sel`` / ``w_sel`` (one bit per
    bank), ``addr``, ``wdata`` (one beat), ``bw`` (byte enables of the
    beat on the bus).  Outputs: the shared ``data_bus`` / ``par_bus``
    (tristate, reads 0 when undriven), ``read_valid`` and per-bank
    ``stat_*`` status wires.
    """
    config = config or La1Config()
    m = RtlModule(name)
    banks = config.banks
    r_sel = m.input("r_sel", banks)
    w_sel = m.input("w_sel", banks)
    addr = m.input("addr", config.addr_bits)
    wdata = m.input("wdata", config.beat_bits)
    bw = m.input("bw", config.byte_lanes)

    data_bus = m.output("data_bus", config.beat_bits)
    par_bus = m.output("par_bus", config.byte_lanes)
    read_valid = m.output("read_valid", 1)

    # phase tracker: two cross-domain toggles; phase == 1 on post-K
    # half-cycles, 0 on post-K# half-cycles
    tk = m.reg("tk", 1, clock="K", init=0)
    tks = m.reg("tks", 1, clock="K#", init=0)
    m.sync(tk, ~tk.ref())
    m.sync(tks, ~tks.ref())
    phase = m.wire("phase", 1)
    m.assign(phase, tk.ref() ^ tks.ref())

    bank_module = build_bank_rtl(config, "la1_bank", datapath)
    drive_ens = []
    for b in range(banks):
        douts = m.wire(f"bank{b}_dout", config.beat_bits)
        dpars = m.wire(f"bank{b}_dpar", config.byte_lanes)
        den = m.wire(f"bank{b}_drive_en", 1)
        stats = {
            # output ports, not internal wires: the status strobes and raw
            # stage levels are the device's observation points (labeling
            # taps and monitor hooks), read from outside the design
            stat: m.output(f"bank{b}_{stat}", 1)
            for stat in (
                "stat_read_req", "stat_read_fetch", "stat_data_valid",
                "stat_data_valid2", "stat_write_sel", "stat_write_data",
                "stat_write_commit",
                "mon_req", "mon_fetch", "mon_out0", "mon_out1",
                "mon_sel", "mon_wdata", "mon_committed",
            )
        }
        m.instantiate(bank_module, f"bank{b}", {
            "r_sel": r_sel.ref().bit(b),
            "w_sel": w_sel.ref().bit(b),
            "addr": addr.ref(),
            "wdata": wdata.ref(),
            "bw": bw.ref(),
            "phase": phase.ref(),
            "dout": douts,
            "dpar": dpars,
            "drive_en": den,
            **stats,
        })
        m.tristate(data_bus, den.ref(), douts.ref())
        m.tristate(par_bus, den.ref(), dpars.ref())
        drive_ens.append(den.ref())
    any_drive = drive_ens[0]
    for den in drive_ens[1:]:
        any_drive = any_drive | den
    m.assign(read_valid, any_drive)
    return m
