"""Seeded LA-1 traffic streams, split into schedule and values.

The fault campaign, the flow's OVL stage and the coverage testgen all
drive the same Table-3 workload shape: a seeded random read/write mix
over all banks.  Pattern packing (PPSFP's second axis) and lane-parallel
stimulus scoring both need the *control* part of that stream -- which
command goes to which bank, in which order -- held fixed while the
*datapath* part (addresses, write data) varies per lane.  The LA-1
status nets the lane machinery trusts for flow control depend only on
the command schedule, so every variant stream settles control
identically and lane 0 can arbitrate for all lanes.

``traffic_schedule`` draws the base stream with exactly the random-call
discipline the campaign has used since PR 2 (bank, address, read/write
coin, then write data), so replaying a schedule through a host is
bit-identical to the historical inline loops.  ``pattern_values``
re-draws only the datapath fields from a derived seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from .spec import La1Config

__all__ = [
    "traffic_schedule",
    "pattern_values",
    "pattern_seed",
    "schedule_values",
    "queue_traffic",
]

#: (is_read, bank, addr, word-or-None) per transaction
Transaction = Tuple[bool, int, int, Optional[int]]


def traffic_schedule(config: La1Config, count: int,
                     seed: int) -> List[Transaction]:
    """The base seeded stream: schedule *and* pattern-0 values."""
    rng = random.Random(seed)
    word_max = (1 << config.word_bits) - 1
    schedule: List[Transaction] = []
    for __ in range(count):
        bank = rng.randrange(config.banks)
        addr = rng.randrange(config.mem_words)
        if rng.random() < 0.5:
            schedule.append((True, bank, addr, None))
        else:
            schedule.append((False, bank, addr, rng.randint(0, word_max)))
    return schedule


def pattern_seed(seed: int, pattern: int) -> int:
    """The derived seed of stimulus pattern ``pattern`` (> 0)."""
    from ..par.seeds import derive_seed

    return derive_seed(seed, "pattern", pattern)


def pattern_values(config: La1Config, schedule: List[Transaction],
                   variant_seed: int) -> List[Tuple[int, Optional[int]]]:
    """Re-draw the datapath fields (addr, write data) of ``schedule``
    from ``variant_seed``, keeping the command schedule untouched."""
    rng = random.Random(variant_seed)
    word_max = (1 << config.word_bits) - 1
    values: List[Tuple[int, Optional[int]]] = []
    for is_read, __, __addr, __word in schedule:
        addr = rng.randrange(config.mem_words)
        word = None if is_read else rng.randint(0, word_max)
        values.append((addr, word))
    return values


def schedule_values(config: La1Config, schedule: List[Transaction],
                    seed: int, pattern: int) -> List[Tuple[int, Optional[int]]]:
    """The (addr, word) stream of ``pattern`` (0 = the base stream)."""
    if pattern == 0:
        return [(addr, word) for __, __b, addr, word in schedule]
    return pattern_values(config, schedule, pattern_seed(seed, pattern))


def queue_traffic(host, config: La1Config, count: int, seed: int,
                  pattern: int = 0) -> None:
    """Queue the seeded stream onto ``host`` (``read``/``write`` API).

    ``pattern=0`` reproduces the historical inline loop bit for bit;
    ``pattern>0`` keeps the command schedule and re-draws addr/data.
    """
    schedule = traffic_schedule(config, count, seed)
    values = schedule_values(config, schedule, seed, pattern)
    for (is_read, bank, __a, __w), (addr, word) in zip(schedule, values):
        if is_read:
            host.read(bank, addr)
        else:
            host.write(bank, addr, word)
