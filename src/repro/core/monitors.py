"""SystemC-level assertion monitors for the LA-1 device (Table 3, left).

The paper's flow compiles the PSL properties into external C# monitors
and binds them to the SystemC model; here the read-mode property suite is
compiled into :class:`~repro.abv.monitor.AssertionMonitor` objects bound
read-only to the device's status signals.

Because the LA-1 properties count *half-cycles*, monitors sample once per
clock edge -- :class:`EdgeSampler` emits a delta-delayed event after each
K and K# edge so the monitors observe committed post-edge values (the
same trace the ASM exploration and the RTL labeling see).
"""

from __future__ import annotations

from typing import Callable

from ..abv.monitor import AssertionMonitor, FailureAction
from ..sysc.kernel import Event, MethodProcess, Simulator
from ..sysc.clock import ClockPair
from .asm_model import La1AsmAtoms as A
from .properties import read_mode_suite
from .spec import even_parity_int
from .sysc_model import La1Device

__all__ = ["EdgeSampler", "attach_read_mode_monitors", "parity_getter"]


class EdgeSampler:
    """Emits :attr:`sample` one delta cycle after every clock edge.

    Processes sensitive to a clock edge run in the same evaluate phase as
    the design and would read pre-edge values; sampling on this event
    instead observes the committed post-edge state.
    """

    def __init__(self, sim: Simulator, clocks: ClockPair,
                 name: str = "edge_sampler"):
        self.sample = Event(sim, f"{name}.sample")
        process = MethodProcess(sim, name, self._on_edge)
        process.make_sensitive(clocks.posedge_k, clocks.posedge_k_bar)
        self._process = process

    def _on_edge(self) -> None:
        if self._process.trigger is None:
            return
        self.sample.notify()


def parity_getter(device: La1Device, bank: int) -> Callable[[], bool]:
    """A getter for the ``parity_ok`` atom of one bank: when the bank
    drives a beat, its parity output must be the even byte parity of the
    data beat."""
    port = device.banks[bank].read_port
    config = device.config

    def ok() -> bool:
        driving = port.stat_data_valid.read() or port.stat_data_valid2.read()
        if not driving:
            return True
        beat = port.data_out.read()
        expected = 0
        if config.beat_bits < 8:
            expected = even_parity_int(beat, config.beat_bits)
        else:
            for lane in range(config.byte_lanes):
                expected |= even_parity_int(
                    (beat >> (8 * lane)) & 0xFF, 8
                ) << lane
        return port.parity_out.read() == expected

    return ok


def attach_read_mode_monitors(
    sim: Simulator,
    device: La1Device,
    clocks: ClockPair,
    stop_on_failure: bool = False,
    include_parity: bool = True,
) -> list[AssertionMonitor]:
    """Compile and bind the read-mode assertion set (all banks).

    Returns the attached monitors; inspect them (or wrap in
    :func:`repro.abv.summarize`) after the run.
    """
    from ..psl import builder as B

    sampler = EdgeSampler(sim, clocks)
    actions = (FailureAction.REPORT, FailureAction.STOP) if stop_on_failure \
        else (FailureAction.REPORT,)
    monitors: list[AssertionMonitor] = []
    for bank_idx, bank in enumerate(device.banks):
        port = bank.read_port
        bindings = {
            A.read_req(bank_idx): port.stat_read_req,
            A.read_fetch(bank_idx): port.stat_read_fetch,
            A.data_valid(bank_idx): port.stat_data_valid,
            A.data_valid2(bank_idx): port.stat_data_valid2,
        }
        for name, prop in read_mode_suite(device.config.banks):
            if f"[{bank_idx}]" not in name:
                continue
            monitor = AssertionMonitor(prop, name, bindings, actions)
            monitor.attach(sim, sampler.sample)
            monitors.append(monitor)
        if include_parity:
            parity_atom = f"parity_ok_{bank_idx}"
            valid_atom = A.data_valid(bank_idx)
            prop = B.always(
                B.implies(B.atom(valid_atom) | B.atom(A.data_valid2(bank_idx)),
                          B.atom(parity_atom))
            )
            monitor = AssertionMonitor(
                prop,
                f"parity_even[{bank_idx}]",
                {
                    parity_atom: parity_getter(device, bank_idx),
                    valid_atom: port.stat_data_valid,
                    A.data_valid2(bank_idx): port.stat_data_valid2,
                },
                actions,
            )
            monitor.attach(sim, sampler.sample)
            monitors.append(monitor)
    return monitors
