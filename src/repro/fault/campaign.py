"""The fault-injection campaign runner.

A campaign sweeps a fault list across Table-3-shaped random host
workloads and records, per fault, *which monitor caught it* -- or that
nothing did.  The per-fault verdicts use the standard fault-injection
taxonomy:

========== ==========================================================
detected   some assertion monitor fired; ``detected_by`` names them
silent     the fault corrupted observable behaviour (transaction log
           differs from the golden run / a property is violated) but
           no monitor fired -- an assertion-coverage gap
masked     the fault was injected but never perturbed observable
           behaviour under this workload
truncated  a wall-clock deadline expired before the verdict
error      the engine itself raised; campaigns contain the exception
           and keep sweeping (the diagnostic lands in ``detail``)
========== ==========================================================

Robustness contract: a campaign never crashes (per-fault exception
containment), honours per-fault and whole-campaign wall-clock deadlines
with structured ``truncated`` verdicts, and checkpoints every verdict to
a JSON state file -- written atomically (temp file + ``os.replace`` +
fsync) -- so a killed campaign resumes, skipping completed faults, to
the same final report (:meth:`CampaignReport.signature`).  Under
``jobs > 1`` the sweep runs on the supervised pool
(:func:`repro.par.run_supervised`): crashed or hung workers are reaped
and their shards retried with backoff, a deterministically-failing
shard is quarantined into structured ``error`` verdicts after its
``shard_attempts`` budget instead of aborting the run, and an optional
``journal_path`` write-ahead journal lets a killed coordinator resume
without recomputing any collected shard.
"""

from __future__ import annotations

import json
import os
import time
import traceback
import warnings
from typing import Callable, List, Optional

from ..asm import AsmModelChecker, ExplorationConfig
from ..core.asm_model import La1AsmConfig
from ..core.monitors import attach_read_mode_monitors
from ..core.ovl_bindings import build_la1_top_with_ovl
from ..core.properties import asm_labeling, device_property_suite
from ..core.rtl_testbench import RtlHost
from ..core.spec import La1Config
from ..core.sysc_model import build_la1_system
from ..psl.monitor import Verdict
from ..rtl import RtlSimulator, elaborate
from .asm_perturb import build_perturbed_la1_asm
from .models import (
    PROTOCOL_KINDS,
    AsmPerturbation,
    Fault,
    ProtocolMutation,
    RtlBitFlip,
    RtlStuckAt,
    StimulusMutation,
)
from .rtl_inject import RtlFaultInjector, collapse_faults
from .sysc_inject import ProtocolSaboteur

__all__ = [
    "CampaignConfig",
    "FaultVerdict",
    "CampaignReport",
    "FaultCampaign",
    "default_fault_list",
    "merge_pattern_verdicts",
]

OUTCOMES = ("detected", "silent", "masked", "truncated", "error")


class CampaignConfig:
    """Workload shape and robustness budgets of one campaign."""

    def __init__(
        self,
        banks: int = 2,
        traffic: int = 24,
        seed: int = 2004,
        backend: str = "compiled",
        rtl_cycles: int = 160,
        fault_deadline_s: Optional[float] = 30.0,
        campaign_deadline_s: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
        max_faults: Optional[int] = None,
        shard_attempts: int = 2,
        shard_deadline_s: Optional[float] = None,
        retry_backoff_s: float = 0.05,
        journal_path: Optional[str] = None,
        chaos_kill_marker: Optional[str] = None,
        chaos_hang_marker: Optional[str] = None,
        design: Optional[str] = None,
        patterns: int = 1,
    ):
        #: a ``repro.dsl.zoo`` design name switches the campaign from
        #: the LA-1 transaction workload to the open-loop DSL workload
        #: (same engines, ladders, checkpoints and report format)
        self.design = design
        self.banks = banks
        self.traffic = traffic
        self.seed = seed
        self.backend = backend
        self.rtl_cycles = rtl_cycles
        self.fault_deadline_s = fault_deadline_s
        self.campaign_deadline_s = campaign_deadline_s
        self.checkpoint_path = checkpoint_path
        self.max_faults = max_faults
        #: supervised execution budget (jobs > 1): attempts per shard
        #: before quarantine, per-shard wall-clock before the worker is
        #: killed, and the retry backoff base (repro.par.supervise)
        self.shard_attempts = shard_attempts
        self.shard_deadline_s = shard_deadline_s
        self.retry_backoff_s = retry_backoff_s
        #: write-ahead journal for jobs > 1: collected shard reports are
        #: durably appended as they land, so a killed coordinator
        #: resumes without recomputing any collected shard
        self.journal_path = journal_path
        #: chaos-injection markers (tests / bench / serve --smoke only):
        #: the first worker to claim one dies / hangs exactly once
        self.chaos_kill_marker = chaos_kill_marker
        self.chaos_hang_marker = chaos_hang_marker
        #: PPSFP's second axis: sweep each stimulus-sensitive fault
        #: (RTL state faults, stimulus mutations) under this many
        #: stimulus patterns -- pattern 0 is the base stream, pattern
        #: p > 0 keeps the command schedule and re-draws addr/data from
        #: a derived seed.  A *workload* knob: the merged per-fault
        #: verdict is part of the campaign identity.
        if patterns < 1:
            raise ValueError("patterns must be >= 1")
        if design and patterns > 1:
            raise ValueError(
                "pattern packing applies to the LA-1 transaction "
                "workload; zoo campaigns drive open-loop stimulus"
            )
        self.patterns = patterns

    def la1(self) -> La1Config:
        """The concrete simulation-scale config (the flow's shape)."""
        return La1Config(banks=self.banks, beat_bits=16, addr_bits=4)

    def fingerprint(self) -> dict:
        """The workload identity a checkpoint must match to be resumed
        (budgets and paths excluded: they may differ between the killed
        and the resuming invocation without changing any verdict)."""
        fingerprint = {
            "banks": self.banks,
            "traffic": self.traffic,
            "seed": self.seed,
            "backend": self.backend,
            "rtl_cycles": self.rtl_cycles,
        }
        # only zoo campaigns carry the key, so LA-1 checkpoints written
        # before the DSL existed stay resume-compatible
        if self.design:
            fingerprint["design"] = self.design
        # same back-compat pattern: single-pattern campaigns (the only
        # kind older checkpoints hold) carry no key
        if self.patterns > 1:
            fingerprint["patterns"] = self.patterns
        return fingerprint


class FaultVerdict:
    """One fault's campaign outcome."""

    def __init__(self, fault_id: str, layer: str, kind: str, outcome: str,
                 detected_by: Optional[list] = None, detail: str = "",
                 cpu_time: float = 0.0, expected_detectable: bool = True,
                 coverage_points: Optional[list] = None,
                 collapsed_from: Optional[list] = None):
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        self.fault_id = fault_id
        self.layer = layer
        self.kind = kind
        self.outcome = outcome
        self.detected_by = list(detected_by or [])
        self.detail = detail
        self.cpu_time = cpu_time
        self.expected_detectable = expected_detectable
        #: the coverage points the detecting run exercised -- which
        #: stimulus coverage detection of this fault required (empty for
        #: undetected faults and for checkpoints from older campaigns)
        self.coverage_points = list(coverage_points or [])
        #: fault collapsing bookkeeping: on a representative, the
        #: ``fault_id`` of every equivalent fault this verdict also
        #: answers for; on a member, the representative's ``fault_id``
        self.collapsed_from = list(collapsed_from or [])

    def to_dict(self) -> dict:
        return {
            "fault_id": self.fault_id,
            "layer": self.layer,
            "kind": self.kind,
            "outcome": self.outcome,
            "detected_by": self.detected_by,
            "detail": self.detail,
            "cpu_time": round(self.cpu_time, 4),
            "expected_detectable": self.expected_detectable,
            "coverage_points": self.coverage_points,
            "collapsed_from": self.collapsed_from,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultVerdict":
        return cls(
            data["fault_id"], data["layer"], data["kind"], data["outcome"],
            data.get("detected_by", ()), data.get("detail", ""),
            data.get("cpu_time", 0.0), data.get("expected_detectable", True),
            data.get("coverage_points", ()), data.get("collapsed_from", ()),
        )

    def __repr__(self):
        by = f" by {','.join(self.detected_by)}" if self.detected_by else ""
        return f"FaultVerdict({self.fault_id}: {self.outcome}{by})"


#: pattern-merge precedence: the strongest observation across the
#: pattern sweep wins (a fault detected under any stimulus variant is
#: detected; an engine error anywhere must surface; etc.)
_PATTERN_PRECEDENCE = ("detected", "error", "truncated", "silent")


def merge_pattern_verdicts(fault: Fault,
                           verdicts: List[FaultVerdict]) -> FaultVerdict:
    """Fold the per-pattern verdicts of one fault into its campaign
    verdict.

    Deterministic by construction -- precedence over outcomes, sorted
    unions over detection/coverage sets, details resolved in pattern
    order -- so the lane-tiled sweep and the per-fault pattern loop
    produce bit-identical results.  With one pattern this is the
    identity (modulo ``cpu_time``, which always sums).
    """
    if not verdicts:
        raise ValueError(f"no pattern verdicts for {fault.fault_id}")
    cpu_time = sum(v.cpu_time for v in verdicts)
    chosen = None
    for outcome in _PATTERN_PRECEDENCE:
        matching = [v for v in verdicts if v.outcome == outcome]
        if matching:
            chosen = matching[0]
            break
    if chosen is None:  # every pattern masked
        chosen = next(
            (v for v in verdicts if v.detail == "no observable divergence"),
            verdicts[0],
        )
        return FaultVerdict(
            fault.fault_id, fault.layer, fault.kind, "masked",
            detail=chosen.detail, cpu_time=cpu_time,
            expected_detectable=fault.expect_detectable,
        )
    detected_by = chosen.detected_by
    coverage_points = chosen.coverage_points
    if chosen.outcome == "detected":
        detected_by = sorted({
            name for v in verdicts if v.outcome == "detected"
            for name in v.detected_by
        })
        coverage_points = sorted({
            point for v in verdicts if v.outcome == "detected"
            for point in v.coverage_points
        })
    return FaultVerdict(
        fault.fault_id, fault.layer, fault.kind, chosen.outcome,
        detected_by, chosen.detail, cpu_time,
        expected_detectable=fault.expect_detectable,
        coverage_points=coverage_points,
    )


def _merge_numeric_stats(a: dict, b: dict) -> dict:
    """Engine-stat merge: numeric leaves add, dicts recurse, anything
    else takes the incoming value (backends/names agree across shards)."""
    out = dict(a)
    for key, value in b.items():
        mine = out.get(key)
        if isinstance(mine, dict) and isinstance(value, dict):
            out[key] = _merge_numeric_stats(mine, value)
        elif (isinstance(mine, (int, float)) and not isinstance(mine, bool)
              and isinstance(value, (int, float))
              and not isinstance(value, bool)):
            out[key] = mine + value
        else:
            out[key] = value
    return out


class CampaignReport:
    """All verdicts of a campaign plus the coverage arithmetic."""

    def __init__(self, verdicts: List[FaultVerdict], fingerprint: dict,
                 cpu_time: float = 0.0,
                 engine_stats: Optional[dict] = None):
        self.verdicts = list(verdicts)
        self.fingerprint = dict(fingerprint)
        self.cpu_time = cpu_time
        #: accounting from the engines underneath (e.g. the shared
        #: compiled-RTL simulator's design size and edge counts)
        self.engine_stats = dict(engine_stats or {})

    # ------------------------------------------------------------------
    # the mergeable-result protocol (repro.par): associative/commutative
    # ------------------------------------------------------------------
    @staticmethod
    def _verdict_rank(verdict: FaultVerdict) -> str:
        """Timing-independent serialization: the deterministic tie-break
        when two shards somehow report the same fault (min wins, which
        makes the duplicate-resolution order-independent)."""
        data = verdict.to_dict()
        data.pop("cpu_time", None)
        return json.dumps(data, sort_keys=True)

    def merge(self, other: "CampaignReport") -> "CampaignReport":
        """Fold ``other`` into this report in place and return self.

        Mirrors :meth:`repro.cover.CoverageDB.merge`'s lossless-merge
        contract: the verdict list is the union keyed by ``fault_id``
        (duplicates resolved by the timing-independent minimum, so merge
        order cannot matter), taxonomy counters -- being derived from
        the verdict list -- add, per-verdict coverage points union, CPU
        times add, and numeric engine stats add.  The merged verdict
        list is kept sorted by ``fault_id`` so any association or
        permutation of shards produces the identical report.  Merging
        reports of different workload fingerprints raises ``ValueError``
        (their verdicts are not comparable).
        """
        if (self.fingerprint and other.fingerprint
                and self.fingerprint != other.fingerprint):
            raise ValueError(
                "cannot merge campaign reports with different workload "
                f"fingerprints: {self.fingerprint} != {other.fingerprint}"
            )
        if not self.fingerprint:
            self.fingerprint = dict(other.fingerprint)
        union = {v.fault_id: v for v in self.verdicts}
        for verdict in other.verdicts:
            mine = union.get(verdict.fault_id)
            if mine is None or (self._verdict_rank(verdict)
                                < self._verdict_rank(mine)):
                union[verdict.fault_id] = verdict
        self.verdicts = [union[fault_id] for fault_id in sorted(union)]
        self.cpu_time += other.cpu_time
        self.engine_stats = _merge_numeric_stats(
            self.engine_stats, other.engine_stats)
        return self

    @classmethod
    def merged(cls, reports: List["CampaignReport"]) -> "CampaignReport":
        """A fresh report holding the merge of ``reports``."""
        out = cls([], {})
        for report in reports:
            out.merge(report)
        return out

    # ------------------------------------------------------------------
    def counts(self) -> dict:
        out = {outcome: 0 for outcome in OUTCOMES}
        for verdict in self.verdicts:
            out[verdict.outcome] += 1
        return out

    def coverage(self, layer: Optional[str] = None) -> float:
        """Detection coverage: detected / expected-detectable faults
        (optionally restricted to one layer).  1.0 when the restriction
        selects no fault."""
        pool = [
            v for v in self.verdicts
            if v.expected_detectable and (layer is None or v.layer == layer)
        ]
        if not pool:
            return 1.0
        detected = sum(1 for v in pool if v.outcome == "detected")
        return detected / len(pool)

    def gaps(self) -> List[FaultVerdict]:
        """Faults that perturbed behaviour without any monitor firing --
        the assertion-coverage holes the campaign surfaces."""
        return [v for v in self.verdicts if v.outcome == "silent"]

    def signature(self) -> tuple:
        """Timing-independent identity: equal signatures mean equal
        campaign conclusions (used by the resume and reproducibility
        tests)."""
        return tuple(sorted(
            (v.fault_id, v.outcome, tuple(v.detected_by))
            for v in self.verdicts
        ))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "cpu_time": round(self.cpu_time, 3),
            "engine_stats": self.engine_stats,
            "counts": self.counts(),
            "coverage": {
                "overall": round(self.coverage(), 4),
                "rtl": round(self.coverage("rtl"), 4),
                "sysc": round(self.coverage("sysc"), 4),
                "asm": round(self.coverage("asm"), 4),
                "stim": round(self.coverage("stim"), 4),
            },
            "faults": [v.to_dict() for v in self.verdicts],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignReport":
        return cls(
            [FaultVerdict.from_dict(v) for v in data.get("faults", ())],
            data.get("fingerprint", {}),
            data.get("cpu_time", 0.0),
            data.get("engine_stats", {}),
        )

    def render(self) -> str:
        lines = [
            f"fault campaign ({self.fingerprint.get('banks', '?')} banks, "
            f"{len(self.verdicts)} faults, {self.cpu_time:.1f}s):"
        ]
        for verdict in self.verdicts:
            by = f"  <- {', '.join(verdict.detected_by)}" \
                if verdict.detected_by else ""
            lines.append(
                f"  [{verdict.outcome:>9}] {verdict.fault_id}{by}"
            )
        counts = self.counts()
        lines.append(
            "  " + ", ".join(f"{k}={v}" for k, v in counts.items() if v)
        )
        lines.append(
            f"  detection coverage: {self.coverage():.0%} overall, "
            f"{self.coverage('sysc'):.0%} protocol"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# default fault list
# ----------------------------------------------------------------------
def default_fault_list(banks: int = 2, include_gap_probes: bool = True,
                       rtl_top: str = "la1_top") -> List[Fault]:
    """The smoke campaign's fault list.

    Every protocol mutation kind on every bank, one ASM perturbation of
    each kind, RTL stuck-ats on the read pipeline stage registers plus an
    SEU on the fetched-word register (a deliberate datapath gap probe:
    parity is recomputed from the corrupted word, so only a scoreboard
    could see it).  Gap probes ship with ``expect_detectable=False`` and
    are excluded from the coverage denominator.
    """
    faults: List[Fault] = []
    for bank in range(banks):
        for kind in PROTOCOL_KINDS:
            faults.append(ProtocolMutation(kind, bank))
    if include_gap_probes:
        # occurrence 3 lands the address corruption on a read issued
        # after writes have differentiated the array contents, so the
        # divergence is visible in the transaction log (silent, not
        # masked) under the default seed
        faults.append(ProtocolMutation("corrupt_address", 0, occurrence=3))
        faults.append(ProtocolMutation("drop_command", banks - 1))
    faults.append(AsmPerturbation("stall_read", 0))
    faults.append(AsmPerturbation("drop_commit", 0))
    faults.append(AsmPerturbation("spurious_data", banks - 1))
    faults.append(
        RtlStuckAt(f"{rtl_top}.bank0.read_port.st_out0", 0, 0))
    faults.append(
        RtlStuckAt(f"{rtl_top}.bank{banks - 1}.read_port.st_out1", 0, 0))
    faults.append(
        RtlStuckAt(f"{rtl_top}.bank0.read_port.st_fetch", 0, 0))
    if include_gap_probes:
        # stuck-at-1 on the fetch stage drags the whole read pipeline
        # high; the host's flow control backs off and no checker fires --
        # a real observability gap of the OVL suite under this testbench
        faults.append(RtlStuckAt(
            f"{rtl_top}.bank0.read_port.st_fetch", 0, 1,
            expect_detectable=False,
        ))
        # SEU in the SRAM array (bank 0, word 2, bit 3): parity is
        # recomputed from the corrupted word, so the read completes
        # cleanly and only the golden-run comparison can tell
        faults.append(RtlBitFlip(
            f"{rtl_top}.bank0.sram.mem", 67, at_edge=4,
            expect_detectable=False,
        ))
    return faults


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class FaultCampaign:
    """Sweep a fault list, one isolated run per fault, with golden-run
    differencing, checkpointing and exception containment."""

    def __init__(self, config: Optional[CampaignConfig] = None):
        self.config = config or CampaignConfig()
        self._rtl_sim: Optional[RtlSimulator] = None
        self._flat_design = None
        self._ppsfp_sims: dict = {}
        self._rtl_goldens: dict = {}  # pattern -> golden log signature
        self._rtl_lane_goldens: dict = {}  # pattern -> golden-pass log
        self._sysc_golden: Optional[tuple] = None
        self._zoo_stim: Optional[list] = None

    # -- workload ------------------------------------------------------
    def _schedule(self):
        """The base command schedule (and pattern-0 values)."""
        from ..core.traffic import traffic_schedule

        config = self.config
        return traffic_schedule(config.la1(), config.traffic, config.seed)

    def _queue_traffic(self, host, pattern: int = 0) -> None:
        """The flow's Table-3 workload shape: seeded random read/write
        mix over all banks (identical at both simulation layers).
        ``pattern > 0`` keeps the command schedule and re-draws the
        addr/data fields from a derived seed (PPSFP's second axis)."""
        from ..core.traffic import queue_traffic

        config = self.config
        queue_traffic(host, config.la1(), config.traffic, config.seed,
                      pattern)

    @staticmethod
    def _log_signature(host) -> tuple:
        """Golden-comparable transaction log of either host flavour."""
        return tuple(
            (r.bank, r.addr, r.word, tuple(r.beats), tuple(r.parities))
            for r in host.results
        )

    # -- SystemC layer -------------------------------------------------
    def _sysc_duration(self) -> int:
        return self.config.traffic * 20 + 200

    def _sysc_golden_run(self) -> tuple:
        if self._sysc_golden is None:
            sim, clocks, device, host = build_la1_system(self.config.la1())
            monitors = attach_read_mode_monitors(sim, device, clocks)
            self._queue_traffic(host)
            sim.run(self._sysc_duration())
            failed = [m.name for m in monitors if m.finish() is Verdict.FAILS]
            if failed:
                raise RuntimeError(
                    f"golden SystemC run fails assertions {failed}; "
                    "campaign verdicts would be meaningless"
                )
            self._sysc_golden = self._log_signature(host)
        return self._sysc_golden

    def _run_sysc(self, fault: ProtocolMutation) -> FaultVerdict:
        from ..cover.functional import La1FunctionalCoverage

        golden = self._sysc_golden_run()
        sim, clocks, device, host = build_la1_system(self.config.la1())
        saboteur = ProtocolSaboteur(sim, device, fault)
        monitors = attach_read_mode_monitors(sim, device, clocks)
        functional = La1FunctionalCoverage(host)
        self._queue_traffic(host)
        functional.detach()
        sim.run(self._sysc_duration())
        detected_by = sorted(
            m.name for m in monitors if m.finish() is Verdict.FAILS
        )
        if detected_by:
            outcome, detail = "detected", ""
        elif not saboteur.triggered:
            outcome, detail = "masked", "mutation window never reached"
        elif self._log_signature(host) != golden:
            outcome = "silent"
            detail = ("transaction log diverged from golden run with no "
                      "assertion firing")
        else:
            outcome, detail = "masked", "no observable divergence"
        return FaultVerdict(
            fault.fault_id, fault.layer, fault.kind, outcome, detected_by,
            detail, expected_detectable=fault.expect_detectable,
            coverage_points=(functional.harvest().covered_keys()
                             if detected_by else None),
        )

    # -- RTL layer -----------------------------------------------------
    def _design(self):
        """The flattened LA-1-with-OVL netlist every RTL engine of this
        campaign shares (elaborated once; backends compile lazily)."""
        if self._flat_design is None:
            if self.config.design:
                from ..dsl.zoo import build_elaborated

                self._flat_design = build_elaborated(
                    self.config.design).flat
            else:
                self._flat_design = elaborate(
                    build_la1_top_with_ovl(self.config.la1()))
        return self._flat_design

    def _zoo_stimulus(self):
        """The open-loop per-cycle input vectors of a zoo campaign."""
        if self._zoo_stim is None:
            from ..dsl.faults import zoo_stimulus

            self._zoo_stim = zoo_stimulus(
                self._design(), self.config.seed, self.config.rtl_cycles)
        return self._zoo_stim

    def _ppsfp_batch(self, batch, lanes: int,
                     patterns_per_pass: Optional[int] = None) -> tuple:
        """One lane-parallel pass, routed by workload kind (the hook
        :func:`repro.fault.ppsfp.run_ppsfp_batches` dispatches through)."""
        if self.config.design:
            from ..dsl.faults import run_zoo_batch

            return run_zoo_batch(self, batch, lanes)
        from .ppsfp import _run_batch

        return _run_batch(self, batch, lanes, patterns_per_pass)

    def _rtl_simulator(self) -> RtlSimulator:
        if self._rtl_sim is None:
            self._rtl_sim = RtlSimulator(
                self._design(), backend=self.config.backend,
            )
        return self._rtl_sim

    def _ppsfp_simulator(self, lanes: int) -> RtlSimulator:
        """The lane-parallel sibling of :meth:`_rtl_simulator` (same
        flattened netlist, ``"bitpar"`` backend), cached per lane count."""
        sim = self._ppsfp_sims.get(lanes)
        if sim is None:
            sim = RtlSimulator(
                self._design(), backend="bitpar", lanes=lanes,
            )
            self._ppsfp_sims[lanes] = sim
        return sim

    def _rtl_golden_run(self, pattern: int = 0) -> tuple:
        golden = self._rtl_goldens.get(pattern)
        if golden is not None:
            return golden
        if self.config.design:
            from ..dsl.faults import zoo_golden_run

            golden = zoo_golden_run(self)
        else:
            sim = self._rtl_simulator()
            sim.reset()
            host = RtlHost(sim, self.config.la1())
            self._queue_traffic(host, pattern)
            host.run_cycles(self.config.rtl_cycles)
            if sim.failures:
                raise RuntimeError(
                    f"golden RTL run (pattern {pattern}) fails OVL "
                    f"checks {sim.failures[:3]}"
                )
            golden = self._log_signature(host)
        self._rtl_goldens[pattern] = golden
        return golden

    def _run_rtl(self, fault: Fault, pattern: int = 0) -> FaultVerdict:
        if self.config.design:
            from ..dsl.faults import run_zoo_fault

            return run_zoo_fault(self, fault)
        from ..cover.functional import La1FunctionalCoverage

        golden = self._rtl_golden_run(pattern)
        sim = self._rtl_simulator()
        sim.reset()
        injector = RtlFaultInjector(sim, [fault])
        injector.attach()
        try:
            host = RtlHost(sim, self.config.la1())
            functional = La1FunctionalCoverage(host)
            self._queue_traffic(host, pattern)
            functional.detach()
            host.run_cycles(self.config.rtl_cycles)
        finally:
            injector.detach()
        detected_by = sorted({record.name for record in sim.failures})
        if detected_by:
            outcome, detail = "detected", ""
        elif not injector.triggered:
            outcome, detail = "masked", "fault never changed a state bit"
        elif self._log_signature(host) != golden:
            outcome = "silent"
            detail = ("transaction log diverged from golden run with no "
                      "OVL checker firing")
        else:
            outcome, detail = "masked", "no observable divergence"
        return FaultVerdict(
            fault.fault_id, fault.layer, fault.kind, outcome, detected_by,
            detail, expected_detectable=fault.expect_detectable,
            coverage_points=(functional.harvest().covered_keys()
                             if detected_by else None),
        )

    # -- stimulus layer ------------------------------------------------
    def _run_stim(self, fault: StimulusMutation,
                  pattern: int = 0) -> FaultVerdict:
        """Per-fault scalar path for a host-side stimulus mutation: one
        compiled run driving the mutated stream, diffed against the
        pattern's golden run with the issued address excluded (the
        mutation corrupts the issued fields themselves; see
        :mod:`repro.fault.stim_inject`)."""
        from ..core.traffic import schedule_values
        from ..cover.functional import La1FunctionalCoverage
        from .stim_inject import (
            queue_mutated_traffic,
            reduce_log_signature,
            stim_log_signature,
        )

        if self.config.design:
            raise RuntimeError(
                "stimulus mutations target the LA-1 transaction workload"
            )
        config = self.config
        la1 = config.la1()
        golden = reduce_log_signature(self._rtl_golden_run(pattern))
        sim = self._rtl_simulator()
        sim.reset()
        host = RtlHost(sim, la1)
        functional = La1FunctionalCoverage(host)
        schedule = self._schedule()
        values = schedule_values(la1, schedule, config.seed, pattern)
        triggered = queue_mutated_traffic(host, la1, schedule, values, fault)
        functional.detach()
        host.run_cycles(config.rtl_cycles)
        detected_by = sorted({record.name for record in sim.failures})
        if detected_by:
            outcome, detail = "detected", ""
        elif not triggered:
            outcome, detail = "masked", "mutation window never reached"
        elif stim_log_signature(host) != golden:
            outcome = "silent"
            detail = ("transaction log diverged from golden run with no "
                      "OVL checker firing")
        else:
            outcome, detail = "masked", "no observable divergence"
        return FaultVerdict(
            fault.fault_id, fault.layer, fault.kind, outcome, detected_by,
            detail, expected_detectable=fault.expect_detectable,
            coverage_points=(functional.harvest().covered_keys()
                             if detected_by else None),
        )

    # -- ASM layer -----------------------------------------------------
    def _run_asm(self, fault: AsmPerturbation) -> FaultVerdict:
        from ..cover.asm_cov import AsmCoverage, la1_state_predicates

        machine = build_perturbed_la1_asm(
            La1AsmConfig(banks=self.config.banks), fault,
        )
        # exploration drives the machine through fire(), so the coverage
        # observer sees every transition the checker takes
        asm_cov = AsmCoverage(machine, la1_state_predicates(self.config.banks))
        labeling = asm_labeling(self.config.banks)
        suite = [
            (name, prop)
            for name, prop in device_property_suite(self.config.banks)
            if name.endswith(f"[{fault.bank}]")
        ]
        deadline = self.config.fault_deadline_s
        start = time.perf_counter()
        detected_by: List[str] = []
        truncated = False
        for name, prop in suite:
            remaining = None
            if deadline is not None:
                remaining = deadline - (time.perf_counter() - start)
                if remaining <= 0:
                    truncated = True
                    break
            checker = AsmModelChecker(
                machine, labeling,
                ExplorationConfig(max_states=50_000,
                                  max_transitions=500_000,
                                  deadline_s=remaining),
            )
            result = checker.check(prop, name)
            if result.holds is False:
                detected_by.append(name)
            elif result.holds is None and result.truncated_reason == "deadline":
                truncated = True
        asm_cov.detach()
        if detected_by:
            outcome, detail = "detected", ""
        elif truncated:
            outcome, detail = "truncated", "per-fault deadline expired"
        else:
            outcome = "silent"
            detail = (f"no property of bank {fault.bank} violated by the "
                      "perturbed transition relation")
        return FaultVerdict(
            fault.fault_id, fault.layer, fault.kind, outcome, detected_by,
            detail, expected_detectable=fault.expect_detectable,
            coverage_points=(asm_cov.harvest().covered_keys()
                             if detected_by else None),
        )

    # -- checkpointing -------------------------------------------------
    def _load_checkpoint(self) -> dict:
        path = self.config.checkpoint_path
        if not path or not os.path.exists(path):
            return {}
        try:
            with open(path) as fh:
                state = json.load(fh)
        except (OSError, ValueError) as exc:
            # a truncated or corrupt checkpoint (crash mid-write with a
            # pre-atomic writer, disk trouble) must not make resume
            # crash: warn and start empty -- completed work is lost but
            # the campaign still finishes with correct verdicts
            warnings.warn(
                f"campaign checkpoint {path} is unreadable ({exc}); "
                "resuming with an empty state",
                stacklevel=2,
            )
            return {}
        if not isinstance(state, dict):
            warnings.warn(
                f"campaign checkpoint {path} holds a non-object payload;"
                " resuming with an empty state",
                stacklevel=2,
            )
            return {}
        if state.get("fingerprint") != self.config.fingerprint():
            return {}  # different workload: verdicts not transferable
        return {
            fault_id: FaultVerdict.from_dict(data)
            for fault_id, data in state.get("verdicts", {}).items()
        }

    def _save_checkpoint(self, completed: dict) -> None:
        path = self.config.checkpoint_path
        if not path:
            return
        state = {
            "fingerprint": self.config.fingerprint(),
            "verdicts": {
                fault_id: verdict.to_dict()
                for fault_id, verdict in completed.items()
            },
        }
        # atomic and durable: same-directory temp file, fsync'd before
        # the rename and the directory fsync'd after it -- a coordinator
        # killed at any instant leaves either the old checkpoint or the
        # new one, never a torn file
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(state, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        parent = os.path.dirname(os.path.abspath(path))
        try:
            fd = os.open(parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- the sweep -----------------------------------------------------
    def _pattern_count(self, fault: Fault) -> int:
        """How many stimulus patterns ``fault`` is swept under.  Only
        stimulus-sensitive faults of the LA-1 transaction workload see
        the pattern axis; protocol/ASM mutations run the base stream."""
        if self.config.design:
            return 1
        if isinstance(fault, (RtlStuckAt, RtlBitFlip, StimulusMutation)):
            return self.config.patterns
        return 1

    def _dispatch(self, fault: Fault) -> FaultVerdict:
        if isinstance(fault, ProtocolMutation):
            return self._run_sysc(fault)
        if isinstance(fault, AsmPerturbation):
            return self._run_asm(fault)
        if isinstance(fault, StimulusMutation):
            runner = self._run_stim
        elif isinstance(fault, (RtlStuckAt, RtlBitFlip)):
            runner = self._run_rtl
        else:
            raise TypeError(f"no runner for {fault!r}")
        patterns = self._pattern_count(fault)
        if patterns == 1:
            return runner(fault)
        return merge_pattern_verdicts(
            fault, [runner(fault, p) for p in range(patterns)])

    def execute_fault(self, fault: Fault) -> FaultVerdict:
        """Run one fault with exception containment and timing -- the
        unit of work both the inline sweep and the parallel shard
        workers (:func:`repro.par.workers.campaign_shard`) execute."""
        fault_start = time.perf_counter()
        try:
            verdict = self._dispatch(fault)
        except Exception:
            verdict = FaultVerdict(
                fault.fault_id, fault.layer, fault.kind, "error",
                detail=traceback.format_exc(limit=3),
                expected_detectable=fault.expect_detectable,
            )
        verdict.cpu_time = time.perf_counter() - fault_start
        return verdict

    def execute_faults(self, faults: List[Fault], lanes: int = 1,
                       patterns_per_pass: Optional[int] = None,
                       ) -> List[FaultVerdict]:
        """Verdicts for ``faults`` in order.

        With ``lanes > 1`` the PPSFP-compatible faults (RTL state
        faults, lane-encodable stimulus mutations) are swept in
        lane-parallel batches (:mod:`repro.fault.ppsfp`) and everything
        else -- plus any lane the degradation ladder rejects -- runs
        through the ordinary per-fault :meth:`execute_fault`.  Verdicts
        are bit-identical either way (only ``cpu_time`` differs).
        ``patterns_per_pass`` caps how many stimulus-pattern groups one
        pass tiles (an execution knob; None auto-fits the lane budget).
        """
        batched: dict = {}
        if lanes > 1:
            from .ppsfp import ppsfp_compatible, run_ppsfp_batches

            encodable = [
                f for f in faults
                if isinstance(f, (RtlStuckAt, RtlBitFlip, StimulusMutation))
            ]
            if encodable:
                design = self._design()
                compatible = [f for f in encodable
                              if ppsfp_compatible(design, f)]
                batched = run_ppsfp_batches(
                    self, compatible, lanes,
                    patterns_per_pass=patterns_per_pass)
        return [
            batched.get(fault.fault_id) or self.execute_fault(fault)
            for fault in faults
        ]

    def _collapse(self, faults: List[Fault]):
        """The campaign-level fault-collapsing step: a
        :class:`~repro.fault.rtl_inject.CollapsePlan` when any stuck-ats
        dedupe onto shared state bits, else None."""
        if not any(isinstance(f, RtlStuckAt) for f in faults):
            return None
        plan = collapse_faults(faults, self._design())
        return plan if plan.groups else None

    def _expand_collapsed(self, plan, completed: dict, on_verdict) -> None:
        """Fan each representative's verdict back out to its collapsed
        members (equivalent faults share outcome, detection and coverage
        by construction; members keep their own identity and zero cost).
        Members already in ``completed`` -- e.g. from a pre-collapse
        checkpoint -- keep their recorded verdict."""
        for rep_id, members in plan.groups.items():
            rep = completed.get(rep_id)
            if rep is not None:
                rep.collapsed_from = sorted(m.fault_id for m in members)
            for member in members:
                if member.fault_id in completed:
                    continue
                if rep is not None:
                    verdict = FaultVerdict(
                        member.fault_id, member.layer, member.kind,
                        rep.outcome, rep.detected_by, rep.detail, 0.0,
                        expected_detectable=member.expect_detectable,
                        coverage_points=rep.coverage_points,
                        collapsed_from=[rep_id],
                    )
                else:  # representative never swept (defensive)
                    verdict = FaultVerdict(
                        member.fault_id, member.layer, member.kind,
                        "truncated",
                        detail="collapse representative was not swept",
                        expected_detectable=member.expect_detectable,
                        collapsed_from=[rep_id],
                    )
                completed[member.fault_id] = verdict
                if on_verdict is not None:
                    on_verdict(verdict)

    #: relative per-fault cost by layer, used by the deterministic shard
    #: planner: the ASM perturbations each re-model-check a property
    #: suite and dominate a campaign (about 90% of the 4-bank wall
    #: clock), so spreading them across shards is what makes jobs=N scale
    LAYER_WEIGHTS = {"asm": 60.0, "sysc": 2.0, "rtl": 1.0, "stim": 1.0}

    def _run_parallel(self, pending: List[Fault], completed: dict,
                      on_verdict, jobs: int, start: float,
                      lanes: int = 1,
                      patterns_per_pass: Optional[int] = None) -> dict:
        """Fan the pending faults out over the *supervised* process pool
        (one shard per weight-balanced fault group,
        :func:`repro.par.run_supervised`).  Fills ``completed``
        (checkpointing after every collected shard) and returns the
        merged engine stats.  The supervision ladder applies per shard:
        a crashed or hung worker is reaped and its shard retried with
        backoff (``shard_attempts`` budget); a shard that fails every
        attempt is quarantined into structured ``error`` verdicts while
        every other shard completes; a campaign deadline turns
        uncollected shards into ``truncated`` verdicts; and with a
        ``journal_path`` every collected shard report is durably
        journaled, so a killed coordinator resumes bit-identically
        without recomputing it."""
        from ..par import ShardError, plan_shards, run_supervised
        from ..par.workers import campaign_init, campaign_shard

        config = self.config
        shards = plan_shards(
            pending, jobs,
            weight=lambda f: self.LAYER_WEIGHTS.get(f.layer, 1.0),
        )
        timeout = None
        if config.campaign_deadline_s is not None:
            timeout = max(
                0.0,
                config.campaign_deadline_s - (time.perf_counter() - start),
            )
        journal = None
        if config.journal_path:
            from ..serve.journal import Journal

            journal = Journal(config.journal_path)

        def collect(index: int, report_dict: dict) -> None:
            shard_report = CampaignReport.from_dict(report_dict)
            for verdict in shard_report.verdicts:
                completed[verdict.fault_id] = verdict
            self._save_checkpoint(completed)
            if on_verdict is not None:
                for verdict in shard_report.verdicts:
                    on_verdict(verdict)

        journal_fingerprint = {
            "campaign": config.fingerprint(),
            "lanes": lanes,
            "plan": [[f.fault_id for f in shard] for shard in shards],
        }
        # execution knob, journaled only when set so pre-existing
        # journals (and the default) keep their fingerprint
        if patterns_per_pass is not None:
            journal_fingerprint["patterns_per_pass"] = patterns_per_pass
        try:
            results, stats = run_supervised(
                campaign_shard,
                [(config, shard, lanes, patterns_per_pass)
                 for shard in shards],
                jobs=jobs,
                initializer=campaign_init,
                initargs=(config,),
                timeout_s=timeout,
                shard_deadline_s=config.shard_deadline_s,
                max_attempts=config.shard_attempts,
                backoff_base_s=config.retry_backoff_s,
                seed=config.seed,
                on_result=collect,
                journal=journal,
                journal_fingerprint=journal_fingerprint,
            )
        finally:
            if journal is not None:
                journal.close()
        shard_reports = []
        for shard, result in zip(shards, results):
            if isinstance(result, ShardError):
                # poison shard: quarantined after its retry budget --
                # structured error verdicts, the rest of the campaign
                # is unaffected
                errors = [
                    FaultVerdict(
                        f.fault_id, f.layer, f.kind, "error",
                        detail=(f"shard quarantined after "
                                f"{result.attempts} attempt(s): "
                                f"[{result.kind}] {result.detail}"),
                        expected_detectable=f.expect_detectable,
                    )
                    for f in shard
                ]
                shard_reports.append(
                    CampaignReport(errors, config.fingerprint()))
                for verdict in errors:
                    completed[verdict.fault_id] = verdict
                    if on_verdict is not None:
                        on_verdict(verdict)
                self._save_checkpoint(completed)
            elif result is None:  # deadline expired before collection
                truncated = [
                    FaultVerdict(
                        f.fault_id, f.layer, f.kind, "truncated",
                        detail="campaign wall-clock deadline expired",
                        expected_detectable=f.expect_detectable,
                    )
                    for f in shard
                ]
                shard_reports.append(
                    CampaignReport(truncated, config.fingerprint()))
                for verdict in truncated:
                    completed[verdict.fault_id] = verdict
                    if on_verdict is not None:
                        on_verdict(verdict)
                self._save_checkpoint(completed)
            else:
                shard_reports.append(CampaignReport.from_dict(result))
        merged = CampaignReport.merged(shard_reports)
        engine_stats = dict(merged.engine_stats)
        engine_stats["par"] = stats.to_dict()
        return engine_stats

    def run(self, faults: Optional[List[Fault]] = None,
            resume: bool = True,
            on_verdict: Optional[Callable[[FaultVerdict], None]] = None,
            jobs: int = 1,
            lanes: int = 1,
            patterns_per_pass: Optional[int] = None,
            ) -> CampaignReport:
        """Sweep ``faults`` (default: :func:`default_fault_list`).

        With ``resume`` (default) and a configured ``checkpoint_path``,
        verdicts recorded by an earlier -- possibly killed -- invocation
        with the same workload fingerprint are reused instead of re-run.

        Equivalent RTL stuck-ats are collapsed onto their shared state
        bit first (:func:`repro.fault.rtl_inject.collapse_faults`): only
        the representative is swept, members receive its verdict with
        the relation recorded in ``collapsed_from``.

        ``jobs > 1`` shards the pending faults across a process pool
        (:mod:`repro.par`): one deterministic weight-balanced shard per
        worker, each worker building its models and golden runs once.
        ``lanes > 1`` additionally batches the PPSFP-compatible RTL
        faults into lane-parallel bitpar passes inside each worker (and
        inline when ``jobs == 1``), multiplying with the process fan-out.
        With ``config.patterns > 1`` those passes additionally tile the
        lane word as patterns x faults (golden lane per pattern group);
        ``patterns_per_pass`` caps the tiling (None auto-fits, 1
        emulates the single-pattern-per-pass layout).  The determinism
        contract holds for every knob: verdicts are identical to a
        ``jobs=1, lanes=1`` sweep (only timing fields differ), the
        checkpoint file stays resume-compatible in every direction, and
        pool/batch failure degrades to inline per-fault execution.
        """
        config = self.config
        if faults is None:
            if config.design:
                from ..dsl.faults import zoo_fault_list

                faults = zoo_fault_list(self._design())
            else:
                faults = default_fault_list(config.banks)
        if config.max_faults is not None:
            faults = faults[: config.max_faults]
        collapse = self._collapse(faults)
        run_list = collapse.run_faults if collapse is not None else faults
        completed = self._load_checkpoint() if resume else {}
        start = time.perf_counter()
        pending = [f for f in run_list if f.fault_id not in completed]

        if jobs > 1 and len(pending) > 1:
            engine_stats = self._run_parallel(
                pending, completed, on_verdict, jobs, start, lanes,
                patterns_per_pass)
        else:
            if lanes > 1 and pending:
                self._run_ppsfp_inline(
                    pending, completed, on_verdict, start, lanes,
                    patterns_per_pass)
                pending = [f for f in pending
                           if f.fault_id not in completed]
            for fault in pending:
                elapsed = time.perf_counter() - start
                if (config.campaign_deadline_s is not None
                        and elapsed > config.campaign_deadline_s):
                    verdict = FaultVerdict(
                        fault.fault_id, fault.layer, fault.kind, "truncated",
                        detail="campaign wall-clock deadline expired",
                        expected_detectable=fault.expect_detectable,
                    )
                else:
                    verdict = self.execute_fault(fault)
                completed[fault.fault_id] = verdict
                self._save_checkpoint(completed)
                if on_verdict is not None:
                    on_verdict(verdict)
            engine_stats = {}
            if self._rtl_sim is not None:
                engine_stats["rtl_sim"] = self._rtl_sim.stats()
            for count, sim in sorted(self._ppsfp_sims.items()):
                engine_stats.setdefault("ppsfp", {})[str(count)] = sim.stats()

        if collapse is not None:
            self._expand_collapsed(collapse, completed, on_verdict)
            self._save_checkpoint(completed)
        verdicts = [completed[f.fault_id] for f in faults]
        return CampaignReport(
            verdicts, config.fingerprint(), time.perf_counter() - start,
            engine_stats,
        )

    def _run_ppsfp_inline(self, pending: List[Fault], completed: dict,
                          on_verdict, start: float, lanes: int,
                          patterns_per_pass: Optional[int] = None) -> None:
        """The serial sweep's PPSFP pre-pass: batch every compatible
        fault, checkpointing and reporting after each batch.  Remaining
        faults (and batches skipped by the campaign deadline) flow into
        the ordinary per-fault loop."""
        from .ppsfp import ppsfp_compatible, run_ppsfp_batches

        config = self.config
        encodable = [
            f for f in pending
            if isinstance(f, (RtlStuckAt, RtlBitFlip, StimulusMutation))
        ]
        if not encodable:
            return
        design = self._design()
        compatible = [f for f in encodable if ppsfp_compatible(design, f)]

        def expired() -> bool:
            return (config.campaign_deadline_s is not None
                    and time.perf_counter() - start
                    > config.campaign_deadline_s)

        def collect(batch_verdicts: dict) -> None:
            completed.update(batch_verdicts)
            self._save_checkpoint(completed)
            if on_verdict is not None:
                for verdict in batch_verdicts.values():
                    on_verdict(verdict)

        run_ppsfp_batches(self, compatible, lanes,
                          should_stop=expired, on_batch=collect,
                          patterns_per_pass=patterns_per_pass)
