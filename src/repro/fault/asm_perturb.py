"""Guarded-rule perturbations of the LA-1 ASM model.

The ASM layer's analogue of netlist fault injection: build the standard
``build_la1_asm`` machine, then wrap the effect function of one clock-edge
rule so a chosen bank's behaviour deviates from the interface contract.
Because the perturbation lives in the transition relation (not in any
particular trace), the exploration-based model checker decides
detectability over *all* environment choices -- the property suite must
produce a counterexample on some path, otherwise the suite has a hole.

Perturbation kinds (all permanent once built, so detection does not
depend on a lucky schedule):

* ``stall_read`` -- the bank's ``fetch -> out0`` pipeline advance is
  suppressed: reads hang in the array-access stage, violating the
  4-half-cycle latency contract (``read_latency[b]``).
* ``drop_commit`` -- the write commit strobe is swallowed while the
  array update still happens (``write_commit[b]``).
* ``spurious_data`` -- an idle read port spontaneously drives a first
  beat (``no_spurious_data[b]``).
"""

from __future__ import annotations

from ..asm.machine import AsmMachine
from ..core.asm_model import IDLE, La1AsmConfig, build_la1_asm
from .models import AsmPerturbation

__all__ = ["build_perturbed_la1_asm", "expected_asm_detectors"]


def expected_asm_detectors(fault: AsmPerturbation) -> tuple:
    """The property names (from ``device_property_suite``) each ASM
    perturbation kind is expected to trip, for report annotation."""
    b = fault.bank
    return {
        "stall_read": (f"read_latency[{b}]",),
        "drop_commit": (f"write_commit[{b}]",),
        "spurious_data": (f"no_spurious_data[{b}]",),
    }[fault.kind]


def build_perturbed_la1_asm(config: La1AsmConfig,
                            fault: AsmPerturbation) -> AsmMachine:
    """Return a fresh LA-1 ASM machine with ``fault`` woven into the
    appropriate clock-edge rule's update set."""
    if not isinstance(fault, AsmPerturbation):
        raise TypeError(f"{fault!r} is not an ASM perturbation")
    if not (0 <= fault.bank < config.banks):
        raise ValueError(
            f"bank {fault.bank} out of range for {config.banks}-bank model"
        )
    machine = build_la1_asm(config)
    rp = f"rp{fault.bank}"
    wcommit = f"wcommit{fault.bank}"
    edge_k = next(rule for rule in machine.rules if rule.name == "EdgeK")
    original = edge_k.effect

    if fault.kind == "stall_read":

        def perturbed(s, **args):
            updates = dict(original(s, **args))
            if s[rp][0] == "fetch" and updates.get(rp, s[rp])[0] == "out0":
                updates.pop(rp, None)  # hold the pipeline in fetch
            return updates

    elif fault.kind == "drop_commit":

        def perturbed(s, **args):
            updates = dict(original(s, **args))
            if updates.get(wcommit):
                updates[wcommit] = False  # array updated, strobe swallowed
            return updates

    else:  # spurious_data

        default_addr = config.addr_values[0]
        default_word = config.data_values[0]

        def perturbed(s, **args):
            updates = dict(original(s, **args))
            if s[rp] == IDLE and rp not in updates:
                updates[rp] = ("out0", default_addr, default_word)
            return updates

    edge_k.effect = perturbed
    machine.name = f"{machine.name}+{fault.fault_id}"
    return machine
