"""LA-1 protocol mutation at the SystemC transactor boundary.

The :class:`ProtocolSaboteur` is a kernel module that corrupts the
*observable* LA-1 protocol of one bank's read port -- the status strobes
and data/parity beats the external PSL monitors watch -- without touching
the monitors themselves.  This validates the verification environment the
way the paper's methodology implies but never exercises: a monitor suite
is only trustworthy if every illegal protocol behaviour it claims to
cover actually makes some assertion fire.

Mechanics: the saboteur registers its edge processes *after* the device
has been built, so within one evaluate phase they run after the port
processes (kernel processes sensitive to the same event run in
registration order) and their signal writes win the last-write-wins
commit.  Monitors sample on the delta-delayed :class:`EdgeSampler`
event, hence observe the committed -- sabotaged -- values, exactly as
they would observe a buggy device.

Each mutation is one-shot: it fires in the ``occurrence``-th activation
window of its kind (e.g. the n-th time the port drives a first beat) and
records itself in :attr:`ProtocolSaboteur.triggered`.  A campaign run
whose saboteur never triggered is reported *masked* rather than silent.
"""

from __future__ import annotations

from ..sysc.kernel import Simulator
from ..sysc.module import Module
from .models import ProtocolMutation

__all__ = ["ProtocolSaboteur"]


class ProtocolSaboteur(Module):
    """Inject one :class:`~repro.fault.models.ProtocolMutation` into a
    built LA-1 system.

    Must be constructed **after** the device (and host) so its processes
    run last in each clock-edge evaluate phase; ``build_la1_system`` +
    ``ProtocolSaboteur`` in that order is the supported recipe.
    """

    def __init__(self, sim: Simulator, device, fault: ProtocolMutation,
                 name: str = "saboteur"):
        super().__init__(sim, name)
        if not isinstance(fault, ProtocolMutation):
            raise TypeError(f"{fault!r} is not a protocol mutation")
        if not (0 <= fault.bank < device.config.banks):
            raise ValueError(
                f"bank {fault.bank} out of range for "
                f"{device.config.banks}-bank device"
            )
        self.device = device
        self.fault = fault
        self.port = device.banks[fault.bank].read_port
        #: True once the mutation has been applied to the live protocol
        self.triggered = False
        self._seen = 0
        self._clear_spurious = False
        self._proc_k = self.method_process(
            self._on_k, (device.clocks.posedge_k,), "sab_k")
        self._proc_ks = self.method_process(
            self._on_k_sharp, (device.clocks.posedge_k_bar,), "sab_ks")

    # ------------------------------------------------------------------
    def _window(self) -> bool:
        """Count one activation window of the fault's kind; True when it
        is the configured ``occurrence`` (arming the one-shot)."""
        if self.triggered:
            return False
        self._seen += 1
        if self._seen >= self.fault.occurrence:
            self.triggered = True
            return True
        return False

    # ------------------------------------------------------------------
    def _on_k(self) -> None:
        if self._proc_k.trigger is None:
            return  # initialization run, no edge yet
        port = self.port
        kind = self.fault.kind
        if kind == "drop_beat0":
            # the port just entered out0 and drove its first beat; unwind
            # the valid strobe so the beat silently vanishes
            if port._stage == "out0" and self._window():
                port.stat_data_valid.write(False)
        elif kind == "spurious_data":
            # drive a first-beat strobe out of thin air while the port is
            # idle (data/parity kept self-consistent so only the window
            # violation is observable)
            if port._stage == "idle" and self._window():
                port.stat_data_valid.write(True)
                port.data_out.write(0)
                port.parity_out.write(0)
                self._clear_spurious = True
        elif kind == "duplicate_command":
            # re-assert the request strobe while the read is completing:
            # the device claims a command it never captured
            if port._stage == "out0" and self._window():
                port.stat_read_req.write(True)
        elif kind == "corrupt_parity":
            # flip the lane-0 parity bit of the first beat
            if port._stage == "out0" and self._window():
                good = port._beat_parity(port._beat(0))
                port.parity_out.write(good ^ 1)
        elif kind == "corrupt_address":
            # coverage-gap probe: fetch the wrong word; no protocol
            # assertion watches data values, only a scoreboard could tell
            if port._stage == "req" and self._window():
                port._addr = (port._addr ^ 1) % port.config.mem_words
        elif kind == "drop_command":
            # coverage-gap probe: silently discard the captured request
            # (strobe suppressed, pipeline reset -- nothing for the
            # latency assertion to anchor on)
            if port._stage == "req" and self._window():
                port._stage = "idle"
                port.stat_read_req.write(False)

    def _on_k_sharp(self) -> None:
        if self._proc_ks.trigger is None:
            return
        port = self.port
        if self.fault.kind == "drop_beat1":
            # the port just released the second DDR beat; suppress it
            if port._stage == "out1" and self._window():
                port.stat_data_valid2.write(False)
        if self._clear_spurious:
            # a real out0 clears data_valid at the next K#; mimic that
            port.stat_data_valid.write(False)
            self._clear_spurious = False
