"""Command-line campaign driver.

``python -m repro.fault --smoke`` runs the 2-bank smoke campaign used by
CI: the default fault list under the default workload, a report printed
to stdout and written as JSON, exit status 1 if any engine crashed or
the protocol-mutation detection coverage drops below the gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..cli import bounded_int
from .campaign import CampaignConfig, FaultCampaign

#: CI gate: fraction of expected-detectable protocol mutations that must
#: be caught by a monitor (ISSUE acceptance: >= 90%)
COVERAGE_GATE = 0.9


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fault",
        description="run an LA-1 fault-injection campaign",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke shape: 2 banks, default fault list")
    parser.add_argument("--banks", type=int, default=2)
    parser.add_argument("--traffic", type=int, default=24)
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--backend", default="compiled",
                        choices=("compiled", "interp"))
    parser.add_argument("--deadline", type=float, default=None,
                        help="whole-campaign wall-clock budget (seconds)")
    parser.add_argument("--checkpoint", default=None,
                        help="JSON state file for kill/resume")
    parser.add_argument("--max-faults", type=int, default=None)
    parser.add_argument("--jobs", type=bounded_int("--jobs", 1, 128),
                        default=1,
                        help="process-pool width (repro.par); the merged "
                             "report is identical to --jobs 1")
    parser.add_argument("--lanes", type=bounded_int("--lanes", 1, 4096),
                        default=1,
                        help="PPSFP lane width: batch compatible faults "
                             "into bit-parallel passes (repro.fault."
                             "ppsfp); verdicts are identical to "
                             "--lanes 1 and multiply with --jobs")
    parser.add_argument("--patterns",
                        type=bounded_int("--patterns", 1, 1024), default=1,
                        help="stimulus patterns per fault (PPSFP's "
                             "second axis: shared command schedule, "
                             "re-drawn addr/data); verdicts merge across "
                             "patterns and are identical at any lane "
                             "count")
    parser.add_argument("--patterns-per-pass",
                        type=bounded_int("--patterns-per-pass", 1, 1024),
                        default=None,
                        help="cap pattern groups tiled per bitpar pass "
                             "(default: auto-fit the lane budget; "
                             "execution knob, never changes verdicts)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the report JSON here "
                             "(default: benchmarks/BENCH_fault_campaign.json)")
    args = parser.parse_args(argv)

    config = CampaignConfig(
        banks=2 if args.smoke else args.banks,
        traffic=args.traffic,
        seed=args.seed,
        backend=args.backend,
        campaign_deadline_s=args.deadline,
        checkpoint_path=args.checkpoint,
        max_faults=args.max_faults,
        patterns=args.patterns,
    )
    report = FaultCampaign(config).run(
        on_verdict=lambda v: print(f"  [{v.outcome:>9}] {v.fault_id}"
                                   + (f"  <- {', '.join(v.detected_by)}"
                                      if v.detected_by else "")),
        jobs=args.jobs,
        lanes=args.lanes,
        patterns_per_pass=args.patterns_per_pass,
    )
    print(report.render())
    par = report.engine_stats.get("par")
    if par:
        print(f"par: jobs={par['jobs']} shards={par['shards']} "
              f"mode={par['mode']} wall={par['wall_s']}s "
              f"critical-path speedup x{par['speedup_estimate']}")

    json_path = args.json_path
    if json_path is None:
        here = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        json_path = os.path.join(here, "benchmarks",
                                 "BENCH_fault_campaign.json")
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    # same envelope shape as benchmarks/bench_schema.py, so the CLI and
    # the benchmark suite produce interchangeable files
    payload = {
        "name": "fault_campaign",
        "config": {
            "banks": config.banks, "traffic": config.traffic,
            "seed": config.seed, "backend": config.backend,
            "patterns": config.patterns, "jobs": args.jobs,
            "lanes": args.lanes, "smoke": bool(args.smoke),
        },
        "metrics": {f"banks={config.banks}": report.to_dict()},
        "gates": {"errors": report.counts()["error"],
                  "protocol_coverage": round(report.coverage("sysc"), 4),
                  "coverage_gate": COVERAGE_GATE},
    }
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {json_path}")

    errors = report.counts()["error"]
    protocol_coverage = report.coverage("sysc")
    if errors:
        print(f"FAIL: {errors} campaign run(s) crashed", file=sys.stderr)
        return 1
    if protocol_coverage < COVERAGE_GATE:
        print(
            f"FAIL: protocol detection coverage {protocol_coverage:.0%} "
            f"below the {COVERAGE_GATE:.0%} gate", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
