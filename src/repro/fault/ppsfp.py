"""Parallel-pattern single-fault-propagation (PPSFP) campaign batching.

Classic PPSFP packs one golden machine plus N-1 faulty machines into the
bit positions of machine words: the ``"bitpar"`` RTL backend
(:mod:`repro.rtl.bitsim`) evaluates every lane with the same straight-
line word ops, so a batch of compatible RTL faults costs one simulation
pass instead of one per fault.  This module is the campaign-side driver:

* faults are mapped onto lanes 1..N-1 through
  :class:`~repro.fault.rtl_inject.RtlFaultInjector`'s ``lane_map``
  (lane 0 stays golden);
* the stimulus is the campaign's usual seeded host traffic, driven
  broadcast into every lane by :class:`_LaneProbeHost`;
* per-lane verdicts come from lane-wise golden differencing -- monitor
  fire words for *detected*, the injector's ``triggered_lanes`` for
  *masked*, and a lane word of transaction-log divergence for *silent*
  -- with exactly the outcome ladder and detail strings of the
  per-fault :meth:`~repro.fault.campaign.FaultCampaign._run_rtl` path.

**Validity rule.**  The host reacts to the golden lane's pipeline status
nets, so a faulty lane's verdict is only trustworthy if that lane's
control behaviour never diverged from lane 0 at any status poll (then
the stimulus it saw is bit-identical to what a dedicated run would have
driven).  :class:`_LaneProbeHost` accumulates an ``invalid_lanes`` word
at every poll; lanes flagged there -- and lanes that hit a tristate bus
conflict, which the scalar backends turn into an ``error`` verdict --
fall back to the ordinary per-fault compiled run.  The same degradation
ladder catches whole-batch trouble (any engine exception re-runs the
batch fault by fault) and fault classes that cannot be lane-encoded at
all (protocol/ASM mutations and targets without register/input
support), which never enter a batch.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from ..core.rtl_testbench import RtlHost
from ..core.sysc_model import ReadResult
from ..rtl.hdl import HdlError
from .models import Fault, RtlBitFlip, RtlStuckAt
from .rtl_inject import RtlFaultInjector, resolve_state_bit

__all__ = ["ppsfp_compatible", "run_ppsfp_batches"]


def ppsfp_compatible(design, fault: Fault) -> bool:
    """True when ``fault`` can be lane-encoded: an RTL stuck-at/SEU whose
    target resolves to a register/input bit.  Everything else (protocol
    and ASM mutations, targets without pure-wiring state support) takes
    the per-fault path."""
    if not isinstance(fault, (RtlStuckAt, RtlBitFlip)):
        return False
    try:
        resolve_state_bit(design, fault.path, fault.bit)
    except HdlError:
        return False
    return True


class _LaneProbeHost(RtlHost):
    """The campaign host over a bitpar simulator.

    Control flow (issue decisions, collection timing) follows lane 0 --
    the golden machine -- because :meth:`_stat` returns lane-0 values.
    Each poll also compares every lane's status word against the
    broadcast lane-0 value and accumulates divergent lanes into
    ``invalid_lanes``: for the remaining (valid) lanes, the stimulus
    this host drove is bit-identical to a dedicated per-fault run, so
    their lane words ARE the dedicated run's values.  Bus samples keep
    the raw lane words; ``log_diff`` accumulates, per lane, whether any
    collected beat or parity bit differed from the golden lane --
    transaction-log divergence without per-lane log assembly.
    """

    def __init__(self, sim, config, top_name: str = "la1_top"):
        super().__init__(sim, config, top_name)
        self.invalid_lanes = 0
        self.log_diff = 0
        self._M = sim.lane_mask
        bit_slots = sim._bitpar.bit_slots
        self._stat_slots = {
            key: bit_slots[path]
            for key, path in self._stat_paths.items()
        }
        self._data_slots = bit_slots[self._data_bus]
        self._par_slots = bit_slots[self._par_bus]

    def _settled(self):
        sim = self.sim
        if sim._inputs_dirty:
            sim._settle()
            sim._inputs_dirty = False
        return sim._v

    def _stat(self, bank: int, name: str) -> int:
        v = self._settled()
        M = self._M
        value = 0
        invalid = self.invalid_lanes
        for b, slot in enumerate(self._stat_slots[bank, name]):
            word = v[slot]
            bit0 = word & 1
            invalid |= word ^ (M if bit0 else 0)
            value |= bit0 << b
        self.invalid_lanes = invalid
        return value

    def _sample_bus(self) -> list:
        v = self._settled()
        return [[v[slot] for slot in self._data_slots],
                [v[slot] for slot in self._par_slots]]

    def _finish_read(self, bank: int, addr: int, issued: int,
                     sample0: list, sample1: list) -> None:
        diff = self.log_diff
        M = self._M
        lane0 = []
        for words in (*sample0, *sample1):
            value = 0
            for b, word in enumerate(words):
                bit0 = (word >> 0) & 1
                diff |= word ^ (M if bit0 else 0)
                value |= bit0 << b
            lane0.append(value)
        self.log_diff = diff
        beat0, par0, beat1, par1 = lane0
        word = beat0 | (beat1 << self.config.beat_bits)
        self.results.append(
            ReadResult(bank, addr, word, (beat0, beat1),
                       (par0, par1), issued, self.half_cycles)
        )


def _run_batch(campaign, batch: List[Fault], lanes: int) -> tuple:
    """One PPSFP pass: verdicts for the lane-valid faults of ``batch``
    plus the list of faults that must fall back to per-fault runs."""
    from ..cover.functional import La1FunctionalCoverage
    from .campaign import FaultVerdict

    golden = campaign._rtl_golden_run()
    sim = campaign._ppsfp_simulator(lanes)
    sim.reset()
    injector = RtlFaultInjector(
        sim, batch, lane_map=list(range(1, len(batch) + 1)))
    injector.attach()
    try:
        host = _LaneProbeHost(sim, campaign.config.la1())
        functional = La1FunctionalCoverage(host)
        campaign._queue_traffic(host)
        functional.detach()
        host.run_cycles(campaign.config.rtl_cycles)
    finally:
        injector.detach()
    if sim.failures or campaign._log_signature(host) != golden:
        # the golden lane must replay the golden run bit for bit; if it
        # does not, nothing in this pass can be trusted
        raise RuntimeError("PPSFP lane 0 diverged from the golden run")
    invalid = host.invalid_lanes | sim.conflict_lanes
    verdicts = {}
    fallbacks: List[Fault] = []
    for lane, fault in enumerate(batch, start=1):
        if (invalid >> lane) & 1:
            fallbacks.append(fault)
            continue
        detected_by = sim.lane_failure_names(lane)
        if detected_by:
            outcome, detail = "detected", ""
        elif not injector.lane_triggered(lane):
            outcome, detail = "masked", "fault never changed a state bit"
        elif (host.log_diff >> lane) & 1:
            outcome = "silent"
            detail = ("transaction log diverged from golden run with no "
                      "OVL checker firing")
        else:
            outcome, detail = "masked", "no observable divergence"
        verdicts[fault.fault_id] = FaultVerdict(
            fault.fault_id, fault.layer, fault.kind, outcome, detected_by,
            detail, expected_detectable=fault.expect_detectable,
            coverage_points=(functional.harvest().covered_keys()
                            if detected_by else None),
        )
    return verdicts, fallbacks


def run_ppsfp_batches(
    campaign,
    faults: List[Fault],
    lanes: int,
    should_stop: Optional[Callable[[], bool]] = None,
    on_batch: Optional[Callable[[dict], None]] = None,
) -> dict:
    """Sweep ``faults`` in PPSFP batches of ``lanes - 1``.

    Returns ``{fault_id: FaultVerdict}`` in fault order.  Faults are
    assumed :func:`ppsfp_compatible`.  Lanes that cannot be trusted
    (control divergence, bus conflict) and whole batches that raise are
    re-run through :meth:`FaultCampaign.execute_fault`, so every verdict
    is bit-identical to a per-fault sweep regardless of lane count or
    batch boundaries.  ``should_stop`` is consulted before each batch
    (campaign deadline); unprocessed faults are simply not in the result.
    """
    out: dict = {}
    if lanes < 2 or not faults:
        return out
    width = lanes - 1
    for index in range(0, len(faults), width):
        if should_stop is not None and should_stop():
            break
        batch = faults[index:index + width]
        batch_start = time.perf_counter()
        try:
            # the campaign routes by workload kind (LA-1 transaction
            # host vs open-loop DSL stimulus); this module's _run_batch
            # is the LA-1 arm
            verdicts, fallbacks = campaign._ppsfp_batch(batch, lanes)
        except Exception:
            # degradation ladder: anything wrong with the pass itself
            # (not a fault outcome) re-runs the whole batch per-fault
            verdicts, fallbacks = {}, list(batch)
        if verdicts:
            share = (time.perf_counter() - batch_start) / len(batch)
            for verdict in verdicts.values():
                verdict.cpu_time = share
        for fault in fallbacks:
            verdicts[fault.fault_id] = campaign.execute_fault(fault)
        ordered = {f.fault_id: verdicts[f.fault_id] for f in batch}
        out.update(ordered)
        if on_batch is not None:
            on_batch(ordered)
    return out
