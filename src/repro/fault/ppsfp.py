"""Parallel-pattern single-fault-propagation (PPSFP) campaign batching.

Classic PPSFP has two packing axes.  PR 6 exploited the first: one
golden machine plus N-1 *faulty* machines in the bit positions of
machine words -- the ``"bitpar"`` RTL backend (:mod:`repro.rtl.bitsim`)
evaluates every lane with the same straight-line word ops, so a batch of
compatible faults costs one simulation pass instead of one per fault.
This module now drives both axes:

* **Fault lanes** -- faults are mapped onto lanes through
  :class:`~repro.fault.rtl_inject.RtlFaultInjector`'s ``lane_map``
  (RTL state faults) or per-lane divergent input drives
  (:class:`~repro.fault.models.StimulusMutation`, lowered through
  :meth:`~repro.rtl.simulator.RtlSimulator.set_input_lanes` by the
  lane-aware transactor shim in :mod:`repro.fault.stim_inject`).
* **Pattern groups** -- when the batch is narrower than the lane
  budget, the lane word is tiled as ``patterns x faults``: group *g*
  spans ``group_size = W + 1`` lanes, its first lane golden, and every
  lane of the group drives stimulus pattern ``p_g`` (same command
  schedule, re-drawn addr/data; :mod:`repro.core.traffic`).  A 12-fault
  session on a 64-lane word thus sweeps 4 stimulus patterns per pass,
  amortising the bitpar compile even for short campaigns.

Per-lane verdicts come from lane-wise golden differencing -- monitor
fire words for *detected*, the injector's ``triggered_lanes`` (or the
stimulus applicator's schedule-shared trigger) for *masked*, and a lane
word of transaction-log divergence against the lane's *group golden*
for *silent* -- with exactly the outcome ladder and detail strings of
the per-fault paths, then folded across patterns by
:func:`~repro.fault.campaign.merge_pattern_verdicts`.

**Validity rule.**  The host reacts to lane 0's pipeline status nets;
the LA-1 status trajectory depends only on the command schedule, which
every pattern shares, so lane 0 arbitrates for all groups.  A lane's
verdict is only trustworthy if its control behaviour never diverged
from lane 0 at any status poll: :class:`_LaneProbeHost` accumulates an
``invalid_lanes`` word at every poll; lanes flagged there -- and lanes
that hit a tristate bus conflict -- fall back to the ordinary per-fault
run (the whole fault, every pattern).  Each group's golden lane must
replay that pattern's compiled golden run bit for bit or the whole pass
raises.  The same degradation ladder catches whole-batch trouble (any
engine exception re-runs the batch fault by fault) and fault classes
that cannot be lane-encoded at all -- protocol/ASM mutations, targets
without register/input support, and the schedule-changing stimulus
kinds (:data:`~repro.fault.models.STIM_LADDER_KINDS`) -- which never
enter a batch.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from ..core.rtl_testbench import LaneVec, RtlHost
from ..core.sysc_model import ReadResult
from ..rtl.hdl import HdlError
from .models import STIM_KINDS, Fault, RtlBitFlip, RtlStuckAt, StimulusMutation
from .rtl_inject import RtlFaultInjector, resolve_state_bit
from .stim_inject import StimulusApplicator, full_byte_enables

__all__ = ["ppsfp_compatible", "run_ppsfp_batches"]


def ppsfp_compatible(design, fault: Fault) -> bool:
    """True when ``fault`` can be lane-encoded: an RTL stuck-at/SEU whose
    target resolves to a register/input bit, or a datapath-field
    stimulus mutation (:data:`~repro.fault.models.STIM_KINDS`).
    Everything else (protocol and ASM mutations, schedule-changing
    stimulus kinds, targets without pure-wiring state support) takes the
    per-fault path."""
    if isinstance(fault, StimulusMutation):
        return fault.kind in STIM_KINDS
    if not isinstance(fault, (RtlStuckAt, RtlBitFlip)):
        return False
    try:
        resolve_state_bit(design, fault.path, fault.bit)
    except HdlError:
        return False
    return True


class _LaneProbeHost(RtlHost):
    """The campaign host over a bitpar simulator, group-aware.

    Control flow (issue decisions, collection timing) follows lane 0
    because :meth:`_stat` returns lane-0 values.  Each poll also
    compares every used lane's status word against the broadcast lane-0
    value and accumulates divergent lanes into ``invalid_lanes``: for
    the remaining (valid) lanes, the stimulus this host drove is
    bit-identical to a dedicated per-fault run of that lane's pattern,
    so their lane words ARE the dedicated run's values.  Bus samples
    keep the raw lane words; ``log_diff`` accumulates, per lane, whether
    any collected beat or parity bit differed from the lane's *group
    golden*; each group's golden lane additionally gets its transaction
    log assembled (``group_log``) for the whole-pass validity check.
    """

    def __init__(self, sim, config, top_name: str = "la1_top",
                 groups: Optional[List[tuple]] = None):
        super().__init__(sim, config, top_name)
        self.invalid_lanes = 0
        self.log_diff = 0
        self._M = sim.lane_mask
        #: [(golden_lane, group_lane_mask)] -- default: the PR 6 layout,
        #: one group spanning the whole word with lane 0 golden
        if groups is None:
            groups = [(0, sim.lane_mask)]
        self._groups = groups
        self._used = 0
        for __, gmask in groups:
            self._used |= gmask
        self._group_results: List[list] = [[] for __ in groups]
        # group 0's golden is lane 0: its assembled log doubles as the
        # host's scalar transaction log (campaign._log_signature)
        self.results = self._group_results[0]
        bit_slots = sim._bitpar.bit_slots
        self._stat_slots = {
            key: bit_slots[path]
            for key, path in self._stat_paths.items()
        }
        self._data_slots = bit_slots[self._data_bus]
        self._par_slots = bit_slots[self._par_bus]

    def group_log(self, index: int) -> tuple:
        """The assembled transaction-log signature of group ``index``
        (golden-comparable shape)."""
        return tuple(
            (r.bank, r.addr, r.word, tuple(r.beats), tuple(r.parities))
            for r in self._group_results[index]
        )

    def _settled(self):
        sim = self.sim
        if sim._inputs_dirty:
            sim._settle()
            sim._inputs_dirty = False
        return sim._v

    def _stat(self, bank: int, name: str) -> int:
        v = self._settled()
        M = self._M
        used = self._used
        value = 0
        invalid = self.invalid_lanes
        for b, slot in enumerate(self._stat_slots[bank, name]):
            word = v[slot]
            bit0 = word & 1
            invalid |= (word ^ (M if bit0 else 0)) & used
            value |= bit0 << b
        self.invalid_lanes = invalid
        return value

    def _sample_bus(self) -> list:
        v = self._settled()
        return [[v[slot] for slot in self._data_slots],
                [v[slot] for slot in self._par_slots]]

    def _finish_read(self, bank: int, addr, issued: int,
                     sample0: list, sample1: list) -> None:
        diff = self.log_diff
        M = self._M
        groups = self._groups
        assembled = [[] for __ in groups]
        for words in (*sample0, *sample1):
            for gi, (golden, gmask) in enumerate(groups):
                value = 0
                for b, word in enumerate(words):
                    bit = (word >> golden) & 1
                    diff |= (word ^ (M if bit else 0)) & gmask
                    value |= bit << b
                assembled[gi].append(value)
        self.log_diff = diff
        for gi, (golden, __gmask) in enumerate(groups):
            beat0, par0, beat1, par1 = assembled[gi]
            word = beat0 | (beat1 << self.config.beat_bits)
            addr_g = addr.lane(golden) if isinstance(addr, LaneVec) else addr
            self._group_results[gi].append(
                ReadResult(bank, addr_g, word, (beat0, beat1),
                           (par0, par1), issued, self.half_cycles)
            )


def _lane_field(values: List[int]):
    """A scalar when every lane agrees (cheap broadcast drive), else a
    :class:`LaneVec`."""
    first = values[0]
    for value in values:
        if value != first:
            return LaneVec(values)
    return first


def _spread(group_values: List[int], lanes: int, group_size: int) -> List[int]:
    """Tile per-group values onto the full lane word: every lane of
    group *g* carries ``group_values[g]``; lanes beyond the last group
    replay group 0 (= lane 0's golden stream, so padding never perturbs
    the status-divergence accounting)."""
    out = [group_values[0]] * lanes
    for g, value in enumerate(group_values):
        base = g * group_size
        for j in range(group_size):
            out[base + j] = value
    return out


def _queue_group_traffic(host, config, schedule, group_values,
                         stim_states, lanes: int, group_size: int) -> None:
    """Queue the pattern-group traffic: the shared command schedule,
    per-group addr/data, and each stimulus mutation applied on its lanes
    on top of the group's value."""
    G = len(group_values)
    full_bw = full_byte_enables(config)
    for t, (is_read, bank, __a, __w) in enumerate(schedule):
        if is_read:
            base = [group_values[g][t][0] for g in range(G)]
            addr_lanes = _spread(base, lanes, group_size)
            for k, __fault, state in stim_states:
                if state.on_read(bank) == "corrupt_read_address":
                    for g in range(G):
                        addr_lanes[g * group_size + 1 + k] = \
                            state.mutate_read_addr(base[g])
            host.read(bank, _lane_field(addr_lanes))
        else:
            base_addr = [group_values[g][t][0] for g in range(G)]
            base_word = [group_values[g][t][1] for g in range(G)]
            addr_lanes = _spread(base_addr, lanes, group_size)
            word_lanes = _spread(base_word, lanes, group_size)
            bw_lanes: Optional[List[int]] = None
            for k, __fault, state in stim_states:
                if state.on_write(bank) is None:
                    continue
                for g in range(G):
                    lane = g * group_size + 1 + k
                    addr, word, bw = state.mutate_write(
                        base_addr[g], base_word[g], full_bw)
                    addr_lanes[lane] = addr
                    word_lanes[lane] = word
                    if bw != full_bw:
                        if bw_lanes is None:
                            bw_lanes = [full_bw] * lanes
                        bw_lanes[lane] = bw
            host.write(
                bank, _lane_field(addr_lanes), _lane_field(word_lanes),
                full_bw if bw_lanes is None else _lane_field(bw_lanes),
            )


def _pattern_goldens(campaign, pats: List[int], lanes: int) -> list:
    """Per-pattern golden transaction logs, computed lanes-at-a-time.

    A short session under many stimulus patterns would otherwise spend
    more wall-clock on per-pattern compiled golden runs than on the
    packed fault passes they validate.  Instead, one *golden pass*
    drives pattern ``p`` on lane ``p`` with no faults injected (group
    size 1): every configured pattern's golden log costs one bitpar
    pass per ``lanes`` patterns.  The cross-backend anchor is kept --
    lane 0 carries pattern 0 and must replay the compiled scalar
    golden run bit-for-bit, and control invariance (LA-1 status nets
    depend only on the shared command schedule) extends that trust to
    the sibling lanes, whose monitors and status bits are still checked
    individually.
    """
    from ..core.traffic import schedule_values

    cache = campaign._rtl_lane_goldens
    if any(p not in cache for p in pats):
        config = campaign.config
        la1 = config.la1()
        schedule = campaign._schedule()
        todo = [p for p in range(config.patterns) if p not in cache]
        for start in range(0, len(todo), lanes):
            chunk = todo[start:start + lanes]
            sim = campaign._ppsfp_simulator(lanes)
            sim.reset()
            groups = [(i, 1 << i) for i in range(len(chunk))]
            host = _LaneProbeHost(sim, la1, groups=groups)
            group_values = [schedule_values(la1, schedule, config.seed, p)
                            for p in chunk]
            _queue_group_traffic(host, la1, schedule, group_values, [],
                                 lanes, 1)
            host.run_cycles(config.rtl_cycles)
            if sim.failures:
                raise RuntimeError(
                    "PPSFP golden pass lane 0 raised a monitor")
            invalid = host.invalid_lanes | sim.conflict_lanes
            for i, p in enumerate(chunk):
                if ((invalid >> i) & 1) or sim.lane_failure_names(i):
                    raise RuntimeError(
                        f"PPSFP golden pass lane {i} (pattern {p}) "
                        "diverged on a status or monitor net")
                cache[p] = host.group_log(i)
            if chunk[0] == 0 and cache[0] != campaign._rtl_golden_run(0):
                raise RuntimeError(
                    "PPSFP golden pass lane 0 diverged from the "
                    "compiled golden run")
            sim.note_pass_occupancy(len(chunk))
    return [cache[p] for p in pats]


def _run_batch(campaign, batch: List[Fault], lanes: int,
               patterns_per_pass: Optional[int] = None) -> tuple:
    """The dual-axis PPSFP sweep of one batch: verdicts for the
    lane-valid faults of ``batch`` (merged across all configured
    stimulus patterns) plus the list of faults that must fall back to
    per-fault runs."""
    from ..core.traffic import schedule_values
    from ..cover.functional import La1FunctionalCoverage
    from .campaign import FaultVerdict, merge_pattern_verdicts

    config = campaign.config
    la1 = config.la1()
    group_size = len(batch) + 1
    patterns = config.patterns
    groups_max = max(1, lanes // group_size)
    if patterns_per_pass is not None:
        groups_max = max(1, min(groups_max, patterns_per_pass))
    schedule = campaign._schedule()
    rtl_faults = [(k, f) for k, f in enumerate(batch)
                  if isinstance(f, (RtlStuckAt, RtlBitFlip))]
    stim_faults = [(k, f) for k, f in enumerate(batch)
                   if isinstance(f, StimulusMutation)]
    per_pattern: dict = {f.fault_id: {} for f in batch}
    invalid_faults: set = set()

    for chunk in range(0, patterns, groups_max):
        pats = list(range(chunk, min(chunk + groups_max, patterns)))
        G = len(pats)
        # golden logs first (cached per pattern across batches): a pass
        # can only be validated against them.  Single-pattern campaigns
        # diff directly against the compiled scalar golden; multi-pattern
        # sessions amortise the goldens through a bitpar golden pass
        # anchored to the scalar run at lane 0.
        if patterns == 1:
            goldens = [campaign._rtl_golden_run(0)]
        else:
            goldens = _pattern_goldens(campaign, pats, lanes)
        sim = campaign._ppsfp_simulator(lanes)
        sim.reset()
        injector = None
        if rtl_faults:
            injector = RtlFaultInjector(
                sim, [f for __, f in rtl_faults],
                lane_map=[
                    [g * group_size + 1 + k for g in range(G)]
                    for k, __ in rtl_faults
                ],
            )
            injector.attach()
        stim_states = [(k, f, StimulusApplicator(f, la1))
                       for k, f in stim_faults]
        try:
            groups = [
                (g * group_size,
                 ((1 << group_size) - 1) << (g * group_size))
                for g in range(G)
            ]
            host = _LaneProbeHost(sim, la1, groups=groups)
            functional = La1FunctionalCoverage(host)
            group_values = [schedule_values(la1, schedule, config.seed, p)
                            for p in pats]
            _queue_group_traffic(host, la1, schedule, group_values,
                                 stim_states, lanes, group_size)
            functional.detach()
            host.run_cycles(config.rtl_cycles)
        finally:
            if injector is not None:
                injector.detach()
        if sim.failures:
            # lane 0 is the pattern-0 golden; a monitor record means
            # nothing in this pass can be trusted
            raise RuntimeError("PPSFP lane 0 diverged from the golden run")
        invalid = host.invalid_lanes | sim.conflict_lanes
        for gi, (golden_lane, __gmask) in enumerate(groups):
            if golden_lane and (((invalid >> golden_lane) & 1)
                                or sim.lane_failure_names(golden_lane)):
                raise RuntimeError(
                    f"PPSFP golden lane {golden_lane} diverged from lane 0"
                )
            if host.group_log(gi) != goldens[gi]:
                raise RuntimeError(
                    f"PPSFP group {gi} golden diverged from the golden run"
                )
        sim.note_pass_occupancy(G * group_size)
        # one harvest per pass: functional coverage samples only
        # (kind, bank) at queue time, so the key set is identical for
        # every fault, group and pattern -- and identical to what each
        # per-fault run would have harvested
        pass_points = functional.harvest().covered_keys()
        for gi in range(G):
            pattern = pats[gi]
            base_lane = gi * group_size
            for k, fault in rtl_faults:
                if fault.fault_id in invalid_faults:
                    continue
                lane = base_lane + 1 + k
                if (invalid >> lane) & 1:
                    invalid_faults.add(fault.fault_id)
                    continue
                detected_by = sim.lane_failure_names(lane)
                if detected_by:
                    outcome, detail = "detected", ""
                elif not injector.lane_triggered(lane):
                    outcome, detail = (
                        "masked", "fault never changed a state bit")
                elif (host.log_diff >> lane) & 1:
                    outcome = "silent"
                    detail = ("transaction log diverged from golden run "
                              "with no OVL checker firing")
                else:
                    outcome, detail = "masked", "no observable divergence"
                per_pattern[fault.fault_id][pattern] = FaultVerdict(
                    fault.fault_id, fault.layer, fault.kind, outcome,
                    detected_by, detail,
                    expected_detectable=fault.expect_detectable,
                    coverage_points=pass_points if detected_by else None,
                )
            for k, fault, state in stim_states:
                if fault.fault_id in invalid_faults:
                    continue
                lane = base_lane + 1 + k
                if ((invalid >> lane) & 1
                        or sim.lane_failure_names(lane)):
                    # a monitor firing on legal-traffic lanes would be
                    # new information; defer to the per-fault path
                    invalid_faults.add(fault.fault_id)
                    continue
                if not state.triggered:
                    outcome, detail = (
                        "masked", "mutation window never reached")
                elif (host.log_diff >> lane) & 1:
                    outcome = "silent"
                    detail = ("transaction log diverged from golden run "
                              "with no OVL checker firing")
                else:
                    outcome, detail = "masked", "no observable divergence"
                per_pattern[fault.fault_id][pattern] = FaultVerdict(
                    fault.fault_id, fault.layer, fault.kind, outcome, [],
                    detail, expected_detectable=fault.expect_detectable,
                )

    verdicts = {}
    fallbacks: List[Fault] = []
    for fault in batch:
        recorded = per_pattern[fault.fault_id]
        if fault.fault_id in invalid_faults or len(recorded) != patterns:
            fallbacks.append(fault)
            continue
        ordered = [recorded[p] for p in range(patterns)]
        verdicts[fault.fault_id] = (
            merge_pattern_verdicts(fault, ordered)
            if patterns > 1 else ordered[0]
        )
    return verdicts, fallbacks


def run_ppsfp_batches(
    campaign,
    faults: List[Fault],
    lanes: int,
    should_stop: Optional[Callable[[], bool]] = None,
    on_batch: Optional[Callable[[dict], None]] = None,
    patterns_per_pass: Optional[int] = None,
) -> dict:
    """Sweep ``faults`` in PPSFP batches of up to ``lanes - 1``.

    Returns ``{fault_id: FaultVerdict}`` in fault order.  Faults are
    assumed :func:`ppsfp_compatible`.  Lanes that cannot be trusted
    (control divergence, bus conflict) and whole batches that raise are
    re-run through :meth:`FaultCampaign.execute_fault`, so every verdict
    is bit-identical to a per-fault sweep regardless of lane count,
    batch boundaries or pattern tiling.  ``patterns_per_pass`` caps how
    many stimulus-pattern groups one pass tiles (None auto-fits the
    lane budget; 1 reproduces the single-pattern-per-pass layout).
    ``should_stop`` is consulted before each batch (campaign deadline);
    unprocessed faults are simply not in the result.
    """
    out: dict = {}
    if lanes < 2 or not faults:
        return out
    width = lanes - 1
    for index in range(0, len(faults), width):
        if should_stop is not None and should_stop():
            break
        batch = faults[index:index + width]
        batch_start = time.perf_counter()
        try:
            # the campaign routes by workload kind (LA-1 transaction
            # host vs open-loop DSL stimulus); this module's _run_batch
            # is the LA-1 arm
            verdicts, fallbacks = campaign._ppsfp_batch(
                batch, lanes, patterns_per_pass)
        except Exception:
            # degradation ladder: anything wrong with the pass itself
            # (not a fault outcome) re-runs the whole batch per-fault
            verdicts, fallbacks = {}, list(batch)
        if verdicts:
            share = (time.perf_counter() - batch_start) / len(batch)
            for verdict in verdicts.values():
                verdict.cpu_time = share
        for fault in fallbacks:
            verdicts[fault.fault_id] = campaign.execute_fault(fault)
        ordered = {f.fault_id: verdicts[f.fault_id] for f in batch}
        out.update(ordered)
        if on_batch is not None:
            on_batch(ordered)
    return out
