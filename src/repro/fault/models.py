"""The fault taxonomy: what a campaign can inject, at which layer.

A verification environment is only trusted once it has been shown to
*reject* bad behaviour (cf. AutoSVA's check that generated properties
actually fail on mutated designs, and the fault-injection validation of
BCA/RTL co-verification environments).  Three fault families cover the
three modelling layers of the LA-1 reproduction:

* **RTL faults** -- classic netlist-level models: stuck-at-0/1 on a
  register or free input, and a single-event upset (one-shot bit flip at
  a chosen edge).  Injected identically into both simulator backends
  through :class:`repro.fault.rtl_inject.RtlFaultInjector`.
* **Protocol mutations** -- LA-1 transactor-level misbehaviour of the
  *device* side of the observation boundary (dropped/duplicated command
  strobes, out-of-window data, corrupted parity or address), injected by
  :class:`repro.fault.sysc_inject.ProtocolSaboteur`.
* **ASM perturbations** -- guarded-rule mutations of the abstract model
  (stalled pipeline, dropped commit, spurious data stage), built by
  :func:`repro.fault.asm_perturb.build_perturbed_la1_asm`.

Every fault renders a stable ``fault_id`` so campaign checkpoints can be
resumed across processes.  ``expect_detectable`` records the *a-priori*
expectation used in reports: faults outside the monitored contract (for
example a corrupted address, which no protocol assertion watches) are
shipped as *coverage-gap probes* -- their silent verdicts are the
assertion-coverage gaps the campaign exists to surface.
"""

from __future__ import annotations


__all__ = [
    "Fault",
    "RtlStuckAt",
    "RtlBitFlip",
    "ProtocolMutation",
    "StimulusMutation",
    "AsmPerturbation",
    "PROTOCOL_KINDS",
    "PROTOCOL_GAP_KINDS",
    "ASM_KINDS",
    "STIM_KINDS",
    "STIM_LADDER_KINDS",
]

#: protocol mutation kinds covered by the PSL monitor suite
PROTOCOL_KINDS = (
    "drop_beat0",        # first data beat suppressed (dropped data)
    "drop_beat1",        # second DDR beat suppressed
    "spurious_data",     # data strobe outside the legal window
    "duplicate_command", # request strobe repeated while data is driven
    "corrupt_parity",    # parity bits inconsistent with the driven beat
)

#: mutation kinds *outside* the monitored contract (coverage-gap probes)
PROTOCOL_GAP_KINDS = (
    "corrupt_address",   # wrong word fetched; only a scoreboard can see it
    "drop_command",      # captured request silently discarded
)

#: ASM guarded-rule perturbation kinds
ASM_KINDS = ("stall_read", "drop_commit", "spurious_data")

#: host-side stimulus mutation kinds that are *lane-encodable*: they
#: corrupt only datapath fields (address, write data, byte enables) of
#: one transaction, so the mutated stream keeps the base command
#: schedule and can ride a PPSFP lane as per-lane divergent input drives
STIM_KINDS = (
    "corrupt_read_address",   # the occurrence-th read fetches addr^1
    "corrupt_write_address",  # the occurrence-th write lands at addr^1
    "corrupt_write_data",     # bit 0 of the written word flipped
    "corrupt_byte_enable",    # byte-enable bit 0 flipped
    "swap_write_beats",       # the two DDR beats driven in reverse order
)

#: stimulus mutation kinds that change the *command schedule* (a
#: transaction appears or disappears), so lane-encoding is impossible --
#: they exercise the degradation ladder and always run per-fault
STIM_LADDER_KINDS = (
    "drop_read",       # the occurrence-th read is silently not issued
    "duplicate_read",  # the occurrence-th read is issued twice
)


class Fault:
    """Base class: one injectable defect."""

    layer = "?"

    def __init__(self, kind: str, expect_detectable: bool = True):
        self.kind = kind
        self.expect_detectable = expect_detectable

    @property
    def fault_id(self) -> str:
        """Stable identity used for checkpoint keys and report rows."""
        return f"{self.layer}:{self.kind}:{self._target()}"

    def _target(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description."""
        return self.fault_id

    def __repr__(self):
        return f"{type(self).__name__}({self.fault_id})"


class RtlStuckAt(Fault):
    """Bit ``bit`` of the register/input net at ``path`` held at
    ``value`` for the whole run (applied after reset and re-forced after
    every clock edge)."""

    layer = "rtl"

    def __init__(self, path: str, bit: int, value: int,
                 expect_detectable: bool = True):
        super().__init__(f"stuck_at_{value}", expect_detectable)
        if value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")
        self.path = path
        self.bit = bit
        self.value = value

    def _target(self) -> str:
        return f"{self.path}[{self.bit}]"

    def describe(self) -> str:
        return f"stuck-at-{self.value} on {self.path}[{self.bit}]"


class RtlBitFlip(Fault):
    """Single-event upset: bit ``bit`` of ``path`` XOR-flipped once,
    immediately after edge number ``at_edge`` settles."""

    layer = "rtl"

    def __init__(self, path: str, bit: int, at_edge: int,
                 expect_detectable: bool = True):
        super().__init__("bit_flip", expect_detectable)
        self.path = path
        self.bit = bit
        self.at_edge = at_edge

    def _target(self) -> str:
        return f"{self.path}[{self.bit}]@{self.at_edge}"

    def describe(self) -> str:
        return f"SEU flip of {self.path}[{self.bit}] after edge {self.at_edge}"


class ProtocolMutation(Fault):
    """One-shot LA-1 protocol mutation at the SystemC transactor.

    ``occurrence`` selects which activation window triggers the mutation
    (the first by default): e.g. ``drop_beat0`` fires the ``occurrence``-th
    time the bank's read port would drive its first beat.
    """

    layer = "sysc"

    def __init__(self, kind: str, bank: int, occurrence: int = 1):
        if kind not in PROTOCOL_KINDS + PROTOCOL_GAP_KINDS:
            raise ValueError(f"unknown protocol mutation kind {kind!r}")
        super().__init__(kind, expect_detectable=kind in PROTOCOL_KINDS)
        self.bank = bank
        self.occurrence = occurrence

    def _target(self) -> str:
        return f"bank{self.bank}#{self.occurrence}"

    def describe(self) -> str:
        return f"{self.kind} on bank {self.bank} (occurrence {self.occurrence})"


class StimulusMutation(Fault):
    """One-shot mutation of the *host's* transaction stream at the RTL
    transactor: the ``occurrence``-th read (or write, by kind) to
    ``bank`` is issued with a corrupted datapath field -- or, for the
    ladder kinds, dropped/duplicated outright.

    These are deliberate coverage-gap probes (``expect_detectable`` is
    always False): the mutated stream is still protocol-legal traffic,
    so no OVL/PSL monitor can fire -- only golden-run differencing sees
    the divergence.  The lane-encodable kinds (:data:`STIM_KINDS`) ride
    PPSFP lanes as per-lane divergent input drives; the schedule-changing
    kinds (:data:`STIM_LADDER_KINDS`) always take the per-fault path.
    """

    layer = "stim"

    def __init__(self, kind: str, bank: int, occurrence: int = 1):
        if kind not in STIM_KINDS + STIM_LADDER_KINDS:
            raise ValueError(f"unknown stimulus mutation kind {kind!r}")
        super().__init__(kind, expect_detectable=False)
        self.bank = bank
        self.occurrence = occurrence

    def _target(self) -> str:
        return f"bank{self.bank}#{self.occurrence}"

    def describe(self) -> str:
        return (f"stimulus mutation {self.kind} on bank {self.bank} "
                f"(occurrence {self.occurrence})")


class AsmPerturbation(Fault):
    """Guarded-rule perturbation of the LA-1 ASM model."""

    layer = "asm"

    def __init__(self, kind: str, bank: int):
        if kind not in ASM_KINDS:
            raise ValueError(f"unknown ASM perturbation kind {kind!r}")
        super().__init__(kind, expect_detectable=True)
        self.bank = bank

    def _target(self) -> str:
        return f"bank{self.bank}"

    def describe(self) -> str:
        return f"ASM rule perturbation {self.kind} on bank {self.bank}"
