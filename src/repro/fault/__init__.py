"""Fault injection & campaign robustness for the LA-1 verification flow.

The paper's methodology builds three nested verification environments
(ASM exploration, SystemC + PSL monitors, RTL + OVL checkers) -- this
package answers the question the paper leaves open: *would those
environments actually catch a broken implementation?*  It injects
faults at each layer (netlist stuck-ats/SEUs, LA-1 protocol mutations,
guarded-rule perturbations), sweeps them under the Table-3 workload
shape, and reports detection coverage per monitor -- with hardened
engines underneath (wall-clock deadlines, BDD-budget degradation,
checkpoint/resume, exception containment) so a campaign always ends in
a structured report.
"""

from .campaign import (
    CampaignConfig,
    CampaignReport,
    FaultCampaign,
    FaultVerdict,
    default_fault_list,
)
from .degrade import DegradationResult, check_read_mode_degraded
from .models import (
    ASM_KINDS,
    PROTOCOL_GAP_KINDS,
    PROTOCOL_KINDS,
    AsmPerturbation,
    Fault,
    ProtocolMutation,
    RtlBitFlip,
    RtlStuckAt,
)
from .asm_perturb import build_perturbed_la1_asm, expected_asm_detectors
from .rtl_inject import RtlFaultInjector
from .sysc_inject import ProtocolSaboteur

__all__ = [
    "ASM_KINDS",
    "PROTOCOL_GAP_KINDS",
    "PROTOCOL_KINDS",
    "AsmPerturbation",
    "CampaignConfig",
    "CampaignReport",
    "DegradationResult",
    "Fault",
    "FaultCampaign",
    "FaultVerdict",
    "ProtocolMutation",
    "ProtocolSaboteur",
    "RtlBitFlip",
    "RtlFaultInjector",
    "RtlStuckAt",
    "build_perturbed_la1_asm",
    "check_read_mode_degraded",
    "default_fault_list",
    "expected_asm_detectors",
]
