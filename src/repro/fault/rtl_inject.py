"""Backend-agnostic netlist fault injection for the RTL simulator.

Faults are applied through the simulator's public edge-hook mechanism so
that the *same* injector drives both the ``"interp"`` and ``"compiled"``
backends: the hook mutates the shared slot array after each edge settles
and re-runs ``settle`` so downstream combinational logic (including the
OVL checker cones, which live in the same netlist) observes the
corrupted value.  The differential suite in ``tests/test_fault_models.py``
holds the two backends bit-identical under every fault model.

Only ``reg`` and ``input`` nets are legal targets: a corrupted
combinational net would simply be recomputed by the next settle pass, so
a stuck-at there must instead be expressed on the net's register/input
support (this mirrors how gate-level stuck-ats are collapsed onto
fan-out stems in classic fault simulation).
"""

from __future__ import annotations

from typing import List

from ..rtl.hdl import HdlError
from ..rtl.simulator import RtlSimulator
from .models import Fault, RtlBitFlip, RtlStuckAt

__all__ = ["RtlFaultInjector"]


class RtlFaultInjector:
    """Attach one or more RTL faults to a running :class:`RtlSimulator`.

    Usage::

        injector = RtlFaultInjector(sim, [RtlStuckAt("la1_top.bank0...", 0, 1)])
        injector.attach()      # applies stuck-ats immediately
        ... drive traffic ...
        injector.detach()      # releases the simulator (faults stop acting)

    The injector validates every target path and bit index at
    construction time so campaigns fail fast on stale fault lists.
    """

    def __init__(self, sim: RtlSimulator, faults: List[Fault]):
        self.sim = sim
        self.faults = list(faults)
        self._attached = False
        #: True once some application actually changed a state bit (a
        #: stuck-at matching the fault-free value never does -- such a
        #: run is reported *masked* rather than silent)
        self.triggered = False
        self._plan = []  # (fault, flat_net, mask)
        for fault in self.faults:
            if not isinstance(fault, (RtlStuckAt, RtlBitFlip)):
                raise HdlError(
                    f"{fault!r} is not an RTL fault (layer={fault.layer})"
                )
            flat = sim.design.net(fault.path)
            if flat.kind not in ("reg", "input"):
                raise HdlError(
                    f"fault target {fault.path} is a {flat.kind!r} net; only "
                    "reg/input nets hold state across a settle pass"
                )
            if not (0 <= fault.bit < flat.width):
                raise HdlError(
                    f"bit {fault.bit} out of range for {flat.width}-bit "
                    f"{fault.path}"
                )
            self._plan.append((fault, flat, 1 << fault.bit))
        self._pending_flips = [
            entry for entry in self._plan if isinstance(entry[0], RtlBitFlip)
        ]

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Start injecting: force stuck-ats now and hook every edge."""
        if self._attached:
            return
        self.sim.add_edge_hook(self._on_edge)
        self._attached = True
        if self._apply_stuck_ats():
            self.sim._settle()

    def detach(self) -> None:
        """Stop injecting and release the (possibly shared) simulator."""
        if self._attached:
            self.sim.remove_edge_hook(self._on_edge)
            self._attached = False

    # ------------------------------------------------------------------
    def _apply_stuck_ats(self) -> bool:
        v = self.sim._v
        changed = False
        for fault, flat, mask in self._plan:
            if not isinstance(fault, RtlStuckAt):
                continue
            old = v[flat.slot]
            new = (old | mask) if fault.value else (old & ~mask)
            if new != old:
                v[flat.slot] = new
                changed = True
        if changed:
            self.triggered = True
        return changed

    def _on_edge(self, edge: str, sim: RtlSimulator) -> None:
        changed = self._apply_stuck_ats()
        done = []
        for entry in self._pending_flips:
            fault, flat, mask = entry
            if sim.edge_count >= fault.at_edge:
                sim._v[flat.slot] ^= mask
                changed = True
                self.triggered = True
                done.append(entry)
        for entry in done:
            self._pending_flips.remove(entry)
        if changed:
            sim._settle()
