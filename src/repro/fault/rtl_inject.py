"""Backend-agnostic netlist fault injection for the RTL simulator.

Faults are applied through the simulator's public edge-hook mechanism so
that the *same* injector drives the ``"interp"``, ``"compiled"`` and
``"bitpar"`` backends: the hook mutates the shared slot array after each
edge settles and re-runs ``settle`` so downstream combinational logic
(including the OVL checker cones, which live in the same netlist)
observes the corrupted value.  The differential suite in
``tests/test_fault_models.py`` holds the scalar backends bit-identical
under every fault model; ``tests/test_fault_ppsfp.py`` extends the
contract to the lane-parallel backend.

Only ``reg`` and ``input`` nets hold state across a settle pass: a
corrupted combinational net would simply be recomputed by the next
settle.  A stuck-at on a combinational net is therefore *collapsed onto
its register/input support* -- resolved through pure wiring
(:func:`repro.rtl.bitsim.trace_bit`) to the state bit that feeds it,
exactly how gate-level stuck-ats are collapsed onto fan-out stems in
classic fault simulation.  :func:`collapse_faults` applies the same rule
across a whole fault list, deduplicating equivalent stuck-ats before a
campaign shards them (members are reported through ``collapsed_from``
on the representative's verdict).

On the ``"bitpar"`` backend the injector forces *lane words* instead of
scalar values.  With a ``lane_map`` each fault is confined to its own
simulation lane (fault *k* active only in lane ``lane_map[k]``, lane 0
kept golden) -- the PPSFP encoding :mod:`repro.fault.ppsfp` batches
campaigns with.  Without a ``lane_map`` the fault is broadcast into
every lane.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..rtl.bitsim import trace_bit
from ..rtl.hdl import HdlError
from ..rtl.netlist import FlatDesign, FlatNet
from ..rtl.simulator import RtlSimulator
from .models import Fault, RtlBitFlip, RtlStuckAt

__all__ = ["RtlFaultInjector", "CollapsePlan", "collapse_faults",
           "resolve_state_bit"]


def resolve_state_bit(design: FlatDesign, path: str,
                      bit: int) -> Tuple[FlatNet, int]:
    """Resolve ``path[bit]`` to the register/input bit that holds it.

    ``reg``/``input`` targets resolve to themselves; a combinational
    target is traced through pure wiring (Ref/Slice/Concat and
    plain-alias nets) to its state support.  Raises :class:`HdlError`
    when the bit has real logic between it and any state bit (such a
    stuck-at cannot be expressed on state) or when the bit index is out
    of range.
    """
    try:
        flat = design.net(path)
    except KeyError:
        raise HdlError(f"unknown fault target net {path}") from None
    if not (0 <= bit < flat.width):
        raise HdlError(
            f"bit {bit} out of range for {flat.width}-bit {path}"
        )
    if flat.kind in ("reg", "input"):
        return flat, bit
    if flat.kind == "comb" and flat.tristate is None and flat.expr is not None:
        hit = trace_bit(flat.expr, flat.scope, bit)
        if hit is not None:
            return hit
    raise HdlError(
        f"fault target {path} is a {flat.kind!r} net with no pure-wiring "
        "register/input support; only reg/input nets hold state across a "
        "settle pass"
    )


class RtlFaultInjector:
    """Attach one or more RTL faults to a running :class:`RtlSimulator`.

    Usage::

        injector = RtlFaultInjector(sim, [RtlStuckAt("la1_top.bank0...", 0, 1)])
        injector.attach()      # applies stuck-ats immediately
        ... drive traffic ...
        injector.detach()      # releases the simulator (faults stop acting)

    The injector validates every target path and bit index at
    construction time so campaigns fail fast on stale fault lists.
    Combinational targets with pure-wiring state support are collapsed
    onto that support (see :func:`resolve_state_bit`).

    ``lane_map`` (bitpar backend only) confines fault *k* to simulation
    lane ``lane_map[k]`` -- or, when the entry is a *list* of lanes, to
    all of them at once (pattern packing runs the same fault against
    several stimulus variants, one lane per pattern group); lane 0 is
    reserved for the golden machine.  :attr:`triggered_lanes` then
    accumulates, per lane, whether an application actually changed that
    lane's state bit.
    """

    def __init__(self, sim: RtlSimulator, faults: List[Fault],
                 lane_map: Optional[List] = None):
        self.sim = sim
        self.faults = list(faults)
        self._attached = False
        #: True once some application actually changed a state bit (a
        #: stuck-at matching the fault-free value never does -- such a
        #: run is reported *masked* rather than silent)
        self.triggered = False
        #: bitpar backend: lane word of lanes where an application
        #: changed a state bit (the per-lane ``triggered``)
        self.triggered_lanes = 0
        bitpar = sim.backend == "bitpar"
        lane_masks: Optional[List[int]] = None
        if lane_map is not None:
            if not bitpar:
                raise HdlError("lane_map requires backend='bitpar'")
            if len(lane_map) != len(self.faults):
                raise HdlError(
                    f"lane_map holds {len(lane_map)} lanes for "
                    f"{len(self.faults)} faults"
                )
            lane_masks = []
            for entry in lane_map:
                lanes = [entry] if isinstance(entry, int) else list(entry)
                mask = 0
                for lane in lanes:
                    if not (1 <= lane < sim.lanes):
                        raise HdlError(
                            f"lane {lane} out of range (lane 0 is golden, "
                            f"{sim.lanes} lanes)"
                        )
                    mask |= 1 << lane
                if not mask:
                    raise HdlError("empty lane list in lane_map")
                lane_masks.append(mask)
        self._bitpar = bitpar
        self._plan = []  # (fault, slot, mask) over the backend state array
        for index, fault in enumerate(self.faults):
            if not isinstance(fault, (RtlStuckAt, RtlBitFlip)):
                raise HdlError(
                    f"{fault!r} is not an RTL fault (layer={fault.layer})"
                )
            flat, bit = resolve_state_bit(sim.design, fault.path, fault.bit)
            if bitpar:
                # one lane word per net bit: select the fault's lane(s);
                # flags are the activity guards watching the forced net
                slot = sim._bitpar.bit_slots[flat.path][bit]
                mask = (lane_masks[index] if lane_masks is not None
                        else sim.lane_mask)
                flags = sim._bitpar.state_guards.get(flat.path, ())
            else:
                slot = flat.slot
                mask = 1 << bit
                flags = ()
            self._plan.append((fault, slot, mask, flags))
        self._pending_flips = [
            entry for entry in self._plan if isinstance(entry[0], RtlBitFlip)
        ]

    # ------------------------------------------------------------------
    def lane_triggered(self, lane: int) -> bool:
        """True when the fault confined to ``lane`` changed a state bit."""
        return bool((self.triggered_lanes >> lane) & 1)

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Start injecting: force stuck-ats now and hook every edge."""
        if self._attached:
            return
        self.sim.add_edge_hook(self._on_edge)
        self._attached = True
        if self._apply_stuck_ats():
            self._resettle(self.sim)

    def detach(self) -> None:
        """Stop injecting and release the (possibly shared) simulator."""
        if self._attached:
            self.sim.remove_edge_hook(self._on_edge)
            self._attached = False

    # ------------------------------------------------------------------
    def _apply_stuck_ats(self) -> bool:
        v = self.sim._v
        ctx = self.sim._ctx if self._bitpar else None
        changed = 0
        for fault, slot, mask, flags in self._plan:
            if not isinstance(fault, RtlStuckAt):
                continue
            old = v[slot]
            new = (old | mask) if fault.value else (old & ~mask)
            if new != old:
                v[slot] = new
                changed |= old ^ new
                for flag in flags:
                    ctx[flag] = 1
        if changed:
            self.triggered = True
            if self._bitpar:
                self.triggered_lanes |= changed
        return bool(changed)

    def _on_edge(self, edge: str, sim: RtlSimulator) -> None:
        changed = self._apply_stuck_ats()
        done = []
        for entry in self._pending_flips:
            fault, slot, mask, flags = entry
            if sim.edge_count >= fault.at_edge:
                sim._v[slot] ^= mask
                changed = True
                self.triggered = True
                if self._bitpar:
                    self.triggered_lanes |= mask
                    for flag in flags:
                        sim._ctx[flag] = 1
                done.append(entry)
        for entry in done:
            self._pending_flips.remove(entry)
        if changed:
            self._resettle(sim)

    def _resettle(self, sim: RtlSimulator) -> None:
        """Propagate a forced state bit into combinational logic.

        The scalar backends settle eagerly -- a post-force tristate
        conflict must raise from inside the step, exactly where a real
        per-fault run would see it.  On bitpar the settle is deferred to
        the dirty-inputs flag instead: every reader (``read*``,
        ``lane_word``, ``conflict_lanes``, the campaign probe host) and
        the next ``step`` settle on demand, so forcing the same bit on
        consecutive edges costs one settle, not two.
        """
        if self._bitpar:
            sim._inputs_dirty = True
        else:
            sim._settle()


# ----------------------------------------------------------------------
# fault collapsing
# ----------------------------------------------------------------------
class CollapsePlan:
    """Outcome of :func:`collapse_faults`.

    ``run_faults`` is the deduplicated list a campaign actually sweeps
    (original order, representatives only); ``groups`` maps each
    representative's ``fault_id`` to the member :class:`Fault` objects
    it stands for (the members removed from ``run_faults``).
    """

    __slots__ = ("run_faults", "groups")

    def __init__(self, run_faults: List[Fault], groups: dict):
        self.run_faults = run_faults
        self.groups = groups

    @property
    def collapsed(self) -> int:
        """Number of faults removed by collapsing."""
        return sum(len(members) for members in self.groups.values())

    def __repr__(self):
        return (f"CollapsePlan({len(self.run_faults)} to run, "
                f"{self.collapsed} collapsed)")


def collapse_faults(faults: List[Fault], design: FlatDesign) -> CollapsePlan:
    """Dedupe equivalent RTL stuck-ats onto their register/input support.

    Two stuck-ats are equivalent when they resolve -- through pure
    wiring -- to the same state bit with the same forced value; only the
    first (the representative) is executed, and the campaign copies its
    verdict to every member, recording the relation in the verdicts'
    ``collapsed_from`` fields.  Faults that are not stuck-ats, or whose
    target has no pure-wiring state support (they would produce an
    ``error`` verdict of their own), pass through uncollapsed.
    """
    run_faults: List[Fault] = []
    groups: dict = {}
    keyed: dict = {}
    for fault in faults:
        if not isinstance(fault, RtlStuckAt):
            run_faults.append(fault)
            continue
        try:
            flat, bit = resolve_state_bit(design, fault.path, fault.bit)
        except HdlError:
            run_faults.append(fault)
            continue
        key = (flat.path, bit, fault.value)
        rep = keyed.get(key)
        if rep is None:
            keyed[key] = fault
            run_faults.append(fault)
        else:
            groups.setdefault(rep.fault_id, []).append(fault)
    return CollapsePlan(run_faults, groups)
