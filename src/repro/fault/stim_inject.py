"""Host-side stimulus mutation: the transactor shim behind
:class:`~repro.fault.models.StimulusMutation`.

Protocol mutations (:mod:`repro.fault.sysc_inject`) sabotage the *device*
side of the observation boundary inside the SystemC transactor; a
stimulus mutation corrupts the *host's* transaction stream before it
reaches the RTL transactor.  The lane-encodable kinds touch only
datapath fields (address, write data, byte enables) of one transaction,
so the mutated stream keeps the base command schedule bit for bit --
which is exactly the invariant PPSFP pattern lanes rely on: the mutation
lowers to a per-lane divergent input drive
(:meth:`~repro.rtl.simulator.RtlSimulator.set_input_lanes`) instead of a
dedicated compiled run.  The schedule-changing kinds (``drop_read``,
``duplicate_read``) cannot be lane-encoded and demonstrate the
degradation ladder: they always run per-fault.

All stimulus mutations are coverage-gap probes: the mutated stream is
protocol-legal, no monitor watches the *values* the host chose, so only
golden-run differencing can see them.  Because the mutation corrupts the
issued fields themselves, the golden comparison excludes the issued
address (:func:`stim_log_signature`): both the per-fault and the lane
path diff only what comes back over the bus, which keeps their verdicts
bit-identical.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.spec import BEATS_PER_WORD, La1Config
from .models import STIM_KINDS, STIM_LADDER_KINDS, StimulusMutation

__all__ = [
    "StimulusApplicator",
    "full_byte_enables",
    "queue_mutated_traffic",
    "stim_log_signature",
    "reduce_log_signature",
    "lane_triggered_schedule",
]


class StimulusApplicator:
    """Occurrence-counting mutation state for one
    :class:`StimulusMutation` over one replay of the base schedule.

    The counters advance per read (or write, by kind) to the fault's
    bank, so for a fixed command schedule the trigger point -- and hence
    ``triggered`` -- is identical whether the stream is queued scalar or
    assembled into lane values.
    """

    #: kinds whose occurrence counter advances on *reads* to the bank
    READ_KINDS = ("corrupt_read_address", "drop_read", "duplicate_read")

    def __init__(self, fault: StimulusMutation, config: La1Config):
        if fault.kind not in STIM_KINDS + STIM_LADDER_KINDS:
            raise ValueError(f"unknown stimulus mutation kind {fault.kind!r}")
        self.fault = fault
        self.config = config
        self.count = 0
        self.triggered = False

    def on_read(self, bank: int) -> Optional[str]:
        """Advance the counter for a read to ``bank``; the fault's kind
        when this is the mutated occurrence, else None."""
        fault = self.fault
        if fault.kind not in self.READ_KINDS or bank != fault.bank:
            return None
        self.count += 1
        if self.count != fault.occurrence:
            return None
        self.triggered = True
        return fault.kind

    def on_write(self, bank: int) -> Optional[str]:
        """Advance the counter for a write to ``bank``; the fault's kind
        when this is the mutated occurrence, else None."""
        fault = self.fault
        if fault.kind in self.READ_KINDS or bank != fault.bank:
            return None
        self.count += 1
        if self.count != fault.occurrence:
            return None
        self.triggered = True
        return fault.kind

    # -- field mutations (pure, schedule-preserving) -------------------
    def mutate_read_addr(self, addr: int) -> int:
        return addr ^ 1

    def mutate_write(self, addr: int, word: int,
                     byte_enables: int) -> Tuple[int, int, int]:
        kind = self.fault.kind
        config = self.config
        if kind == "corrupt_write_address":
            return addr ^ 1, word, byte_enables
        if kind == "corrupt_write_data":
            return addr, word ^ 1, byte_enables
        if kind == "corrupt_byte_enable":
            return addr, word, byte_enables ^ 1
        if kind == "swap_write_beats":
            beat_mask = (1 << config.beat_bits) - 1
            beat0 = word & beat_mask
            beat1 = (word >> config.beat_bits) & beat_mask
            return addr, (beat0 << config.beat_bits) | beat1, byte_enables
        raise ValueError(f"{kind!r} is not a write mutation")


def full_byte_enables(config: La1Config) -> int:
    """The host's default (all-bytes) write enable mask."""
    return (1 << (config.byte_lanes * BEATS_PER_WORD)) - 1


def queue_mutated_traffic(host, config: La1Config, schedule,
                          values, fault: StimulusMutation) -> bool:
    """Queue ``schedule`` (with pattern ``values``) onto ``host`` with
    ``fault`` applied; True when the mutation window was reached.

    ``schedule``/``values`` come from :mod:`repro.core.traffic`, so the
    unmutated replay is bit-identical to the campaign's golden stream.
    """
    state = StimulusApplicator(fault, config)
    full_bw = full_byte_enables(config)
    for (is_read, bank, __a, __w), (addr, word) in zip(schedule, values):
        if is_read:
            action = state.on_read(bank)
            if action == "drop_read":
                continue
            if action == "duplicate_read":
                host.read(bank, addr)
                host.read(bank, addr)
                continue
            if action == "corrupt_read_address":
                addr = state.mutate_read_addr(addr)
            host.read(bank, addr)
        else:
            action = state.on_write(bank)
            if action is None:
                host.write(bank, addr, word)
            else:
                addr, word, bw = state.mutate_write(addr, word, full_bw)
                host.write(bank, addr, word, bw)
    return state.triggered


def stim_log_signature(host) -> tuple:
    """Transaction log excluding the issued address.

    A stimulus mutation corrupts the issued fields themselves (the
    logged address of a ``corrupt_read_address`` run trivially differs),
    so its golden comparison diffs only what came back over the bus --
    the same observable the lane path's ``log_diff`` accumulates."""
    return tuple(
        (r.bank, r.word, tuple(r.beats), tuple(r.parities))
        for r in host.results
    )


def reduce_log_signature(signature: tuple) -> tuple:
    """Project a full campaign log signature (with addresses) onto the
    address-free shape of :func:`stim_log_signature`."""
    return tuple(
        (bank, word, beats, parities)
        for bank, __addr, word, beats, parities in signature
    )


def lane_triggered_schedule(schedule,
                            faults: List[StimulusMutation],
                            config: La1Config) -> List[bool]:
    """Whether each fault's mutation window is reached by ``schedule``
    (schedule-shared, so identical for every pattern lane)."""
    out = []
    for fault in faults:
        state = StimulusApplicator(fault, config)
        for is_read, bank, __a, __w in schedule:
            if is_read:
                state.on_read(bank)
            else:
                state.on_write(bank)
        out.append(state.triggered)
    return out
