"""Graceful degradation: symbolic checking -> bounded exploration.

Table 2's lesson is that the symbolic checker is the strongest but most
brittle engine: past ~4 banks its BDDs explode.  A campaign (or a CI
gate) cannot afford an engine that either proves the property or dies --
it needs a *ladder*: try the symbolic checker under explicit node and
wall-clock budgets, and when it reports ``exploded`` or ``truncated``,
fall back to the bounded ASM exploration checker (Table 1's engine),
which always terminates under its own bounds and still finds real
counterexamples even when it cannot prove the property outright.

Every rung's outcome is preserved in :class:`DegradationResult.attempts`
so a report can show *why* the final verdict carries the confidence it
does (proved symbolically > proved by complete exploration > no
violation found within bounds).
"""

from __future__ import annotations

import time
from typing import Optional

from ..asm import AsmModelChecker, ExplorationConfig
from ..core.asm_model import La1AsmConfig, build_la1_asm
from ..core.properties import asm_labeling, read_mode_suite
from ..core.rulebase import check_read_mode_rtl

__all__ = ["DegradationResult", "check_read_mode_degraded"]


class DegradationResult:
    """Final verdict of the ladder plus the audit trail of every rung.

    ``holds`` is True (proved / no violation in a complete exploration),
    False (counterexample found at some rung), or None (every rung was
    truncated without finding a violation).  ``rung`` names the engine
    that produced the final verdict (``"symbolic"`` or ``"exploration"``)
    and ``degraded`` is True when the symbolic rung had to be abandoned.
    """

    def __init__(self, holds: Optional[bool], rung: str, degraded: bool,
                 attempts: list, cpu_time: float):
        self.holds = holds
        self.rung = rung
        self.degraded = degraded
        self.attempts = attempts
        self.cpu_time = cpu_time

    def __repr__(self):
        verdict = {True: "HOLDS", False: "FAILS", None: "UNKNOWN"}[self.holds]
        flag = " degraded" if self.degraded else ""
        return (
            f"DegradationResult({verdict} via {self.rung}{flag}, "
            f"{len(self.attempts)} attempts, {self.cpu_time:.2f}s)"
        )


def check_read_mode_degraded(
    banks: int,
    transient_node_budget: Optional[int] = 12_000_000,
    live_node_budget: Optional[int] = 1_500_000,
    deadline_s: Optional[float] = None,
    exploration_config: Optional[ExplorationConfig] = None,
) -> DegradationResult:
    """Check the Read-Mode contract with symbolic-first degradation.

    Rung 1 runs :func:`check_read_mode_rtl` under the given BDD node
    budgets and wall-clock deadline.  If it explodes or times out, rung 2
    model checks the same read-mode property suite on the ASM model by
    bounded exploration (sharing what is left of the deadline).
    """
    start = time.perf_counter()
    attempts: list = []

    mc = check_read_mode_rtl(
        banks,
        transient_node_budget=transient_node_budget,
        live_node_budget=live_node_budget,
        deadline_s=deadline_s,
    )
    attempts.append(("symbolic", mc))
    if mc.holds is not None:
        return DegradationResult(
            mc.holds, "symbolic", False, attempts,
            time.perf_counter() - start,
        )

    # symbolic rung exhausted (state explosion or deadline): degrade to
    # the exploration engine over the abstract model
    remaining = None
    if deadline_s is not None:
        remaining = max(0.5, deadline_s - (time.perf_counter() - start))
    config = exploration_config or ExplorationConfig(
        max_states=200_000, max_transitions=2_000_000,
    )
    if remaining is not None and config.deadline_s is None:
        config.deadline_s = remaining
    checker = AsmModelChecker(
        build_la1_asm(La1AsmConfig(banks=banks)),
        asm_labeling(banks),
        config,
    )
    suite = read_mode_suite(banks)
    result = checker.check_combined(
        [prop for __, prop in suite], name=f"read_mode[{banks}banks]/explore",
    )
    attempts.append(("exploration", result))
    return DegradationResult(
        result.holds, "exploration", True, attempts,
        time.perf_counter() - start,
    )
