"""A reduced ordered binary decision diagram (ROBDD) engine.

IBM's RuleBase -- the model checker the paper compares against at RTL --
is BDD-based; its published metrics (Table 2) are CPU time, memory and the
*number of BDDs*.  This engine provides the same machinery and the same
accounting:

* a unique table guaranteeing canonicity (equal functions are the same
  node id), so equivalence checks are pointer comparisons;
* an ``ite``-based apply with a computed-table cache -- bounded by
  ``cache_limit`` (clear-on-overflow) with hit/miss/clear counters
  surfaced through :meth:`BddManager.stats`;
* existential/universal quantification, variable substitution (for
  next-state renaming in image computation), restriction and satisfying-
  assignment extraction;
* a configurable **node budget**: exceeding it raises
  :class:`BddBudgetExceeded`, which the symbolic model checker reports as
  *state explosion* -- the genuine resource exhaustion behind Table 2's
  4-bank entry.

Nodes are integers: ``0``/``1`` are the terminals; every other node is an
index into the manager's node array storing ``(level, low, high)``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["BddManager", "BddBudgetExceeded"]


class BddBudgetExceeded(Exception):
    """Raised when the unique table outgrows the configured node budget."""

    def __init__(self, budget: int):
        super().__init__(f"BDD node budget of {budget} nodes exceeded")
        self.budget = budget


class BddManager:
    """Owns the unique table, the computed table and the variable order."""

    FALSE = 0
    TRUE = 1

    #: default computed-table entry cap; crossing it drops the table
    DEFAULT_CACHE_LIMIT = 1_000_000

    def __init__(self, node_budget: Optional[int] = None,
                 cache_limit: Optional[int] = DEFAULT_CACHE_LIMIT):
        # nodes[i] = (level, low, high); entries 0/1 are dummy terminals
        self._level: list[int] = [-1, -1]
        self._low: list[int] = [0, 0]
        self._high: list[int] = [0, 0]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._cache: dict[tuple, int] = {}
        self._vars: list[str] = []
        self._var_index: dict[str, int] = {}
        self.node_budget = node_budget
        self.cache_limit = cache_limit
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_clears = 0
        self.peak_nodes = 2

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Declare variable ``name`` at the next (deepest) level; returns
        the BDD node for the variable itself."""
        if name in self._var_index:
            raise ValueError(f"variable {name} already declared")
        level = len(self._vars)
        self._vars.append(name)
        self._var_index[name] = level
        return self._mk(level, self.FALSE, self.TRUE)

    def var(self, name: str) -> int:
        """The BDD of an already declared variable."""
        return self._mk(self._var_index[name], self.FALSE, self.TRUE)

    def var_names(self) -> list[str]:
        """Variables in order (level 0 first)."""
        return list(self._vars)

    def level_of(self, name: str) -> int:
        """Ordering level of a variable."""
        return self._var_index[name]

    @property
    def num_nodes(self) -> int:
        """Total nodes ever allocated (including both terminals)."""
        return len(self._level)

    # ------------------------------------------------------------------
    # core construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        node = len(self._level)
        if self.node_budget is not None and node > self.node_budget:
            raise BddBudgetExceeded(self.node_budget)
        self._level.append(level)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        if node + 1 > self.peak_nodes:
            self.peak_nodes = node + 1
        return node

    def _cache_put(self, key: tuple, result: int) -> None:
        """Insert into the computed table, clearing it when it outgrows
        ``cache_limit`` (a plain clear: the table is a pure cache, so
        dropping it costs recomputation, never correctness)."""
        cache = self._cache
        if self.cache_limit is not None and len(cache) >= self.cache_limit:
            cache.clear()
            self.cache_clears += 1
        cache[key] = result

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` -- the universal BDD operation."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = ("ite", f, g, h)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        level = min(
            lv
            for lv in (self._level[f], self._level[g], self._level[h])
            if lv >= 0
        )
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(level, low, high)
        self._cache_put(key, result)
        return result

    def _cofactors(self, node: int, level: int) -> tuple[int, int]:
        if node <= 1 or self._level[node] != level:
            return node, node
        return self._low[node], self._high[node]

    # ------------------------------------------------------------------
    # boolean operations
    # ------------------------------------------------------------------
    def not_(self, f: int) -> int:
        """Negation."""
        return self.ite(f, self.FALSE, self.TRUE)

    def and_(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, self.FALSE)

    def or_(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, self.TRUE, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.not_(g), g)

    def xnor(self, f: int, g: int) -> int:
        """Equivalence (biconditional)."""
        return self.ite(f, g, self.not_(g))

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.ite(f, g, self.TRUE)

    def and_all(self, fs: Iterable[int]) -> int:
        """Conjunction of many terms."""
        acc = self.TRUE
        for f in fs:
            acc = self.and_(acc, f)
            if acc == self.FALSE:
                return acc
        return acc

    def or_all(self, fs: Iterable[int]) -> int:
        """Disjunction of many terms."""
        acc = self.FALSE
        for f in fs:
            acc = self.or_(acc, f)
            if acc == self.TRUE:
                return acc
        return acc

    # ------------------------------------------------------------------
    # quantification and substitution
    # ------------------------------------------------------------------
    def exists(self, names: Sequence[str], f: int) -> int:
        """Existential quantification over ``names``."""
        levels = frozenset(self._var_index[n] for n in names)
        return self._quant(f, levels, conj=False)

    def forall(self, names: Sequence[str], f: int) -> int:
        """Universal quantification over ``names``."""
        levels = frozenset(self._var_index[n] for n in names)
        return self._quant(f, levels, conj=True)

    def _quant(self, f: int, levels: frozenset, conj: bool) -> int:
        if f <= 1:
            return f
        key = ("forall" if conj else "exists", f, levels)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        level = self._level[f]
        low = self._quant(self._low[f], levels, conj)
        high = self._quant(self._high[f], levels, conj)
        if level in levels:
            result = self.and_(low, high) if conj else self.or_(low, high)
        else:
            result = self._mk(level, low, high)
        self._cache_put(key, result)
        return result

    def rename(self, f: int, mapping: dict[str, str]) -> int:
        """Substitute variables for variables (e.g. next -> current).

        The mapping must be level-monotone (the standard case when current
        and next variables are interleaved); a compose-based fallback
        handles arbitrary mappings.
        """
        pairs = sorted(
            ((self._var_index[a], self._var_index[b]) for a, b in mapping.items())
        )
        monotone = all(
            pairs[i][1] < pairs[i + 1][1] for i in range(len(pairs) - 1)
        )
        if monotone:
            table = dict(pairs)
            return self._rename_fast(f, table, cache_key=tuple(pairs))
        # general case: simultaneous substitution rebuilt bottom-up with
        # ite (sequential compose would be wrong for permutations)
        return self._rename_general(f, dict(mapping), tuple(pairs))

    def _rename_general(self, f: int, mapping: dict[str, str], cache_key) -> int:
        if f <= 1:
            return f
        key = ("renameg", f, cache_key)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        low = self._rename_general(self._low[f], mapping, cache_key)
        high = self._rename_general(self._high[f], mapping, cache_key)
        name = self._vars[self._level[f]]
        target = mapping.get(name, name)
        result = self.ite(self.var(target), high, low)
        self._cache_put(key, result)
        return result

    def _rename_fast(self, f: int, table: dict[int, int], cache_key) -> int:
        if f <= 1:
            return f
        key = ("rename", f, cache_key)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        level = self._level[f]
        low = self._rename_fast(self._low[f], table, cache_key)
        high = self._rename_fast(self._high[f], table, cache_key)
        result = self._mk(table.get(level, level), low, high)
        self._cache_put(key, result)
        return result

    def compose(self, f: int, name: str, g: int) -> int:
        """Substitute function ``g`` for variable ``name`` in ``f``."""
        level = self._var_index[name]
        return self._compose(f, level, g)

    def _compose(self, f: int, level: int, g: int) -> int:
        if f <= 1 or self._level[f] > level:
            return f
        key = ("compose", f, level, g)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        if self._level[f] == level:
            result = self.ite(g, self._high[f], self._low[f])
        else:
            low = self._compose(self._low[f], level, g)
            high = self._compose(self._high[f], level, g)
            var_bdd = self._mk(self._level[f], self.FALSE, self.TRUE)
            result = self.ite(var_bdd, high, low)
        self._cache_put(key, result)
        return result

    def restrict(self, f: int, assignment: dict[str, bool]) -> int:
        """Cofactor ``f`` under a partial variable assignment."""
        result = f
        for name, value in assignment.items():
            level = self._var_index[name]
            result = self._restrict_one(result, level, value)
        return result

    def _restrict_one(self, f: int, level: int, value: bool) -> int:
        if f <= 1 or self._level[f] > level:
            return f
        key = ("restrict", f, level, value)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        if self._level[f] == level:
            result = self._high[f] if value else self._low[f]
        else:
            low = self._restrict_one(self._low[f], level, value)
            high = self._restrict_one(self._high[f], level, value)
            result = self._mk(self._level[f], low, high)
        self._cache_put(key, result)
        return result

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def size(self, f: int) -> int:
        """Number of distinct decision nodes in the BDD rooted at ``f``."""
        seen: set[int] = set()

        def walk(node: int) -> None:
            if node <= 1 or node in seen:
                return
            seen.add(node)
            walk(self._low[node])
            walk(self._high[node])

        walk(f)
        return len(seen)

    def size_many(self, roots: Iterable[int]) -> int:
        """Distinct decision nodes across several roots (shared counted once)."""
        seen: set[int] = set()

        def walk(node: int) -> None:
            if node <= 1 or node in seen:
                return
            seen.add(node)
            walk(self._low[node])
            walk(self._high[node])

        for root in roots:
            walk(root)
        return len(seen)

    def evaluate(self, f: int, assignment: dict[str, bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support."""
        node = f
        while node > 1:
            name = self._vars[self._level[node]]
            node = self._high[node] if assignment[name] else self._low[node]
        return node == self.TRUE

    def any_sat(self, f: int) -> Optional[dict[str, bool]]:
        """One satisfying assignment (partial: only decided variables), or
        None when ``f`` is unsatisfiable."""
        if f == self.FALSE:
            return None
        assignment: dict[str, bool] = {}
        node = f
        while node > 1:
            name = self._vars[self._level[node]]
            if self._low[node] != self.FALSE:
                assignment[name] = False
                node = self._low[node]
            else:
                assignment[name] = True
                node = self._high[node]
        return assignment

    def sat_count(self, f: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables
        (default: all declared variables)."""
        total_vars = num_vars if num_vars is not None else len(self._vars)
        cache: dict[int, int] = {}

        def count_at(node: int) -> int:
            """Count over the variables strictly below ``node``'s level."""
            if node in cache:
                return cache[node]
            level = self._level[node]
            result = count_from(self._low[node], level + 1) + count_from(
                self._high[node], level + 1
            )
            cache[node] = result
            return result

        def count_from(node: int, from_level: int) -> int:
            if node == self.FALSE:
                return 0
            if node == self.TRUE:
                return 1 << (total_vars - from_level)
            level = self._level[node]
            return count_at(node) << (level - from_level)

        return count_from(f, 0)

    def support(self, f: int) -> set[str]:
        """The set of variables ``f`` actually depends on."""
        seen: set[int] = set()
        names: set[str] = set()

        def walk(node: int) -> None:
            if node <= 1 or node in seen:
                return
            seen.add(node)
            names.add(self._vars[self._level[node]])
            walk(self._low[node])
            walk(self._high[node])

        walk(f)
        return names

    def clear_cache(self) -> None:
        """Drop the computed table (useful between unrelated problems)."""
        self._cache.clear()

    def stats(self) -> dict[str, int]:
        """Size and computed-table accounting: node counts plus cache
        hit/miss/clear counters (the RuleBase-style cost telemetry)."""
        return {
            "nodes": self.num_nodes,
            "peak_nodes": self.peak_nodes,
            "vars": len(self._vars),
            "cache_entries": len(self._cache),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_clears": self.cache_clears,
        }

    # ------------------------------------------------------------------
    # garbage collection by copying
    # ------------------------------------------------------------------
    def clone_empty(self) -> "BddManager":
        """A fresh manager with the same variable order and budget."""
        other = BddManager(node_budget=self.node_budget,
                           cache_limit=self.cache_limit)
        for name in self._vars:
            other.add_var(name)
        return other

    def copy_roots(self, other: "BddManager", roots: Sequence[int]) -> list[int]:
        """Copy the BDDs rooted at ``roots`` into ``other`` (which must
        share this manager's variable order); returns the new roots.

        This is the collector: copying the live roots into a fresh
        manager drops every dead node, so long reachability runs measure
        *live* BDD size against the node budget rather than cumulative
        allocation.
        """
        if other.var_names() != self.var_names():
            raise ValueError("copy_roots requires an identical variable order")
        mapping: dict[int, int] = {self.FALSE: other.FALSE,
                                   self.TRUE: other.TRUE}

        def copy(node: int) -> int:
            mapped = mapping.get(node)
            if mapped is not None:
                return mapped
            low = copy(self._low[node])
            high = copy(self._high[node])
            mapped = other._mk(self._level[node], low, high)
            mapping[node] = mapped
            return mapped

        import sys

        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(max(limit, 100000))
            return [copy(r) for r in roots]
        finally:
            sys.setrecursionlimit(limit)

    def estimated_memory_bytes(self) -> int:
        """A memory estimate: 24 bytes per node plus table overheads,
        mirroring how RuleBase-style tools report megabytes."""
        per_node = 24
        table_overhead = 64
        return self.num_nodes * (per_node + table_overhead)
