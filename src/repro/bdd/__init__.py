"""``repro.bdd`` -- a reduced ordered BDD engine with node-budget accounting.

The substrate under the RuleBase-style symbolic model checker
(:mod:`repro.mc`).  See :class:`BddManager` for the API and
:class:`BddBudgetExceeded` for the state-explosion mechanism.
"""

from .bdd import BddBudgetExceeded, BddManager
from .ordering import NEXT_SUFFIX, interleaved_order, naive_order

__all__ = [
    "BddManager",
    "BddBudgetExceeded",
    "interleaved_order",
    "naive_order",
    "NEXT_SUFFIX",
]
