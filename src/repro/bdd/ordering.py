"""Variable ordering heuristics for the symbolic model checker.

BDD sizes are exquisitely sensitive to variable order; RuleBase-era tools
shipped static ordering heuristics, and the 4-bank state explosion boundary
in Table 2 moves with the order chosen.  Two orders are provided (and
compared by the ordering ablation benchmark):

* :func:`interleaved_order` -- each state bit's *next* variable directly
  follows its *current* variable, and the bits of one register stay
  adjacent.  This is the standard good order for image computation.
* :func:`naive_order` -- all current variables first, then all next
  variables; the classic bad order that inflates the transition relation.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["interleaved_order", "naive_order", "NEXT_SUFFIX"]

NEXT_SUFFIX = "'"


def interleaved_order(state_bits: Sequence[str], input_bits: Sequence[str]) -> list[str]:
    """Inputs first, then ``bit, bit'`` pairs in declaration order."""
    order: list[str] = list(input_bits)
    for bit in state_bits:
        order.append(bit)
        order.append(bit + NEXT_SUFFIX)
    return order


def naive_order(state_bits: Sequence[str], input_bits: Sequence[str]) -> list[str]:
    """Inputs, then all current bits, then all next bits."""
    order = list(input_bits)
    order.extend(state_bits)
    order.extend(bit + NEXT_SUFFIX for bit in state_bits)
    return order
