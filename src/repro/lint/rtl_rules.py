"""RTL diagnostic rules: structural (pre-elaboration) and netlist-level.

Structural rules walk the :class:`~repro.rtl.hdl.RtlModule` occurrence
tree directly, so they can diagnose exactly the conditions that would
make :func:`~repro.rtl.netlist.elaborate` raise (undriven wires,
registers with no next-state assignment) as orderly findings instead of
a crash.  Netlist rules run on the elaborated flat design and consume
the foundation analyses of :mod:`repro.lint.analyses`.

Rule ids
--------
``undriven-net``       wire with no driver, tristate or instance binding
``read-before-write``  register with no next-state assignment
``width-truncation``   slice discarding computed bits of an add / concat
``tristate-conflict``  two bus drivers statically enabled together
``unused-net``         net that no logic, monitor or declared sink reads
``const-comb``         combinational net that folds to a constant
``unobservable-reg``   register outside every monitor's cone of influence
``cdc-no-sync``        cross-domain sample through combinational logic
"""

from __future__ import annotations

from typing import Optional

from ..rtl.hdl import (
    BinOp,
    Concat,
    Const,
    Expr,
    Mux,
    Reduce,
    Reg,
    Ref,
    RtlModule,
    Slice,
    TristateDriver,
    UnOp,
    Wire,
)
from ..rtl.verilog_emit import emit_expr
from .analyses import pure_fold
from .diagnostics import ERROR, INFO
from .manager import LintContext, Pass

__all__ = [
    "ModuleStructurePass",
    "NetlistRulesPass",
    "ObservabilityPass",
    "CdcPass",
]


def _walk_exprs(node: Expr):
    """Yield every sub-expression of an expression tree."""
    yield node
    if isinstance(node, UnOp):
        yield from _walk_exprs(node.a)
    elif isinstance(node, BinOp):
        yield from _walk_exprs(node.a)
        yield from _walk_exprs(node.b)
    elif isinstance(node, Mux):
        yield from _walk_exprs(node.sel)
        yield from _walk_exprs(node.if_true)
        yield from _walk_exprs(node.if_false)
    elif isinstance(node, Slice):
        yield from _walk_exprs(node.a)
    elif isinstance(node, Concat):
        for part in node.parts:
            yield from _walk_exprs(part)
    elif isinstance(node, Reduce):
        yield from _walk_exprs(node.a)


class ModuleStructurePass(Pass):
    """Pre-elaboration structural rules over the module occurrence tree."""

    name = "rtl-structure"

    def run(self, ctx: LintContext) -> Optional[dict]:
        if ctx.top is None:
            return None
        occurrences = 0

        def walk(module: RtlModule, path: str) -> None:
            nonlocal occurrences
            occurrences += 1
            if ctx.design is None:
                # elaboration failed (or was skipped): module waivers were
                # never collected onto a flat design, so apply them here
                ctx.add_waivers(
                    (rule, f"{path}.{pattern}", reason)
                    for rule, pattern, reason in
                    getattr(module, "lint_waivers", ())
                )
            input_names = {p.name for p in module.input_ports()}
            output_bound = set()
            reads = set()
            exprs: list[tuple[str, Expr]] = []
            for instance in module.instances:
                for port in instance.module.ports:
                    bound = instance.connections[port.name]
                    if port.direction == "out":
                        output_bound.add(bound)
                    else:
                        exprs.append((f"{instance.name}.{port.name}", bound))
            for net in module.nets.values():
                if isinstance(net, Wire):
                    if net.driver is not None:
                        exprs.append((net.name, net.driver))
                    for driver in net.tristate_drivers:
                        exprs.append((net.name, driver.enable))
                        exprs.append((net.name, driver.value))
                elif isinstance(net, Reg) and net.next is not None:
                    exprs.append((net.name, net.next))
            for __, expr in exprs:
                reads.update(expr.refs())
            for monitor in module.monitors:
                reads.add(monitor[0])

            for net in module.nets.values():
                location = f"{path}.{net.name}"
                if isinstance(net, Reg):
                    if net.next is None:
                        read = net in reads
                        ctx.emit(
                            "read-before-write", ERROR, location,
                            "register has no next-state assignment"
                            + ("; reads see only its power-up value"
                               if read else " and is never read"),
                            fix_hint="add a sync() next-state assignment",
                        )
                    continue
                assert isinstance(net, Wire)
                if (
                    net.driver is None
                    and not net.tristate_drivers
                    and net not in output_bound
                    and net.name not in input_names
                ):
                    ctx.emit(
                        "undriven-net", ERROR, location,
                        "wire has no driver, tristate or instance binding",
                        fix_hint="drive the wire or delete it",
                    )
                if len(net.tristate_drivers) >= 2:
                    self._check_tristate(ctx, location, net.tristate_drivers)

            for net_name, expr in exprs:
                self._check_truncation(ctx, f"{path}.{net_name}", expr)

            for instance in module.instances:
                walk(instance.module, f"{path}.{instance.name}")

        walk(ctx.top, ctx.top.name)
        return {"occurrences": occurrences}

    # ------------------------------------------------------------------
    @staticmethod
    def _check_tristate(
        ctx: LintContext, location: str, drivers: list[TristateDriver]
    ) -> None:
        always_on = [
            i for i, d in enumerate(drivers) if pure_fold(d.enable) == 1
        ]
        if len(always_on) >= 2:
            ctx.emit(
                "tristate-conflict", ERROR, location,
                f"tristate drivers {always_on} are unconditionally "
                "enabled together (statically multi-driven bus)",
                fix_hint="make the enables mutually exclusive",
            )
            return
        seen: dict[str, int] = {}
        for i, driver in enumerate(drivers):
            if pure_fold(driver.enable) == 0:
                continue
            text = emit_expr(driver.enable)
            if text in seen:
                ctx.emit(
                    "tristate-conflict", ERROR, location,
                    f"tristate drivers {seen[text]} and {i} share the "
                    f"enable condition {text}; both drive when it is high",
                    fix_hint="make the enables mutually exclusive",
                )
                return
            seen[text] = i

    @staticmethod
    def _check_truncation(ctx: LintContext, location: str, expr: Expr) -> None:
        for node in _walk_exprs(expr):
            if not isinstance(node, Slice):
                continue
            operand = node.a
            if isinstance(operand, (Concat,)) or (
                isinstance(operand, BinOp) and operand.op == "add"
            ):
                if node.hi < operand.width - 1:
                    kind = ("concatenation" if isinstance(operand, Concat)
                            else "addition")
                    ctx.emit(
                        "width-truncation", ERROR, location,
                        f"slice [{node.hi}:{node.lo}] discards the top "
                        f"{operand.width - 1 - node.hi} bit(s) of a "
                        f"{kind} result",
                        fix_hint="widen the slice or narrow the operands",
                    )


class NetlistRulesPass(Pass):
    """Flat-design rules: unused nets and constant-foldable logic."""

    name = "rtl-netlist"
    requires = ("dataflow", "constprop")

    def run(self, ctx: LintContext) -> None:
        if ctx.design is None:
            return
        design = ctx.design
        graph = ctx.result("dataflow")
        values = ctx.result("constprop")

        sinks = set(getattr(design, "top_outputs", ()) or ())
        sinks.update(mon.fire.path for mon in design.monitors)
        sinks.update(ctx.config.extra_sinks)

        for path, flat in design.nets.items():
            if graph.fanout[path] or path in sinks:
                continue
            what = {"input": "input", "reg": "register", "comb": "net"}
            ctx.emit(
                "unused-net", ERROR, path,
                f"{what[flat.kind]} drives no logic, monitor or declared "
                "observation point",
                fix_hint="delete it or attach the consumer that was "
                         "intended to read it",
            )

        for flat in design.comb_order:
            value = values.get(flat.path)
            if value is None:
                continue
            if isinstance(flat.expr, (Const, Ref)):
                # literal tie-offs are intent; aliases of constant nets
                # would re-report the same root cause along the chain
                continue
            ctx.emit(
                "const-comb", ERROR, flat.path,
                f"combinational logic always evaluates to {value} "
                "(dead logic)",
                fix_hint=f"replace the cone with the constant {value}",
            )


class ObservabilityPass(Pass):
    """Registers outside every monitor's cone of influence.

    This is the static complement of the fault campaign: a fault in such
    a register is *silent* by construction -- no assertion can ever see
    it (the gap class PR 2 measured dynamically).
    """

    name = "rtl-observability"
    requires = ("coi",)

    def run(self, ctx: LintContext) -> None:
        if ctx.design is None:
            return
        coi = ctx.result("coi")
        cone = coi.monitor_cone()
        if cone is None:
            ctx.emit(
                "unobservable-reg", INFO,
                getattr(ctx.top, "name", "design"),
                "design has no monitors; register observability not "
                "assessed",
            )
            return
        for reg in ctx.design.regs:
            if reg.path not in cone:
                ctx.emit(
                    "unobservable-reg", ERROR, reg.path,
                    "register is outside every monitor's cone of "
                    "influence; faults in it are silent",
                    fix_hint="add an assertion observing this state or "
                             "waive with a justification",
                )


class CdcPass(Pass):
    """K/K# clock-domain crossings sampled through combinational logic.

    A register may capture a register of the other clock domain directly
    (a pure flop-to-flop stage -- the DDR hand-off and the first stage of
    any synchronizer); combinational logic between the domains is
    flagged.
    """

    name = "rtl-cdc"
    requires = ("dataflow",)

    def run(self, ctx: LintContext) -> None:
        if ctx.design is None:
            return
        design = ctx.design
        graph = ctx.result("dataflow")
        for reg in design.regs:
            cross = sorted(
                path
                for path in graph.comb_sources(reg)
                if design.nets[path].kind == "reg"
                and design.nets[path].clock != reg.clock
            )
            if not cross:
                continue
            if isinstance(reg.next_expr, Ref):
                source = graph.resolve_alias(reg.scope[reg.next_expr.net])
                if source.kind == "reg":
                    continue  # pure capture stage: allowed
            ctx.emit(
                "cdc-no-sync", ERROR, reg.path,
                f"{reg.clock}-domain register samples "
                f"{', '.join(cross)} of the other clock domain through "
                "combinational logic",
                fix_hint="insert a capture register (pure flop stage) at "
                         "the domain boundary",
            )
