"""Diagnostics, waivers and the lint report.

Every lint rule emits :class:`Diagnostic` records -- a rule id, a
severity, a *location* (a flat net path, a property name or an ASM rule
name), a message and an optional fix hint.  Findings can be *waived*
(suppressed with a justification) at two levels:

* **inline** -- models declare waivers at construction time
  (:meth:`repro.rtl.hdl.RtlModule.lint_waive`,
  :meth:`repro.asm.machine.AsmMachine.lint_waive`); elaboration carries
  them to the flat design with their paths prefixed per occurrence;
* **config** -- a :class:`LintConfig` can disable whole rules or add
  extra waiver patterns for one run.

Waived diagnostics stay in the report (flagged, with the justification)
but do not count toward the exit code -- the same contract as a
``// lint_off`` pragma in a conventional HDL linter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Optional

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "Waiver",
    "Diagnostic",
    "LintConfig",
    "LintReport",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 2, WARNING: 1, INFO: 0}


@dataclass(frozen=True)
class Waiver:
    """One suppression: a rule id, a location glob and a justification."""

    rule: str
    pattern: str
    reason: str

    def matches(self, rule: str, location: str) -> bool:
        """True when this waiver suppresses ``rule`` at ``location``."""
        if self.rule != "*" and self.rule != rule:
            return False
        return fnmatchcase(location, self.pattern)


@dataclass
class Diagnostic:
    """One finding of one rule at one location."""

    rule: str
    severity: str
    location: str
    message: str
    fix_hint: str = ""
    waived: bool = False
    waived_reason: str = ""

    def render(self) -> str:
        """One-line human-readable form."""
        flag = " [waived]" if self.waived else ""
        hint = f"  (fix: {self.fix_hint})" if self.fix_hint else ""
        return (
            f"{self.severity:<7} {self.rule:<22} {self.location}: "
            f"{self.message}{hint}{flag}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "waived": self.waived,
            "waived_reason": self.waived_reason,
        }


@dataclass
class LintConfig:
    """Per-run lint configuration.

    ``disabled_rules`` turns rules off entirely; ``waivers`` adds run-level
    suppressions on top of the models' inline ones; ``extra_sinks`` are
    flat net paths treated as observation points by the unused-net rule
    (e.g. the nets a model-checking labeling reads); ``asm_state_cap``
    bounds the finite-domain state sweep of the ASM rules.
    """

    disabled_rules: frozenset = frozenset()
    waivers: tuple = ()
    extra_sinks: tuple = ()
    asm_state_cap: int = 512

    def is_disabled(self, rule: str) -> bool:
        return rule in self.disabled_rules


class LintReport:
    """All diagnostics of a lint run plus per-pass timing."""

    def __init__(self, subject: str = "design"):
        self.subject = subject
        self.diagnostics: list[Diagnostic] = []
        self.pass_times: dict[str, float] = {}
        self.pass_order: list[str] = []
        #: per-pass counters beyond wall time (``analysis_cache_hits``)
        self.pass_stats: dict[str, dict] = {}

    # ------------------------------------------------------------------
    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, other: "LintReport") -> None:
        """Merge another report (diagnostics and timings) into this one."""
        self.diagnostics.extend(other.diagnostics)
        for name in other.pass_order:
            if name not in self.pass_times:
                self.pass_order.append(name)
                self.pass_times[name] = other.pass_times[name]
            else:
                self.pass_times[name] += other.pass_times[name]
        for name, stats in other.pass_stats.items():
            mine = self.pass_stats.setdefault(name, {})
            for key, value in stats.items():
                mine[key] = mine.get(key, 0) + value

    # ------------------------------------------------------------------
    def active(self, severity: Optional[str] = None) -> list[Diagnostic]:
        """Unwaived diagnostics, optionally filtered by severity."""
        found = [d for d in self.diagnostics if not d.waived]
        if severity is not None:
            found = [d for d in found if d.severity == severity]
        return found

    def counts(self) -> dict[str, int]:
        """Diagnostic counts: per active severity plus waived."""
        result = {ERROR: 0, WARNING: 0, INFO: 0, "waived": 0}
        for diag in self.diagnostics:
            if diag.waived:
                result["waived"] += 1
            else:
                result[diag.severity] += 1
        return result

    @property
    def ok(self) -> bool:
        """True when no unwaived error-severity finding exists."""
        return not self.active(ERROR)

    def exit_code(self) -> int:
        """Process exit code for CI: 1 on any unwaived error."""
        return 0 if self.ok else 1

    # ------------------------------------------------------------------
    def render(self, show_waived: bool = True) -> str:
        """The text report."""
        lines = [f"lint report for {self.subject}:"]
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (d.waived, -_SEVERITY_RANK[d.severity], d.rule,
                           d.location),
        )
        for diag in ordered:
            if diag.waived and not show_waived:
                continue
            lines.append("  " + diag.render())
            if diag.waived and diag.waived_reason:
                lines.append(f"          waived: {diag.waived_reason}")
        counts = self.counts()
        lines.append(
            f"  {counts[ERROR]} errors, {counts[WARNING]} warnings, "
            f"{counts[INFO]} notes, {counts['waived']} waived"
        )
        if self.pass_order:
            times = ", ".join(
                f"{name} {self.pass_times[name] * 1e3:.1f}ms"
                + self._render_stats(name)
                for name in self.pass_order
            )
            lines.append(f"  passes: {times}")
        return "\n".join(lines)

    def _render_stats(self, name: str) -> str:
        hits = self.pass_stats.get(name, {}).get("analysis_cache_hits", 0)
        return f" ({hits} cache hits)" if hits else ""

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": self.counts(),
            "pass_times": {
                name: self.pass_times[name] for name in self.pass_order
            },
            "pass_stats": {
                name: dict(stats)
                for name, stats in self.pass_stats.items()
            },
            "ok": self.ok,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self):
        counts = self.counts()
        return (
            f"LintReport({self.subject!r}, errors={counts[ERROR]}, "
            f"warnings={counts[WARNING]}, waived={counts['waived']})"
        )
