"""SAT-backed semantic lint passes.

The foundation passes of :mod:`repro.lint.analyses` are syntactic: they
fold constants, walk dataflow edges and compute cones.  The passes here
re-ask the interesting questions *semantically*, through the CDCL engine
of :mod:`repro.sat`, and certify every negative answer with a checked
UNSAT proof:

* :class:`SatConstNetPass` -- combinational nets provably constant over
  **every** state and input (catching reconvergent cancellation that
  value-propagation misses), plus tristate drivers whose enable is
  provably never asserted;
* :class:`SatPslVacuityPass` / :class:`SatPslTautologyPass` -- the PSL
  vacuity and tautology rules with the BDD deciders swapped for the
  solver (same rule ids, so reports keep their shape): guard
  satisfiability becomes a certified SAT query, FAIL-reachability
  becomes a bounded unrolling of the checker automaton to its diameter;
* :class:`AsmSatRequirePass` -- re-derives the dead-``require`` verdict
  of :class:`~repro.lint.asm_rules.AsmRulesPass` as an UNSAT certificate
  over the swept reachable states (the sweep's per-state enablement
  facts become unit clauses; a dead guard makes "some selected state
  enables the rule" refutable);
* :class:`CecPass` -- runs the combinational equivalence checker over
  the elaborated design and reports any codegen-backend divergence.

All of these are opt-in: ``default_rtl_passes(semantic=True)`` /
``lint_la1(semantic=True)`` / ``python -m repro.lint --semantic`` extend
the standard pipeline with them.
"""

from __future__ import annotations

from itertools import product
from typing import Optional

from ..psl.ast import (
    And,
    Atom,
    BoolExpr,
    ConstB,
    Iff,
    Implies,
    Not,
    Or,
    PslError,
)
from ..psl.automata import CheckerAutomaton
from ..rtl.hdl import Const, Ref
from ..sat.cec import check_equivalence
from ..sat.cnf import Tseitin
from ..sat.drat import check_proof, check_unsat
from ..sat.encode import NetlistEncoder
from ..sat.solver import Solver
from .asm_rules import sweep_states
from .diagnostics import ERROR
from .manager import LintContext, Pass
from .psl_rules import PslTautologyPass, PslVacuityPass, sere_can_match

__all__ = [
    "bool_to_cnf",
    "sat_satisfiable",
    "SatConstNetPass",
    "SatPslVacuityPass",
    "SatPslTautologyPass",
    "AsmSatRequirePass",
    "CecPass",
]


# ----------------------------------------------------------------------
# PSL boolean layer -> CNF
# ----------------------------------------------------------------------
def bool_to_cnf(t: Tseitin, expr: BoolExpr, atoms: dict) -> int:
    """Encode a boolean-layer expression as a literal (atoms are
    allocated on first use into ``atoms``)."""
    if isinstance(expr, Atom):
        lit = atoms.get(expr.name)
        if lit is None:
            lit = t.new_var()
            atoms[expr.name] = lit
        return lit
    if isinstance(expr, ConstB):
        return t.const(expr.value)
    if isinstance(expr, Not):
        return -bool_to_cnf(t, expr.a, atoms)
    if isinstance(expr, (And, Or, Implies, Iff)):
        a = bool_to_cnf(t, expr.a, atoms)
        b = bool_to_cnf(t, expr.b, atoms)
        if isinstance(expr, And):
            return t.and_(a, b)
        if isinstance(expr, Or):
            return t.or_(a, b)
        if isinstance(expr, Implies):
            return t.or_(-a, b)
        return t.xnor_(a, b)
    raise PslError(f"cannot encode {expr!r} as CNF")


def sat_satisfiable(expr: BoolExpr) -> bool:
    """SAT-decided satisfiability of a boolean-layer expression; an
    UNSAT verdict is validated against the solver's own proof log."""
    solver = Solver()
    t = Tseitin(solver)
    lit = bool_to_cnf(t, expr, {})
    if solver.solve([lit]):
        return True
    check_unsat(solver, (lit,))
    return False


# ----------------------------------------------------------------------
# RTL: semantically constant nets, dead tristate drivers
# ----------------------------------------------------------------------
class SatConstNetPass(Pass):
    """Nets constant for every state/input; never-enabled drivers.

    Encodes one settle frame of the flat design over fully free register
    and input literals, then asks the solver, bit by bit, whether any
    assignment can flip the net.  This subsumes the value-propagation
    rule (``const-comb``): reconvergent logic like ``x & ~x`` buried
    behind muxes folds for no single known value but is still UNSAT to
    flip.  Nets the ``constprop`` pass already proved constant are
    skipped, so every finding here is one the syntactic pass missed.

    Rule ids: ``sat-const-net``, ``sat-dead-driver``.
    """

    name = "sat-const"
    requires = ("constprop",)

    def __init__(self, check_proofs: bool = True):
        self.check_proofs = check_proofs

    def run(self, ctx: LintContext) -> Optional[dict]:
        if ctx.design is None:
            return None
        design = ctx.design
        known = ctx.result("constprop") or {}
        solver = Solver()
        t = Tseitin(solver)
        enc = NetlistEncoder(design, t)
        frame = enc.frame(
            enc.free_state(), enc.free_inputs(),
            0 if enc.multi_clock else None,
        )

        # Every SAT answer yields a full model; bits observed at both
        # values across accumulated models are disproved for free, so a
        # surviving candidate costs exactly one opposite-polarity solve.
        # monitor fire nets are *supposed* to be provably 0 on correct
        # hardware -- that is the assertion holding, not dead logic;
        # resolve through Ref aliases so the checker-internal net the
        # top-level fire alias points at is excluded too
        fire_paths = set()
        for monitor in design.monitors:
            flat = monitor.fire
            fire_paths.add(flat.path)
            while isinstance(flat.expr, Ref):
                flat = flat.scope[flat.expr.net]
                fire_paths.add(flat.path)
        nets = [
            flat for flat in design.comb_order
            if flat.path not in known
            and flat.path not in fire_paths
            and not isinstance(flat.expr, (Const, Ref))
        ]
        enables = []
        for flat in design.comb_order:
            for index, driver in enumerate(flat.tristate or ()):
                enables.append((flat, index, enc._encode_expr(
                    driver.enable, flat.scope, frame.bits
                )[0]))
        watch = sorted({
            abs(lit)
            for flat in nets for lit in frame.bits[flat]
            if t.is_const(lit) is None
        } | {
            abs(lit) for __, __, lit in enables
            if t.is_const(lit) is None
        })
        seen: dict = {}         # var -> first observed value
        varies: set = set()     # vars observed at both values

        def absorb_model() -> None:
            for var in watch:
                if var in varies:
                    continue
                value = solver.model_value(var)
                if seen.setdefault(var, value) is not value:
                    varies.add(var)

        solves = 1
        if not solver.solve([]):
            return None         # free frame UNSAT: encoder bug upstream
        absorb_model()

        def proved_value(lit: int) -> Optional[int]:
            """0/1 when the literal is semantically constant."""
            nonlocal solves
            const = t.is_const(lit)
            if const is not None:
                return int(const)
            if abs(lit) in varies:
                return None
            candidate = seen[abs(lit)] is (lit > 0)
            solves += 1
            if solver.solve([-lit if candidate else lit]):
                absorb_model()
                return None
            return int(candidate)

        proved_const: dict = {}
        for flat in nets:
            bits = frame.bits[flat]
            value = 0
            structural = True
            for i, lit in enumerate(bits):
                if t.is_const(lit) is None:
                    structural = False
                bit = proved_value(lit)
                if bit is None:
                    value = None
                    break
                value |= bit << i
            if value is None or structural:
                # fully folded vectors are constprop/Tseitin territory;
                # only report what needed an actual proof
                continue
            proved_const[flat.path] = value
            ctx.emit(
                "sat-const-net", ERROR, flat.path,
                f"net is provably {value} for every state and input "
                "(SAT-certified dead logic)",
                fix_hint=f"replace the cone with the constant {value}",
            )

        dead_drivers: list = []
        for flat, index, enable in enables:
            if proved_value(enable) != 0:
                continue
            dead_drivers.append((flat.path, index))
            ctx.emit(
                "sat-dead-driver", ERROR, flat.path,
                f"tristate driver {index} is provably never enabled "
                "(its enable is unsatisfiable)",
                fix_hint="remove the driver or fix its enable",
            )

        proof_lemmas = None
        if self.check_proofs and solver.proof:
            proof_lemmas = check_proof(solver.clauses, solver.proof)
        return {
            "proved_const": proved_const,
            "dead_drivers": dead_drivers,
            "solves": solves,
            "proof_lemmas": proof_lemmas,
        }


# ----------------------------------------------------------------------
# PSL: solver-backed vacuity and tautology
# ----------------------------------------------------------------------
class SatPslVacuityPass(PslVacuityPass):
    """The vacuity rule with SAT deciders (same ``psl-vacuity`` id)."""

    _satisfiable = staticmethod(sat_satisfiable)

    @staticmethod
    def _sere_can_match(sere) -> bool:
        return sere_can_match(sere, decider=sat_satisfiable)


class SatPslTautologyPass(PslTautologyPass):
    """The tautology rule decided by bounded unrolling.

    Instead of trusting graph reachability over the determinised table,
    the checker automaton is unrolled symbolically (free atom literals
    per frame) to its diameter: ``num_states`` frames reach every
    reachable automaton state, so if no frame's fail condition is
    satisfiable the property can never fail on any trace.  The all-UNSAT
    verdict is validated against the proof log before "tautology" is
    reported.
    """

    @staticmethod
    def _can_fail(checker: CheckerAutomaton) -> bool:
        solver = Solver()
        t = Tseitin(solver)
        width = (
            max(1, (checker.num_states - 1).bit_length())
            if checker.num_states > 1 else 1
        )
        state = [t.FALSE] * width      # binary code of initial state 0
        for __ in range(checker.num_states):
            atom_lits = [t.new_var() for __ in checker.atoms]
            fail, state = _automaton_step(
                t, checker, width, state, atom_lits
            )
            if fail == t.TRUE:
                return True
            if fail != t.FALSE and solver.solve([fail]):
                return True
        if solver.proof:
            check_proof(solver.clauses, solver.proof)
        return False


def _automaton_step(t: Tseitin, checker: CheckerAutomaton, width: int,
                    state_lits, atom_lits):
    """One symbolic frame of the checker automaton (the standalone
    analogue of ``SatModelChecker.embed_automaton_step``)."""
    keys = list(product((False, True), repeat=len(checker.atoms)))
    key_lits = {
        key: t.and_many([
            lit if value else -lit
            for lit, value in zip(atom_lits, key)
        ])
        for key in keys
    }
    fail_terms = []
    next_terms: list = [[] for __ in range(width)]
    for src in range(checker.num_states):
        src_eq = t.and_many([
            bit if (src >> i) & 1 else -bit
            for i, bit in enumerate(state_lits)
        ])
        if src_eq == t.FALSE:
            continue
        for key in keys:
            cond = t.and_(src_eq, key_lits[key])
            if cond == t.FALSE:
                continue
            dst = checker.transition(src, key)
            if dst == CheckerAutomaton.FAIL_STATE:
                fail_terms.append(cond)
                continue
            for i in range(width):
                if (dst >> i) & 1:
                    next_terms[i].append(cond)
    return t.or_many(fail_terms), [t.or_many(terms) for terms in next_terms]


# ----------------------------------------------------------------------
# ASM: certified dead-require verdicts
# ----------------------------------------------------------------------
class AsmSatRequirePass(Pass):
    """UNSAT certificates for the sweep's dead-``require`` findings.

    For each rule the bounded sweep never saw enabled, the swept
    enablement facts become unit clauses (one selector-guarded variable
    per snapshot) and the solver is asked for a snapshot in which the
    rule fires.  UNSAT -- validated against the proof log -- certifies
    the heuristic verdict; a SAT answer means sweep and certificate
    disagree, which is reported as an error (it indicates a bug in one
    of the two engines, not in the model).
    """

    name = "asm-sat-require"
    requires = ("asm-rules",)

    def run(self, ctx: LintContext) -> Optional[dict]:
        machine = ctx.machine
        summary = ctx.results.get("asm-rules")
        if machine is None or summary is None:
            return None
        snapshots, capped = sweep_states(machine, ctx.config.asm_state_cap)
        enabled_names = set(summary["rules_enabled"])
        dead = [r.name for r in machine.rules
                if r.name not in enabled_names]
        if not dead:
            return {"certified": [], "states": len(snapshots),
                    "capped": capped, "proof_lemmas": 0}

        # rule -> set of snapshot indexes where it is enabled
        saved = machine.snapshot()
        table: dict = {name: set() for name in dead}
        for index, snapshot in enumerate(snapshots):
            machine.restore(snapshot)
            for action in machine.enabled_actions():
                hits = table.get(action.rule.name)
                if hits is not None:
                    hits.add(index)
        machine.restore(saved)

        solver = Solver()
        t = Tseitin(solver)
        count = len(snapshots)
        width = max(1, (count - 1).bit_length())
        certified: list = []
        lemmas = 0
        for name in dead:
            sel = [t.new_var() for __ in range(width)]
            for code in range(count, 1 << width):
                solver.add_clause([
                    -bit if (code >> i) & 1 else bit
                    for i, bit in enumerate(sel)
                ])
            terms = []
            for index in range(count):
                fact = t.new_var()      # "rule enabled in snapshot index"
                solver.add_clause(
                    (fact,) if index in table[name] else (-fact,)
                )
                sel_eq = t.and_many([
                    bit if (index >> i) & 1 else -bit
                    for i, bit in enumerate(sel)
                ])
                terms.append(t.and_(sel_eq, fact))
            fires = t.or_many(terms)
            if fires != t.FALSE and solver.solve([fires]):
                ctx.emit(
                    "asm-sat-require", ERROR,
                    f"{machine.name}.{name}",
                    "SAT certificate disagrees with the sweep: a swept "
                    "state enabling the rule exists after all",
                    fix_hint="report this; the sweep and the certificate "
                             "cannot both be right",
                )
                continue
            if fires != t.FALSE:
                lemmas = check_unsat(solver, (fires,))
            certified.append(name)
        return {
            "certified": certified,
            "states": len(snapshots),
            "capped": capped,
            "proof_lemmas": lemmas,
        }


# ----------------------------------------------------------------------
# RTL: codegen equivalence
# ----------------------------------------------------------------------
class CecPass(Pass):
    """Prove the compiled and bitpar codegens equal the netlist.

    Runs the full combinational equivalence check of
    :func:`repro.sat.cec.check_equivalence` inside the lint pipeline and
    turns any mismatch into a ``backend-mismatch`` error carrying the
    separating state/input assignment.
    """

    name = "rtl-cec"

    def __init__(self, check_proofs: bool = False):
        self.check_proofs = check_proofs

    def run(self, ctx: LintContext):
        if ctx.design is None:
            return None
        report = check_equivalence(
            ctx.design, check_proofs=self.check_proofs
        )
        for mismatch in report.mismatches:
            where = (f"{mismatch.kind}@{mismatch.edge}"
                     if mismatch.edge else mismatch.kind)
            ctx.emit(
                "backend-mismatch", ERROR,
                f"{mismatch.path}[{mismatch.bit}]",
                f"{mismatch.backend} backend diverges from the netlist "
                f"({where}) under state {mismatch.state!r}, inputs "
                f"{mismatch.inputs!r}",
                fix_hint="the codegen lowering of this cone is wrong; "
                         "reduce with the separating assignment",
            )
        return report
