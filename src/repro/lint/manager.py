"""The pass manager: dependency-ordered analyses over the three IRs.

Modeled on the pass pipelines of RTL instrumentation tools (one pass =
one analysis or one diagnostic rule; passes declare what they ``requires``
and read predecessors' results from a shared context).  The manager

* resolves the declared dependency graph to a run order (a pass may be
  registered in any order; cycles and unknown requirements are errors),
* runs each pass once, storing its return value under its name for
  downstream passes,
* records per-pass wall time into the report, and
* routes diagnostics through the waiver table before they land.

The context carries whichever IRs a run has -- an elaborated
:class:`~repro.rtl.netlist.FlatDesign` (plus its source module tree), a
named PSL property suite, an :class:`~repro.asm.machine.AsmMachine` --
so one pipeline can mix RTL, PSL and ASM rules.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from .diagnostics import Diagnostic, LintConfig, LintReport, Waiver

__all__ = ["LintError", "Pass", "LintContext", "PassManager"]


class LintError(Exception):
    """Raised on pass-pipeline misuse (missing deps, cycles, name clash)."""


class Pass:
    """Base class of analyses and rules.

    ``name`` identifies the pass and keys its result in the context;
    ``requires`` names passes that must have run first.  Analysis passes
    return a result object; rule passes emit diagnostics through
    :meth:`LintContext.emit` (and may also return data).
    """

    name = "pass"
    requires: tuple = ()

    def run(self, ctx: "LintContext"):  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"


class LintContext:
    """Shared state of one pipeline run."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        report: Optional[LintReport] = None,
        top=None,
        design=None,
        properties: Optional[Sequence[tuple]] = None,
        machine=None,
    ):
        self.config = config or LintConfig()
        self.report = report or LintReport()
        #: the source RtlModule tree (pre-elaboration), if any
        self.top = top
        #: the elaborated FlatDesign, if elaboration succeeded
        self.design = design
        #: [(name, Property)] pairs, if PSL rules run
        self.properties = list(properties or [])
        #: the AsmMachine, if ASM rules run
        self.machine = machine
        self.results: dict[str, object] = {}
        self._waivers: list[Waiver] = [Waiver(*w) if not isinstance(w, Waiver)
                                       else w for w in self.config.waivers]
        for source in (design, machine):
            for entry in getattr(source, "lint_waivers", ()) or ():
                self._waivers.append(
                    entry if isinstance(entry, Waiver) else Waiver(*entry)
                )

    # ------------------------------------------------------------------
    def result(self, name: str):
        """A predecessor pass's result (the pass must have run)."""
        try:
            return self.results[name]
        except KeyError:
            raise LintError(
                f"pass result {name!r} not available; declare it in "
                "`requires`"
            ) from None

    def add_waivers(self, waivers) -> None:
        """Append waivers discovered mid-run (e.g. per-occurrence ones)."""
        for entry in waivers:
            self._waivers.append(
                entry if isinstance(entry, Waiver) else Waiver(*entry)
            )

    def emit(
        self,
        rule: str,
        severity: str,
        location: str,
        message: str,
        fix_hint: str = "",
    ) -> Optional[Diagnostic]:
        """File a diagnostic, applying disabled-rule and waiver filters.

        When the located net carries a frontend source location (a
        design-language elaboration), the message is suffixed with it so
        the diagnostic points at the frontend line, not just the
        generated net name."""
        if self.config.is_disabled(rule):
            return None
        if self.design is not None:
            flat = self.design.nets.get(location)
            src_loc = getattr(flat, "src_loc", None)
            if src_loc:
                message = f"{message} [from {src_loc}]"
        diag = Diagnostic(rule, severity, location, message, fix_hint)
        for waiver in self._waivers:
            if waiver.matches(rule, location):
                diag.waived = True
                diag.waived_reason = waiver.reason
                break
        self.report.add(diag)
        return diag


class PassManager:
    """Registers passes, resolves dependencies, runs them in order."""

    def __init__(self, passes: Optional[Sequence[Pass]] = None):
        self._passes: dict[str, Pass] = {}
        self.order: list[str] = []
        for p in passes or ():
            self.register(p)

    def register(self, p: Pass) -> Pass:
        if p.name in self._passes:
            raise LintError(f"duplicate pass name {p.name!r}")
        self._passes[p.name] = p
        return p

    # ------------------------------------------------------------------
    def _resolve_order(self) -> list[Pass]:
        order: list[Pass] = []
        state: dict[str, int] = {}  # 0 new / 1 visiting / 2 done

        def visit(name: str, chain: tuple) -> None:
            mark = state.get(name, 0)
            if mark == 2:
                return
            if mark == 1:
                cycle = " -> ".join(chain + (name,))
                raise LintError(f"pass dependency cycle: {cycle}")
            if name not in self._passes:
                raise LintError(
                    f"pass {chain[-1]!r} requires unknown pass {name!r}"
                )
            state[name] = 1
            for dep in self._passes[name].requires:
                visit(dep, chain + (name,))
            state[name] = 2
            order.append(self._passes[name])

        for name in self._passes:
            visit(name, ())
        return order

    @staticmethod
    def _cache_hits(ctx: LintContext) -> int:
        """Total memoized-analysis hits across shared analysis objects
        (any context result exposing a ``cache_hits`` counter)."""
        return sum(
            result.cache_hits
            for result in ctx.results.values()
            if hasattr(result, "cache_hits")
        )

    def run(self, ctx: LintContext) -> LintReport:
        """Run every registered pass in dependency order."""
        self.order = []
        for p in self._resolve_order():
            hits_before = self._cache_hits(ctx)
            start = time.perf_counter()
            ctx.results[p.name] = p.run(ctx)
            elapsed = time.perf_counter() - start
            self.order.append(p.name)
            ctx.report.pass_order.append(p.name)
            ctx.report.pass_times[p.name] = (
                ctx.report.pass_times.get(p.name, 0.0) + elapsed
            )
            stats = ctx.report.pass_stats.setdefault(
                p.name, {"analysis_cache_hits": 0}
            )
            stats["analysis_cache_hits"] += (
                self._cache_hits(ctx) - hits_before
            )
        return ctx.report
