"""``repro.lint`` -- pass-manager static analysis over the three IRs.

A veripass-style pipeline: every analysis and diagnostic rule is a
:class:`~repro.lint.manager.Pass` with declared dependencies, run once in
dependency order by the :class:`~repro.lint.manager.PassManager`, sharing
results (dataflow graph, constant propagation, cones of influence)
through a :class:`~repro.lint.manager.LintContext` and timed per pass.

Three IRs are covered:

* **RTL** -- the :class:`~repro.rtl.hdl.RtlModule` tree and its
  elaborated :class:`~repro.rtl.netlist.FlatDesign` (undriven nets,
  read-before-write registers, width truncation, static tristate
  conflicts, unused nets, constant-foldable logic, registers outside
  every monitor's cone of influence, unsynchronized K/K# crossings);
* **PSL** -- the property suite (vacuous antecedents via the BDD engine,
  tautological checkers);
* **ASM** -- the abstract state machine (dead ``require`` guards,
  conflicting update sets).

The cone-of-influence analysis is shared with :mod:`repro.mc`, which uses
:func:`~repro.lint.coi.reduce_design` to prune the netlist to a
property's cone before building the transition relation.

Run ``python -m repro.lint`` for the CLI (text or JSON report; exit code
1 on any unwaived error, for CI).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..rtl.hdl import HdlError, RtlModule
from ..rtl.netlist import FlatDesign, elaborate
from .analyses import (
    ConstPropPass,
    CoiAnalysis,
    CoiPass,
    DataflowGraph,
    DataflowPass,
    fold_expr,
    pure_fold,
)
from .asm_rules import AsmRulesPass, sweep_states
from .coi import cone_of_influence, net_reads, reduce_design
from .diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    LintConfig,
    LintReport,
    Waiver,
)
from .manager import LintContext, LintError, Pass, PassManager
from .psl_rules import (
    PslTautologyPass,
    PslVacuityPass,
    satisfiable,
    sere_can_match,
)
from .rtl_rules import (
    CdcPass,
    ModuleStructurePass,
    NetlistRulesPass,
    ObservabilityPass,
)
from .sat_rules import (
    AsmSatRequirePass,
    CecPass,
    SatConstNetPass,
    SatPslTautologyPass,
    SatPslVacuityPass,
    sat_satisfiable,
)

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "Diagnostic",
    "Waiver",
    "LintConfig",
    "LintReport",
    "LintError",
    "Pass",
    "LintContext",
    "PassManager",
    "DataflowGraph",
    "DataflowPass",
    "ConstPropPass",
    "CoiAnalysis",
    "CoiPass",
    "ModuleStructurePass",
    "NetlistRulesPass",
    "ObservabilityPass",
    "CdcPass",
    "PslVacuityPass",
    "PslTautologyPass",
    "AsmRulesPass",
    "SatConstNetPass",
    "SatPslVacuityPass",
    "SatPslTautologyPass",
    "AsmSatRequirePass",
    "CecPass",
    "fold_expr",
    "pure_fold",
    "satisfiable",
    "sat_satisfiable",
    "sere_can_match",
    "sweep_states",
    "net_reads",
    "cone_of_influence",
    "reduce_design",
    "default_rtl_passes",
    "lint_design",
    "lint_properties",
    "lint_machine",
    "lint_la1",
]


def default_rtl_passes(semantic: bool = False) -> list[Pass]:
    """The full RTL pipeline: foundation analyses plus every rule.

    ``semantic=True`` appends the SAT-backed passes (proved-constant
    nets, dead tristate drivers, codegen equivalence).
    """
    passes: list[Pass] = [
        DataflowPass(),
        ConstPropPass(),
        CoiPass(),
        ModuleStructurePass(),
        NetlistRulesPass(),
        ObservabilityPass(),
        CdcPass(),
    ]
    if semantic:
        passes += [SatConstNetPass(), CecPass()]
    return passes


def lint_design(
    top: RtlModule,
    config: Optional[LintConfig] = None,
    design: Optional[FlatDesign] = None,
    subject: Optional[str] = None,
    semantic: bool = False,
) -> LintReport:
    """Lint an RTL module tree.

    Elaborates ``top`` unless a flat design is supplied; an elaboration
    failure becomes an ``elaboration-error`` diagnostic (the structural
    module-tree rules still run, usually pinpointing the cause).
    """
    report = LintReport(subject or top.name)
    failure = None
    if design is None:
        try:
            design = elaborate(top)
        except HdlError as exc:
            failure = str(exc)
    ctx = LintContext(config=config, report=report, top=top, design=design)
    if failure is not None:
        ctx.emit(
            "elaboration-error", ERROR, top.name,
            f"design does not elaborate: {failure}",
        )
    PassManager(default_rtl_passes(semantic=semantic)).run(ctx)
    return report


def lint_properties(
    properties: Sequence[tuple],
    config: Optional[LintConfig] = None,
    subject: str = "properties",
    semantic: bool = False,
) -> LintReport:
    """Lint a named PSL property suite (``[(name, Property), ...]``).

    ``semantic=True`` swaps the BDD deciders for the proof-logging SAT
    engine (same rule ids, certified verdicts).
    """
    report = LintReport(subject)
    ctx = LintContext(config=config, report=report, properties=properties)
    if semantic:
        passes = [SatPslVacuityPass(), SatPslTautologyPass()]
    else:
        passes = [PslVacuityPass(), PslTautologyPass()]
    PassManager(passes).run(ctx)
    return report


def lint_machine(
    machine, config: Optional[LintConfig] = None,
    semantic: bool = False,
) -> LintReport:
    """Lint an :class:`~repro.asm.machine.AsmMachine`."""
    report = LintReport(machine.name)
    ctx = LintContext(config=config, report=report, machine=machine)
    passes: list[Pass] = [AsmRulesPass()]
    if semantic:
        passes.append(AsmSatRequirePass())
    PassManager(passes).run(ctx)
    return report


def lint_la1(
    banks: int = 2,
    config: Optional[LintConfig] = None,
    parity_checks: bool = True,
    semantic: bool = False,
) -> LintReport:
    """Lint the full shipped LA-1 stack at one bank count.

    Covers the OVL-instrumented RTL top (simulation scale), the device
    PSL property suite and the ASM model, merged into one report.  The
    RTL run declares the model-checking label nets as observation points
    so the labeling taps are not flagged as unused.
    """
    from ..core.asm_model import La1AsmConfig, build_la1_asm
    from ..core.ovl_bindings import build_la1_top_with_ovl
    from ..core.properties import device_property_suite, rtl_labels
    from ..core.spec import La1Config

    la1 = La1Config(banks=banks, beat_bits=16, addr_bits=4)
    top = build_la1_top_with_ovl(la1, parity_checks=parity_checks)
    sinks = tuple(
        path for path, __ in rtl_labels(top.name, banks).values()
    )
    base = config or LintConfig()
    rtl_config = LintConfig(
        disabled_rules=base.disabled_rules,
        waivers=base.waivers,
        extra_sinks=tuple(base.extra_sinks) + sinks,
        asm_state_cap=base.asm_state_cap,
    )
    report = lint_design(top, config=rtl_config,
                         subject=f"la1[{banks} banks]",
                         semantic=semantic)
    report.extend(
        lint_properties(device_property_suite(banks), config=base,
                        semantic=semantic)
    )
    report.extend(
        lint_machine(build_la1_asm(La1AsmConfig(banks=banks)), config=base,
                     semantic=semantic)
    )
    return report
