"""ASM model diagnostics: dead ``require`` guards and conflicting updates.

Both rules run over a bounded breadth-first sweep of the machine's
reachable states (interleaving semantics, every enabled action explored,
capped by :attr:`~repro.lint.diagnostics.LintConfig.asm_state_cap`):

* a rule whose ``require`` guard never holds for any argument combination
  in any swept state is dead -- the conformance and model-checking runs
  silently never exercise it;
* two rules enabled in the same state whose update sets assign different
  values to one location would collide under ASM parallel (``do in
  parallel``) composition -- the update-consistency violation the paper's
  ASM semantics forbids.  An action whose effect itself raises
  :class:`~repro.asm.machine.UpdateConflict` is reported the same way.

Rule ids
--------
``asm-unsat-require``        rule enabled in no swept reachable state
``asm-conflicting-updates``  co-enabled rules write one location differently
"""

from __future__ import annotations

from itertools import combinations

from ..asm.machine import AsmError, AsmMachine
from .diagnostics import ERROR
from .manager import LintContext, Pass

__all__ = ["AsmRulesPass", "sweep_states"]


def sweep_states(machine: AsmMachine, cap: int):
    """Bounded BFS over reachable snapshots.

    Returns ``(snapshots, capped)`` -- the visited snapshot list in BFS
    order and whether the cap cut the sweep short.
    """
    saved = machine.snapshot()
    machine.reset()
    root = machine.snapshot()
    seen = {root}
    order = [root]
    frontier = [root]
    capped = False
    while frontier:
        snapshot = frontier.pop(0)
        machine.restore(snapshot)
        for action in machine.enabled_actions():
            machine.restore(snapshot)
            try:
                updates = machine.compute_updates(action)
            except AsmError:
                continue  # reported by the rules pass, not the sweep
            machine.state.update(updates)
            succ = machine.snapshot()
            if succ not in seen:
                if len(seen) >= cap:
                    capped = True
                    continue
                seen.add(succ)
                order.append(succ)
                frontier.append(succ)
    machine.restore(saved)
    return order, capped


class AsmRulesPass(Pass):
    """Dead-rule and update-conflict detection over the state sweep."""

    name = "asm-rules"

    def run(self, ctx: LintContext):
        machine = ctx.machine
        if machine is None:
            return None
        cap = ctx.config.asm_state_cap
        snapshots, capped = sweep_states(machine, cap)

        saved = machine.snapshot()
        ever_enabled: set[str] = set()
        conflicts_seen: set[tuple] = set()
        broken_effects: set[str] = set()
        for snapshot in snapshots:
            machine.restore(snapshot)
            actions = machine.enabled_actions()
            updates = []
            for action in actions:
                ever_enabled.add(action.rule.name)
                machine.restore(snapshot)
                try:
                    updates.append((action, machine.compute_updates(action)))
                except AsmError as exc:
                    if action.rule.name not in broken_effects:
                        broken_effects.add(action.rule.name)
                        ctx.emit(
                            "asm-conflicting-updates", ERROR,
                            f"{machine.name}.{action.rule.name}",
                            f"action {action.label} cannot compute a "
                            f"consistent update set: {exc}",
                            fix_hint="make the rule's effect produce one "
                                     "value per location",
                        )
            for (act_a, upd_a), (act_b, upd_b) in combinations(updates, 2):
                if act_a.rule is act_b.rule:
                    continue  # interleaved alternatives, never one step
                pair = tuple(sorted((act_a.rule.name, act_b.rule.name)))
                if pair in conflicts_seen:
                    continue
                clash = sorted(
                    var for var in upd_a.keys() & upd_b.keys()
                    if upd_a[var] != upd_b[var]
                )
                if clash:
                    conflicts_seen.add(pair)
                    ctx.emit(
                        "asm-conflicting-updates", ERROR,
                        f"{machine.name}.{pair[0]}+{pair[1]}",
                        f"co-enabled rules {pair[0]} and {pair[1]} write "
                        f"different values to {', '.join(clash)} "
                        f"(e.g. {act_a.label} vs {act_b.label}); parallel "
                        "composition would violate update consistency",
                        fix_hint="make the guards mutually exclusive or "
                                 "reconcile the update sets",
                    )
        machine.restore(saved)

        for rule in machine.rules:
            if rule.name in ever_enabled:
                continue
            scope = (f"the first {len(snapshots)} reachable states"
                     if capped else
                     f"all {len(snapshots)} reachable states")
            ctx.emit(
                "asm-unsat-require", ERROR,
                f"{machine.name}.{rule.name}",
                f"require guard holds for no argument combination in "
                f"{scope}; the rule is dead",
                fix_hint="fix the guard or delete the rule",
            )
        return {
            "states": len(snapshots),
            "capped": capped,
            "rules_enabled": sorted(ever_enabled),
        }
