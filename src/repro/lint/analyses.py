"""Foundation analysis passes: dataflow graph, constant propagation, COI.

These passes compute shared facts over an elaborated
:class:`~repro.rtl.netlist.FlatDesign`; the diagnostic rules of
:mod:`repro.lint.rtl_rules` declare them in ``requires`` and read the
results from the context.  All three skip cleanly (returning ``None``)
when elaboration failed and no flat design is available -- the
module-level structural rules still run in that case.
"""

from __future__ import annotations

from typing import Optional

from ..rtl.hdl import (
    BinOp,
    Concat,
    Const,
    Expr,
    Mux,
    Reduce,
    Ref,
    Slice,
    UnOp,
)
from ..rtl.netlist import FlatDesign, FlatNet
from .coi import cone_of_influence, net_reads
from .manager import LintContext, Pass

__all__ = [
    "DataflowGraph",
    "DataflowPass",
    "ConstPropPass",
    "CoiAnalysis",
    "CoiPass",
    "fold_expr",
    "pure_fold",
]


def _mask(width: int) -> int:
    return (1 << width) - 1


# ----------------------------------------------------------------------
# constant folding over Expr trees
# ----------------------------------------------------------------------
def fold_expr(expr: Expr, scope: dict, values: dict) -> Optional[int]:
    """Fold ``expr`` to a constant where possible.

    ``scope`` maps the expression's :class:`Net` references to
    :class:`FlatNet` objects; ``values`` maps flat paths to known constant
    values (absent / ``None`` means unknown).  Returns the folded value or
    ``None``.  Folding is partial: dominated operators collapse even with
    one unknown operand (``x & 0 == 0``, ``x | ones == ones``,
    ``mux(?, v, v) == v``).
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Ref):
        flat = scope[expr.net]
        return values.get(flat.path)
    if isinstance(expr, UnOp):
        a = fold_expr(expr.a, scope, values)
        return None if a is None else (~a) & _mask(expr.width)
    if isinstance(expr, BinOp):
        a = fold_expr(expr.a, scope, values)
        b = fold_expr(expr.b, scope, values)
        ones = _mask(expr.a.width)
        if expr.op == "and":
            if a == 0 or b == 0:
                return 0
            if a == ones:
                return b
            if b == ones:
                return a
        elif expr.op == "or":
            if a == ones or b == ones:
                return ones
            if a == 0:
                return b
            if b == 0:
                return a
        if a is None or b is None:
            return None
        if expr.op == "and":
            return a & b
        if expr.op == "or":
            return a | b
        if expr.op == "xor":
            return a ^ b
        if expr.op == "add":
            return (a + b) & _mask(expr.width)
        return 1 if a == b else 0  # eq
    if isinstance(expr, Mux):
        sel = fold_expr(expr.sel, scope, values)
        if sel is not None:
            arm = expr.if_true if sel else expr.if_false
            return fold_expr(arm, scope, values)
        t = fold_expr(expr.if_true, scope, values)
        f = fold_expr(expr.if_false, scope, values)
        return t if (t is not None and t == f) else None
    if isinstance(expr, Slice):
        a = fold_expr(expr.a, scope, values)
        return None if a is None else (a >> expr.lo) & _mask(expr.width)
    if isinstance(expr, Concat):
        value = 0
        shift = 0
        for part in expr.parts:
            v = fold_expr(part, scope, values)
            if v is None:
                return None
            value |= v << shift
            shift += part.width
        return value
    if isinstance(expr, Reduce):
        a = fold_expr(expr.a, scope, values)
        if a is None:
            return None
        if expr.op == "xor":
            return bin(a).count("1") & 1
        if expr.op == "or":
            return 1 if a else 0
        return 1 if a == _mask(expr.a.width) else 0
    raise TypeError(f"cannot fold {expr!r}")


def pure_fold(expr: Expr) -> Optional[int]:
    """Fold an expression using constants only (every net unknown)."""

    class _AnyScope(dict):
        def __getitem__(self, key):
            return key

    return fold_expr(expr, _AnyScope(), {})


# ----------------------------------------------------------------------
# dataflow graph
# ----------------------------------------------------------------------
class DataflowGraph:
    """Net-level fan-in / fan-out over a flat design.

    ``reads[p]`` is every flat path net ``p`` reads (combinational driver,
    tristate enables/values, register next-state); ``fanout[p]`` is the
    inverse.  ``comb_sources(flat)`` resolves the *register/input* sources
    reaching a register's next-state function through combinational
    logic -- the relation the clock-domain-crossing rule walks.
    """

    def __init__(self, design: FlatDesign):
        self.design = design
        self.reads: dict[str, set[str]] = {}
        self.fanout: dict[str, set[str]] = {p: set() for p in design.nets}
        for path, flat in design.nets.items():
            deps = {dep.path for dep in net_reads(flat)}
            self.reads[path] = deps
            for dep in deps:
                self.fanout[dep].add(path)

    def comb_sources(self, flat: FlatNet) -> set[str]:
        """Sequential sources (reg / input paths) reaching ``flat``'s
        next-state (for regs) or driver (for comb nets) through
        combinational logic."""
        design = self.design
        sources: set[str] = set()
        seen: set[str] = set()
        stack = list(self.reads[flat.path])
        while stack:
            path = stack.pop()
            if path in seen:
                continue
            seen.add(path)
            dep = design.nets[path]
            if dep.kind == "comb":
                stack.extend(self.reads[path])
            else:
                sources.add(path)
        return sources

    def resolve_alias(self, flat: FlatNet) -> FlatNet:
        """Follow pure pass-through nets (driver is exactly one ``Ref``)
        to the net they alias -- port bindings flatten into such chains."""
        seen = set()
        while (
            flat.kind == "comb"
            and isinstance(flat.expr, Ref)
            and not flat.tristate
            and flat.path not in seen
        ):
            seen.add(flat.path)
            flat = flat.scope[flat.expr.net]
        return flat


class DataflowPass(Pass):
    """Builds the :class:`DataflowGraph` shared by the netlist rules."""

    name = "dataflow"

    def run(self, ctx: LintContext):
        if ctx.design is None:
            return None
        return DataflowGraph(ctx.design)


class ConstPropPass(Pass):
    """Constant propagation over the flat design.

    Result: ``{flat_path: value}`` for every net proven constant.
    Registers participate through a fixpoint: a register stuck at its
    init value (its next-state folds to init assuming it holds init)
    becomes a known constant, which can collapse further logic.
    """

    name = "constprop"

    def run(self, ctx: LintContext):
        if ctx.design is None:
            return None
        design = ctx.design
        values: dict[str, int] = {}

        def fold_comb() -> None:
            for flat in design.comb_order:
                folded = self._fold_net(flat, values)
                if folded is not None:
                    values[flat.path] = folded
                else:
                    values.pop(flat.path, None)

        fold_comb()
        stuck: set[str] = set()
        # bounded fixpoint: each round can only add stuck registers
        for __ in range(len(design.regs) + 1):
            changed = False
            for reg in design.regs:
                if reg.path in stuck:
                    continue
                trial = dict(values)
                trial[reg.path] = reg.init
                nxt = fold_expr(reg.next_expr, reg.scope, trial)
                if nxt is not None and nxt == reg.init:
                    stuck.add(reg.path)
                    values[reg.path] = reg.init
                    changed = True
            if not changed:
                break
            fold_comb()
        self.stuck_regs = stuck
        ctx.results["constprop.stuck_regs"] = stuck
        return values

    @staticmethod
    def _fold_net(flat: FlatNet, values: dict) -> Optional[int]:
        if flat.tristate:
            # priority mux over drivers, undriven reads 0
            result = 0
            for driver in reversed(flat.tristate):
                enable = fold_expr(driver.enable, flat.scope, values)
                if enable is None:
                    return None
                if enable:
                    value = fold_expr(driver.value, flat.scope, values)
                    if value is None:
                        return None
                    result = value
            return result
        if flat.expr is None:
            return None
        return fold_expr(flat.expr, flat.scope, values)


class CoiAnalysis:
    """Cone-of-influence query object produced by :class:`CoiPass`.

    Cones are memoized per root set for the lifetime of the analysis --
    one :class:`~repro.lint.manager.PassManager` run shares a single
    instance through the context, so every later pass that asks for a
    cone already computed (the monitor cone above all) gets the cached
    set back.  ``cache_hits`` counts those saved recomputations; the
    manager folds it into the per-pass ``analysis_cache_hits`` stat.
    """

    def __init__(self, design: FlatDesign):
        self.design = design
        self._cones: dict[frozenset, set[str]] = {}
        self.cache_hits = 0

    def cone(self, roots) -> set[str]:
        """Backward closure from the given flat paths (memoized)."""
        key = frozenset(roots)
        cached = self._cones.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        cone = cone_of_influence(self.design, key)
        self._cones[key] = cone
        return cone

    def monitor_cone(self) -> Optional[set[str]]:
        """Union of every monitor's cone, or ``None`` without monitors."""
        if not self.design.monitors:
            return None
        roots = [mon.fire.path for mon in self.design.monitors]
        return self.cone(roots)


class CoiPass(Pass):
    """Exposes cone-of-influence queries to downstream rules."""

    name = "coi"
    requires = ("dataflow",)

    def run(self, ctx: LintContext):
        if ctx.design is None:
            return None
        return CoiAnalysis(ctx.design)
