"""Cone-of-influence computation and design reduction.

The cone of influence of a set of nets is the backward closure over both
combinational reads and register next-state reads: every net whose value
can ever affect one of the roots.  Two consumers:

* the observability rule of :mod:`repro.lint.rtl_rules` flags registers
  outside the union of all monitors' cones (state no assertion can see);
* :func:`reduce_design` prunes a :class:`~repro.rtl.netlist.FlatDesign`
  to the cone of a property's labelled nets before symbolic encoding --
  the reduction :mod:`repro.mc` applies by default.  Registers outside
  the cone cannot influence the labelled nets (their next-state
  functions read only in-cone nets, by closure), so dropping them
  preserves every verdict while shrinking the BDD state space.

A reduced design shares its :class:`~repro.rtl.netlist.FlatNet` objects
(and their simulator slot indices) with the original, so it is meant for
the symbolic encoder; simulate the original design instead.
"""

from __future__ import annotations

from typing import Iterable

from ..rtl.netlist import FlatDesign, FlatNet

__all__ = ["net_reads", "cone_of_influence", "reduce_design"]


def net_reads(flat: FlatNet) -> list[FlatNet]:
    """Every flat net ``flat`` reads: combinational driver or tristate
    enables/values for comb nets, the next-state expression for regs."""
    exprs = []
    if flat.expr is not None:
        exprs.append(flat.expr)
    if flat.next_expr is not None:
        exprs.append(flat.next_expr)
    if flat.tristate:
        for driver in flat.tristate:
            exprs.append(driver.enable)
            exprs.append(driver.value)
    reads: list[FlatNet] = []
    for expr in exprs:
        for net in expr.refs():
            reads.append(flat.scope[net])
    return reads


def cone_of_influence(design: FlatDesign, roots: Iterable[str]) -> set[str]:
    """Flat paths of every net that can influence any root net.

    ``roots`` are flat hierarchical paths; unknown paths raise ``KeyError``
    so a stale labeling is caught loudly rather than silently shrinking
    the cone.
    """
    cone: set[str] = set()
    stack = [design.net(path) for path in roots]
    for flat in stack:
        cone.add(flat.path)
    while stack:
        flat = stack.pop()
        for dep in net_reads(flat):
            if dep.path not in cone:
                cone.add(dep.path)
                stack.append(dep)
    return cone


def reduce_design(design: FlatDesign, roots: Iterable[str]) -> FlatDesign:
    """A copy of ``design`` restricted to the cone of influence of
    ``roots``.

    Keeps the clock-domain list of the original even when one domain's
    registers are all pruned, so the symbolic model's half-cycle phase
    semantics (and therefore property timing) are unchanged.
    """
    cone = cone_of_influence(design, roots)
    reduced = FlatDesign()
    reduced.nets = {
        path: flat for path, flat in design.nets.items() if path in cone
    }
    reduced.inputs = [f for f in design.inputs if f.path in cone]
    reduced.comb_order = [f for f in design.comb_order if f.path in cone]
    reduced.regs = [f for f in design.regs if f.path in cone]
    reduced.monitors = [
        mon for mon in design.monitors if mon.fire.path in cone
    ]
    reduced.clocks = list(design.clocks)
    # carry lint metadata (waivers, declared top outputs) when present
    for attr in ("lint_waivers", "top_outputs", "top_scope"):
        if hasattr(design, attr):
            setattr(reduced, attr, getattr(design, attr))
    reduced.coi_roots = list(roots)  # type: ignore[attr-defined]
    reduced.coi_dropped = {  # type: ignore[attr-defined]
        "nets": len(design.nets) - len(reduced.nets),
        "regs": len(design.regs) - len(reduced.regs),
        "state_bits": sum(r.width for r in design.regs)
        - sum(r.width for r in reduced.regs),
    }
    return reduced
