"""PSL property diagnostics: vacuity and tautology.

Vacuity is decided with the BDD engine: an implication guard whose BDD
is the ``FALSE`` terminal can never activate its consequent, and a
suffix-implication antecedent whose NFA reaches no accepting state over
satisfiable guards can never obligate anything.  Tautology is decided on
the determinised checker automaton: if the ``FAIL`` state is unreachable
from the initial state the property cannot fail on any trace, so
"proving" it exercises nothing.

Rule ids
--------
``psl-vacuity``   antecedent/guard unsatisfiable: consequent never checked
``psl-tautology`` checker automaton cannot reach FAIL on any trace
"""

from __future__ import annotations

from ..bdd import BddManager
from ..psl.ast import (
    Abort,
    Always,
    And,
    Atom,
    BoolExpr,
    ConstB,
    Iff,
    Implies,
    NextP,
    Never,
    Not,
    Or,
    PropAnd,
    PropImplication,
    Property,
    PslError,
    SuffixImpl,
    Sere,
)
from ..psl.automata import CheckerAutomaton, build_checker
from ..psl.sere import compile_sere
from .diagnostics import ERROR
from .manager import LintContext, Pass

__all__ = [
    "bool_to_bdd",
    "satisfiable",
    "sere_can_match",
    "PslVacuityPass",
    "PslTautologyPass",
]


def bool_to_bdd(mgr: BddManager, expr: BoolExpr) -> int:
    """Encode a boolean-layer expression in ``mgr`` (atoms are declared
    on first use)."""
    if isinstance(expr, Atom):
        if expr.name not in mgr.var_names():
            mgr.add_var(expr.name)
        return mgr.var(expr.name)
    if isinstance(expr, ConstB):
        return mgr.TRUE if expr.value else mgr.FALSE
    if isinstance(expr, Not):
        return mgr.not_(bool_to_bdd(mgr, expr.a))
    if isinstance(expr, (And, Or, Implies, Iff)):
        a = bool_to_bdd(mgr, expr.a)
        b = bool_to_bdd(mgr, expr.b)
        op = {
            And: mgr.and_, Or: mgr.or_,
            Implies: mgr.implies, Iff: mgr.xnor,
        }[type(expr)]
        return op(a, b)
    raise PslError(f"cannot encode {expr!r} as a BDD")


def satisfiable(expr: BoolExpr) -> bool:
    """True when some valuation of the atoms makes ``expr`` true."""
    mgr = BddManager()
    return bool_to_bdd(mgr, expr) != mgr.FALSE


def sere_can_match(sere: Sere, decider=satisfiable) -> bool:
    """True when the SERE's language is non-empty: it matches the empty
    word, or an accepting NFA state is reachable over satisfiable guards.
    ``decider`` pluggably decides guard satisfiability (BDD by default,
    SAT in the semantic pipeline)."""
    nfa = compile_sere(sere)
    if nfa.accepts_empty:
        return True
    live = {
        (src, dst)
        for src, guard, dst in nfa.transitions
        if decider(guard)
    }
    reached = set(nfa.initial)
    frontier = list(reached)
    while frontier:
        src = frontier.pop()
        for edge_src, dst in live:
            if edge_src == src and dst not in reached:
                reached.add(dst)
                frontier.append(dst)
    return bool(reached & nfa.accepting)


class PslVacuityPass(Pass):
    """Unsatisfiable guards and unmatchable antecedents.

    The boolean deciders are overridable hooks: this base class decides
    with the BDD engine; :class:`repro.lint.sat_rules.SatPslVacuityPass`
    re-decides with the CDCL solver and certifies every "unsatisfiable"
    verdict with a checked UNSAT proof.
    """

    name = "psl-vacuity"

    _satisfiable = staticmethod(satisfiable)
    _sere_can_match = staticmethod(sere_can_match)

    def run(self, ctx: LintContext) -> None:
        for prop_name, prop in ctx.properties:
            self._walk(ctx, prop_name, prop)

    def _walk(self, ctx: LintContext, prop_name: str, prop: Property) -> None:
        if isinstance(prop, (Always, NextP)):
            self._walk(ctx, prop_name, prop.p)
        elif isinstance(prop, Abort):
            self._walk(ctx, prop_name, prop.p)
        elif isinstance(prop, PropAnd):
            for part in prop.parts:
                self._walk(ctx, prop_name, part)
        elif isinstance(prop, PropImplication):
            if not self._satisfiable(prop.guard):
                ctx.emit(
                    "psl-vacuity", ERROR, prop_name,
                    f"implication guard {prop.guard!r} is unsatisfiable; "
                    "the consequent is never checked (vacuous pass)",
                    fix_hint="fix the guard or delete the property",
                )
            self._walk(ctx, prop_name, prop.p)
        elif isinstance(prop, SuffixImpl):
            if not self._sere_can_match(prop.sere):
                ctx.emit(
                    "psl-vacuity", ERROR, prop_name,
                    f"suffix-implication antecedent {prop.sere!r} can "
                    "never match; the consequent is never obligated "
                    "(vacuous pass)",
                    fix_hint="fix the antecedent SERE or delete the "
                             "property",
                )
            self._walk(ctx, prop_name, prop.p)
        elif isinstance(prop, Never):
            if not self._sere_can_match(prop.sere):
                ctx.emit(
                    "psl-vacuity", ERROR, prop_name,
                    f"never-SERE {prop.sere!r} can never match; the "
                    "property forbids nothing",
                    fix_hint="fix the SERE or delete the property",
                )
        # leaf properties (PropBool, Until, Before, WithinBang, ...) have
        # no sub-antecedents to inspect


class PslTautologyPass(Pass):
    """Safety properties whose checker automaton cannot fail."""

    name = "psl-tautology"

    def run(self, ctx: LintContext) -> dict:
        checked = 0
        for prop_name, prop in ctx.properties:
            if not prop.is_safety():
                continue  # liveness has no finite refutation to look for
            try:
                checker = build_checker(prop)
            except PslError:
                continue  # too many atoms/states for determinisation
            checked += 1
            if not self._can_fail(checker):
                ctx.emit(
                    "psl-tautology", ERROR, prop_name,
                    "property cannot fail on any trace (checker automaton "
                    "never reaches FAIL); it constrains nothing",
                    fix_hint="the property is trivially true; strengthen "
                             "or delete it",
                )
        return {"checked": checked}

    @staticmethod
    def _can_fail(checker: CheckerAutomaton) -> bool:
        successors: dict[int, set[int]] = {}
        for (src, __), dst in checker._table.items():
            successors.setdefault(src, set()).add(dst)
        reached = {0}
        frontier = [0]
        while frontier:
            src = frontier.pop()
            for dst in successors.get(src, ()):
                if dst == CheckerAutomaton.FAIL_STATE:
                    return True
                if dst not in reached:
                    reached.add(dst)
                    frontier.append(dst)
        return False
