"""SARIF 2.1.0 export of a lint report.

SARIF (Static Analysis Results Interchange Format) is the standard
ingestion format of code-scanning UIs; emitting it lets the lint
pipeline's findings land in the same review surfaces as conventional
linters.  The mapping is straightforward:

* one ``run`` per report, tool ``repro-lint``, with every rule id that
  fired registered as a ``reportingDescriptor``;
* one ``result`` per diagnostic -- severity maps onto SARIF levels
  (``error``/``warning``/``note``), the flat net path / property name /
  ASM rule name becomes a logical location, and the fix hint travels as
  a ``fixes`` description;
* waived diagnostics stay in the log but carry an accepted
  ``suppression`` with the waiver's justification, mirroring the text
  report's ``[waived]`` flag (suppressed results do not fail CI).

Only an export is provided (``python -m repro.lint --sarif out.sarif``);
the text and JSON report formats are unchanged.
"""

from __future__ import annotations

import json

from .diagnostics import ERROR, WARNING, Diagnostic, LintReport

__all__ = ["SARIF_VERSION", "to_sarif", "write_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {ERROR: "error", WARNING: "warning"}


def _result(diag: Diagnostic) -> dict:
    result = {
        "ruleId": diag.rule,
        "level": _LEVELS.get(diag.severity, "note"),
        "message": {"text": diag.message},
        "locations": [{
            "logicalLocations": [{
                "fullyQualifiedName": diag.location,
            }],
        }],
    }
    if diag.fix_hint:
        result["fixes"] = [{"description": {"text": diag.fix_hint}}]
    if diag.waived:
        result["suppressions"] = [{
            "kind": "external",
            "status": "accepted",
            "justification": diag.waived_reason,
        }]
    return result


def to_sarif(report: LintReport) -> dict:
    """The SARIF 2.1.0 log object for one lint report."""
    rules = []
    seen: set = set()
    for diag in report.diagnostics:
        if diag.rule not in seen:
            seen.add(diag.rule)
            rules.append({"id": diag.rule})
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": rules,
                },
            },
            "properties": {
                "subject": report.subject,
                "passTimes": {
                    name: report.pass_times[name]
                    for name in report.pass_order
                },
                "passStats": {
                    name: dict(stats)
                    for name, stats in report.pass_stats.items()
                },
            },
            "results": [_result(d) for d in report.diagnostics],
        }],
    }


def write_sarif(report: LintReport, path: str, indent: int = 2) -> None:
    """Serialise the report to ``path`` as a SARIF JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(report), fh, indent=indent)
        fh.write("\n")
