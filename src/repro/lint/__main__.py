"""CLI: ``python -m repro.lint`` -- lint the shipped LA-1 models.

Exit code 0 when no unwaived error-severity finding exists, 1 otherwise
(the CI contract), 2 on usage errors.

Examples::

    python -m repro.lint                  # 2-bank stack, text report
    python -m repro.lint --banks 4        # 4-bank stack
    python -m repro.lint --json           # machine-readable report
    python -m repro.lint --sarif out.sarif  # SARIF 2.1.0 for CI viewers
    python -m repro.lint --semantic       # + SAT-proved passes (slower)
    python -m repro.lint --disable cdc-no-sync --no-waived
"""

from __future__ import annotations

import argparse
import sys

from . import LintConfig, lint_la1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis of the LA-1 RTL/PSL/ASM models.",
    )
    parser.add_argument(
        "--banks", type=int, default=2, metavar="N",
        help="bank count of the linted device (default: 2)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON",
    )
    parser.add_argument(
        "--sarif", metavar="PATH",
        help="also write the report as SARIF 2.1.0 to PATH",
    )
    parser.add_argument(
        "--semantic", action="store_true",
        help="enable the SAT-backed semantic passes (proved const "
             "nets, codegen equivalence; slower)",
    )
    parser.add_argument(
        "--no-waived", action="store_true",
        help="hide waived findings in the text report",
    )
    parser.add_argument(
        "--no-parity", action="store_true",
        help="lint the OVL top without the parity checker set",
    )
    parser.add_argument(
        "--disable", action="append", default=[], metavar="RULE",
        help="disable a rule id (repeatable)",
    )
    parser.add_argument(
        "--asm-state-cap", type=int, default=512, metavar="N",
        help="bound of the ASM reachable-state sweep (default: 512)",
    )
    args = parser.parse_args(argv)
    if args.banks < 1:
        parser.error("--banks must be >= 1")

    config = LintConfig(
        disabled_rules=frozenset(args.disable),
        asm_state_cap=args.asm_state_cap,
    )
    report = lint_la1(
        banks=args.banks, config=config,
        parity_checks=not args.no_parity,
        semantic=args.semantic,
    )
    if args.sarif:
        from .sarif import write_sarif

        write_sarif(report, args.sarif)
    if args.json:
        print(report.to_json())
    else:
        print(report.render(show_waived=not args.no_waived))
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
