"""Property extraction from modified sequence diagrams.

"The LA-1 Interface properties are extracted from both the sequence
diagrams and the class diagram" (paper, Section 4.2).  Because the
modified sequence diagram carries exact clock stamps, each consecutive
pair of messages yields a checkable latency obligation: if the first
operation is observed, the second must be observed exactly ``delta``
half-cycles later.

The extraction produces PSL ``always (a -> next[delta] b)`` properties
over atoms derived from operation names through a caller-supplied naming
function (by default the lower-cased operation name), which the LA-1
property suite maps onto design signals.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..psl.ast import Always, Atom, NextP, PropBool, PropImplication, Property
from .sequence import SequenceDiagram

__all__ = ["extract_latency_properties", "extract_response_property"]


def _default_naming(operation: str) -> str:
    return operation.lower()


def extract_latency_properties(
    diagram: SequenceDiagram,
    naming: Optional[Callable[[str], str]] = None,
) -> list[tuple[str, Property]]:
    """One latency property per consecutive message pair.

    Returns ``(name, property)`` pairs; a pair of messages stamped at the
    same half-cycle yields a same-cycle implication instead of a ``next``.
    """
    naming = naming or _default_naming
    ordered = diagram.ordered_messages()
    properties: list[tuple[str, Property]] = []
    for first, second in zip(ordered, ordered[1:]):
        delta = second.half_cycle - first.half_cycle
        a = Atom(naming(first.operation))
        b = Atom(naming(second.operation))
        if delta == 0:
            body: Property = PropImplication(a, PropBool(b))
        else:
            body = PropImplication(a, NextP(PropBool(b), delta))
        name = (
            f"{diagram.name}:{first.operation}->{second.operation}"
            f"[+{delta}h]"
        )
        properties.append((name, Always(body)))
    return properties


def extract_response_property(
    diagram: SequenceDiagram,
    request_op: str,
    response_op: str,
    naming: Optional[Callable[[str], str]] = None,
) -> tuple[str, Property]:
    """The end-to-end latency property between two named operations.

    For the read-mode diagram this is the paper's headline property: a
    read request is answered with valid data a fixed number of half-cycles
    later.
    """
    naming = naming or _default_naming
    delta = diagram.latency(request_op, response_op)
    if delta is None:
        raise ValueError(
            f"{diagram.name} does not contain both {request_op} and "
            f"{response_op}"
        )
    a = Atom(naming(request_op))
    b = Atom(naming(response_op))
    if delta == 0:
        body: Property = PropImplication(a, PropBool(b))
    else:
        body = PropImplication(a, NextP(PropBool(b), delta))
    name = f"{diagram.name}:{request_op}~>{response_op}[+{delta}h]"
    return name, Always(body)
