"""``repro.uml`` -- the UML top level of the refinement flow.

Class diagrams, use-case diagrams, and the paper's *modified sequence
diagrams* whose messages carry cycle stamps and activation clocks
(``OnReadRequest[2]()@K#``), plus consistency validation, text/dot
rendering and mechanical extraction of PSL latency properties from
sequence diagrams.
"""

from .classdiagram import (
    Association,
    ClassDiagram,
    UmlAttribute,
    UmlClass,
    UmlError,
    UmlOperation,
    UmlParameter,
)
from .sequence import Lifeline, Message, SequenceDiagram
from .usecase import Actor, UseCase, UseCaseDiagram
from .extract import extract_latency_properties, extract_response_property
from .render import (
    class_diagram_dot,
    render_class_diagram,
    render_sequence_diagram,
    render_use_case_diagram,
)

__all__ = [
    "UmlError",
    "UmlAttribute",
    "UmlParameter",
    "UmlOperation",
    "UmlClass",
    "Association",
    "ClassDiagram",
    "Lifeline",
    "Message",
    "SequenceDiagram",
    "Actor",
    "UseCase",
    "UseCaseDiagram",
    "extract_latency_properties",
    "extract_response_property",
    "render_class_diagram",
    "render_sequence_diagram",
    "render_use_case_diagram",
    "class_diagram_dot",
]
