"""Text renderers for UML diagrams (ASCII and Graphviz dot)."""

from __future__ import annotations

import io

from .classdiagram import ClassDiagram
from .sequence import SequenceDiagram
from .usecase import UseCaseDiagram

__all__ = ["render_class_diagram", "render_sequence_diagram",
           "render_use_case_diagram", "class_diagram_dot"]


def render_class_diagram(diagram: ClassDiagram) -> str:
    """ASCII boxes: one per class, then the association list."""
    out = io.StringIO()
    out.write(f"== Class diagram: {diagram.name} ==\n")
    for cls in diagram.classes.values():
        title = f"<<{cls.stereotype}>> {cls.name}" if cls.stereotype else cls.name
        body = [repr(a) for a in cls.attributes]
        ops = [repr(o) for o in cls.operations]
        width = max(
            [len(title)] + [len(s) for s in body + ops] + [8]
        )
        bar = "+" + "-" * (width + 2) + "+"
        out.write(bar + "\n")
        out.write(f"| {title.ljust(width)} |\n")
        out.write(bar + "\n")
        for line in body:
            out.write(f"| {line.ljust(width)} |\n")
        out.write(bar + "\n")
        for line in ops:
            out.write(f"| {line.ljust(width)} |\n")
        out.write(bar + "\n\n")
    for assoc in diagram.associations:
        out.write(f"{assoc!r}\n")
    return out.getvalue()


def render_sequence_diagram(diagram: SequenceDiagram) -> str:
    """ASCII rendering in the paper's Figure 3 style: one line per message
    with clock-stamped notation."""
    out = io.StringIO()
    out.write(f"== Sequence diagram: {diagram.name} ==\n")
    parts = "   ".join(repr(l) for l in diagram.lifelines.values())
    out.write(parts + "\n")
    for msg in diagram.ordered_messages():
        out.write(
            f"  [{msg.half_cycle:2d}h] {msg.source} -> {msg.target}: "
            f"{msg.notation()}\n"
        )
    return out.getvalue()


def render_use_case_diagram(diagram: UseCaseDiagram) -> str:
    """ASCII rendering of actors and their use cases."""
    out = io.StringIO()
    out.write(f"== Use cases: {diagram.name} ==\n")
    for actor, case in diagram.participations:
        out.write(f"  {actor} --- ({case})\n")
    for base, included in diagram.includes:
        out.write(f"  ({base}) ..> <<include>> ({included})\n")
    for ext, base in diagram.extends:
        out.write(f"  ({ext}) ..> <<extend>> ({base})\n")
    return out.getvalue()


def class_diagram_dot(diagram: ClassDiagram) -> str:
    """Graphviz dot for the class diagram."""
    lines = ["digraph classes {", "  node [shape=record];"]
    for cls in diagram.classes.values():
        attrs = "\\l".join(repr(a) for a in cls.attributes)
        ops = "\\l".join(repr(o) for o in cls.operations)
        label = f"{{{cls.name}|{attrs}\\l|{ops}\\l}}"
        lines.append(f'  "{cls.name}" [label="{label}"];')
    arrow = {
        "association": "vee",
        "composition": "diamond",
        "aggregation": "odiamond",
        "dependency": "open",
    }
    for assoc in diagram.associations:
        lines.append(
            f'  "{assoc.source}" -> "{assoc.target}" '
            f"[arrowhead={arrow[assoc.kind]}];"
        )
    lines.append("}")
    return "\n".join(lines)
