"""Use-case diagrams: the third UML view the flow starts from."""

from __future__ import annotations

from typing import Optional

from .classdiagram import UmlError

__all__ = ["Actor", "UseCase", "UseCaseDiagram"]


class Actor:
    """An external actor (e.g. the Network Processor host)."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self):
        return f"Actor({self.name!r})"


class UseCase:
    """A named system capability."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description

    def __repr__(self):
        return f"UseCase({self.name!r})"


class UseCaseDiagram:
    """Actors, use cases and their relations."""

    def __init__(self, name: str):
        self.name = name
        self.actors: dict[str, Actor] = {}
        self.use_cases: dict[str, UseCase] = {}
        self.participations: list[tuple[str, str]] = []
        self.includes: list[tuple[str, str]] = []
        self.extends: list[tuple[str, str]] = []

    def actor(self, name: str) -> Actor:
        """Add an actor."""
        if name in self.actors:
            raise UmlError(f"duplicate actor {name}")
        actor = Actor(name)
        self.actors[name] = actor
        return actor

    def use_case(self, name: str, description: str = "") -> UseCase:
        """Add a use case."""
        if name in self.use_cases:
            raise UmlError(f"duplicate use case {name}")
        case = UseCase(name, description)
        self.use_cases[name] = case
        return case

    def participates(self, actor: str, use_case: str) -> None:
        """Relate an actor to a use case."""
        self.participations.append((actor, use_case))

    def include(self, base: str, included: str) -> None:
        """``base`` <<include>> ``included``."""
        self.includes.append((base, included))

    def extend(self, extension: str, base: str) -> None:
        """``extension`` <<extend>> ``base``."""
        self.extends.append((extension, base))

    def validate(self) -> list[str]:
        """Referential checks; returns a list of problems."""
        problems = []
        for actor, case in self.participations:
            if actor not in self.actors:
                problems.append(f"unknown actor {actor}")
            if case not in self.use_cases:
                problems.append(f"unknown use case {case}")
        for a, b in self.includes + self.extends:
            for case in (a, b):
                if case not in self.use_cases:
                    problems.append(f"unknown use case {case}")
        return problems

    def __repr__(self):
        return (
            f"UseCaseDiagram({self.name!r}, actors={len(self.actors)}, "
            f"use_cases={len(self.use_cases)})"
        )
