"""UML class diagrams -- the top of the paper's refinement flow.

"We start with an informal specification for the intended design developed
in UML.  This step provides a better view of the design components and
their interactions" (paper, Section 4).  The data model here is small but
faithful: classes with attributes and operations (operations can carry an
activation clock, anticipating the modified sequence diagram), and typed
associations with multiplicities.  :meth:`ClassDiagram.validate` performs
the well-formedness checks the downstream ASM mapping relies on.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "UmlError",
    "UmlAttribute",
    "UmlParameter",
    "UmlOperation",
    "UmlClass",
    "Association",
    "ClassDiagram",
]


class UmlError(Exception):
    """Raised on ill-formed diagrams."""


class UmlAttribute:
    """A named, typed class attribute."""

    def __init__(self, name: str, type_name: str, initial: Optional[str] = None):
        self.name = name
        self.type_name = type_name
        self.initial = initial

    def __repr__(self):
        init = f" = {self.initial}" if self.initial is not None else ""
        return f"{self.name}: {self.type_name}{init}"


class UmlParameter:
    """An operation parameter."""

    def __init__(self, name: str, type_name: str):
        self.name = name
        self.type_name = type_name

    def __repr__(self):
        return f"{self.name}: {self.type_name}"


class UmlOperation:
    """A class operation, optionally bound to an activation clock.

    The clock annotation (``@K`` / ``@K#``) is the paper's extension for
    "specifying information principally to the methods activation clocks,
    execution cycles and duration of execution".
    """

    def __init__(
        self,
        name: str,
        parameters: Optional[list[UmlParameter]] = None,
        returns: str = "void",
        clock: Optional[str] = None,
    ):
        self.name = name
        self.parameters = list(parameters or [])
        self.returns = returns
        self.clock = clock

    def __repr__(self):
        params = ", ".join(repr(p) for p in self.parameters)
        clock = f" @{self.clock}" if self.clock else ""
        return f"{self.name}({params}): {self.returns}{clock}"


class UmlClass:
    """A UML class with attributes, operations and an optional stereotype."""

    def __init__(self, name: str, stereotype: Optional[str] = None):
        self.name = name
        self.stereotype = stereotype
        self.attributes: list[UmlAttribute] = []
        self.operations: list[UmlOperation] = []

    def attribute(self, name: str, type_name: str,
                  initial: Optional[str] = None) -> UmlAttribute:
        """Add an attribute."""
        attr = UmlAttribute(name, type_name, initial)
        self.attributes.append(attr)
        return attr

    def operation(
        self,
        name: str,
        parameters: Optional[list[UmlParameter]] = None,
        returns: str = "void",
        clock: Optional[str] = None,
    ) -> UmlOperation:
        """Add an operation."""
        op = UmlOperation(name, parameters, returns, clock)
        self.operations.append(op)
        return op

    def find_operation(self, name: str) -> Optional[UmlOperation]:
        """Look up an operation by name."""
        for op in self.operations:
            if op.name == name:
                return op
        return None

    def __repr__(self):
        tag = f"<<{self.stereotype}>> " if self.stereotype else ""
        return f"UmlClass({tag}{self.name})"


class Association:
    """A typed relation between two classes."""

    KINDS = ("association", "composition", "aggregation", "dependency")

    def __init__(
        self,
        source: str,
        target: str,
        kind: str = "association",
        source_multiplicity: str = "1",
        target_multiplicity: str = "1",
        label: str = "",
    ):
        if kind not in self.KINDS:
            raise UmlError(f"unknown association kind {kind!r}")
        self.source = source
        self.target = target
        self.kind = kind
        self.source_multiplicity = source_multiplicity
        self.target_multiplicity = target_multiplicity
        self.label = label

    def __repr__(self):
        return (
            f"{self.source} --{self.kind}--> {self.target} "
            f"[{self.source_multiplicity}..{self.target_multiplicity}]"
        )


class ClassDiagram:
    """A collection of classes and associations with validation."""

    def __init__(self, name: str):
        self.name = name
        self.classes: dict[str, UmlClass] = {}
        self.associations: list[Association] = []

    def add_class(self, cls: UmlClass) -> UmlClass:
        """Register a class; duplicate names are errors."""
        if cls.name in self.classes:
            raise UmlError(f"duplicate class {cls.name}")
        self.classes[cls.name] = cls
        return cls

    def new_class(self, name: str, stereotype: Optional[str] = None) -> UmlClass:
        """Create and register a class."""
        return self.add_class(UmlClass(name, stereotype))

    def associate(self, source: str, target: str, **kwargs) -> Association:
        """Add an association between two registered classes."""
        assoc = Association(source, target, **kwargs)
        self.associations.append(assoc)
        return assoc

    def validate(self) -> list[str]:
        """Well-formedness check; returns a list of problems (empty = ok)."""
        problems: list[str] = []
        for assoc in self.associations:
            if assoc.source not in self.classes:
                problems.append(f"association source {assoc.source} undefined")
            if assoc.target not in self.classes:
                problems.append(f"association target {assoc.target} undefined")
        for cls in self.classes.values():
            seen_ops: set[str] = set()
            for op in cls.operations:
                if op.name in seen_ops:
                    problems.append(f"{cls.name}: duplicate operation {op.name}")
                seen_ops.add(op.name)
                if op.clock is not None and op.clock not in ("K", "K#"):
                    problems.append(
                        f"{cls.name}.{op.name}: unknown clock {op.clock!r}"
                    )
        return problems

    def __repr__(self):
        return (
            f"ClassDiagram({self.name!r}, classes={len(self.classes)}, "
            f"associations={len(self.associations)})"
        )
