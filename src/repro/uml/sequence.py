"""Modified sequence diagrams with clock annotations (the paper's Figure 3).

"In order to enable a better representation of the properties at the UML
level, we propose to use a modified sequence diagram where new notation
are included to enable specifying information principally to the methods
activation clocks, execution cycles and duration of execution."

A message carries the Figure 3 notation ``Operation[cycle]()@clock``:

* ``cycle`` -- the full-clock-cycle stamp relative to the scenario start;
* ``clock`` -- which edge of the master clock pair activates it
  (``K`` or ``K#``, where a K# edge falls half a cycle after the same
  cycle's K edge);
* ``duration`` -- execution cycles of the method (0 = combinational).

:meth:`SequenceDiagram.validate` checks time monotonicity per lifeline
and that every message's operation exists on the target class when a
class diagram is attached -- the UML-level consistency the flow relies on
before capturing the model in ASM.
"""

from __future__ import annotations

from typing import Optional

from .classdiagram import ClassDiagram, UmlError

__all__ = ["Lifeline", "Message", "SequenceDiagram"]

_CLOCKS = ("K", "K#")


class Lifeline:
    """A participant: an instance name bound to a class name."""

    def __init__(self, name: str, class_name: str):
        self.name = name
        self.class_name = class_name

    def __repr__(self):
        return f"{self.name}:{self.class_name}"


class Message:
    """A clock-annotated message, e.g. ``OnReadRequest[2]()@K#``."""

    def __init__(
        self,
        source: str,
        target: str,
        operation: str,
        cycle: int,
        clock: str = "K",
        duration: int = 0,
        arguments: Optional[list[str]] = None,
    ):
        if clock not in _CLOCKS:
            raise UmlError(f"message clock must be K or K#, got {clock!r}")
        if cycle < 0 or duration < 0:
            raise UmlError("cycle and duration must be non-negative")
        self.source = source
        self.target = target
        self.operation = operation
        self.cycle = cycle
        self.clock = clock
        self.duration = duration
        self.arguments = list(arguments or [])

    @property
    def half_cycle(self) -> int:
        """Global time in half-cycles: K edges are even, K# edges odd."""
        return 2 * self.cycle + (0 if self.clock == "K" else 1)

    def notation(self) -> str:
        """Figure 3 rendering: ``Op[cycle](args)@clock``."""
        args = ", ".join(self.arguments)
        return f"{self.operation}[{self.cycle}]({args})@{self.clock}"

    def __repr__(self):
        return f"{self.source} -> {self.target}: {self.notation()}"


class SequenceDiagram:
    """An ordered scenario over lifelines with clock-stamped messages."""

    def __init__(self, name: str, class_diagram: Optional[ClassDiagram] = None):
        self.name = name
        self.class_diagram = class_diagram
        self.lifelines: dict[str, Lifeline] = {}
        self.messages: list[Message] = []

    def lifeline(self, name: str, class_name: str) -> Lifeline:
        """Add a participant."""
        if name in self.lifelines:
            raise UmlError(f"duplicate lifeline {name}")
        line = Lifeline(name, class_name)
        self.lifelines[name] = line
        return line

    def message(
        self,
        source: str,
        target: str,
        operation: str,
        cycle: int,
        clock: str = "K",
        duration: int = 0,
        arguments: Optional[list[str]] = None,
    ) -> Message:
        """Add a message; lifelines must already exist."""
        for endpoint in (source, target):
            if endpoint not in self.lifelines:
                raise UmlError(f"unknown lifeline {endpoint}")
        msg = Message(source, target, operation, cycle, clock, duration,
                      arguments)
        self.messages.append(msg)
        return msg

    # ------------------------------------------------------------------
    def ordered_messages(self) -> list[Message]:
        """Messages sorted by global half-cycle time (stable)."""
        return sorted(self.messages, key=lambda m: m.half_cycle)

    def validate(self) -> list[str]:
        """Consistency checks; returns a list of problems."""
        problems: list[str] = []
        # half-cycle monotonicity in declaration order (a scenario is a
        # story: later messages must not be stamped earlier)
        last = -1
        for msg in self.messages:
            if msg.half_cycle < last:
                problems.append(
                    f"message {msg.notation()} goes back in time "
                    f"(half-cycle {msg.half_cycle} < {last})"
                )
            last = max(last, msg.half_cycle)
        # operations must exist on the target class
        if self.class_diagram is not None:
            for msg in self.messages:
                line = self.lifelines[msg.target]
                cls = self.class_diagram.classes.get(line.class_name)
                if cls is None:
                    problems.append(
                        f"lifeline {msg.target} has unknown class "
                        f"{line.class_name}"
                    )
                    continue
                op = cls.find_operation(msg.operation)
                if op is None:
                    problems.append(
                        f"{line.class_name} has no operation {msg.operation}"
                    )
                elif op.clock is not None and op.clock != msg.clock:
                    problems.append(
                        f"{msg.notation()}: operation declared @{op.clock} "
                        f"but message uses @{msg.clock}"
                    )
        return problems

    def latency(self, first_op: str, second_op: str) -> Optional[int]:
        """Half-cycles between the first occurrences of two operations."""
        first = next(
            (m for m in self.ordered_messages() if m.operation == first_op),
            None,
        )
        second = next(
            (m for m in self.ordered_messages() if m.operation == second_op),
            None,
        )
        if first is None or second is None:
            return None
        return second.half_cycle - first.half_cycle

    def __repr__(self):
        return (
            f"SequenceDiagram({self.name!r}, lifelines={len(self.lifelines)}, "
            f"messages={len(self.messages)})"
        )
