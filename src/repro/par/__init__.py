"""Deterministic process-pool fan-out for the verification engines.

The paper's evaluation is a throughput story -- cycles simulated and
states explored per second -- and every result-producing engine in this
reproduction was built around *mergeable* results: coverage databases
merge losslessly (:meth:`repro.cover.CoverageDB.merge`), campaign
reports merge by verdict union (:meth:`repro.fault.CampaignReport.merge`)
and property sweeps are independent per property.  This package supplies
the execution layer that exploits that:

* :func:`derive_seed` -- hash-based seed-stream splitting, so the RNG
  stream of every shard is a pure function of ``(root seed, labels)``
  and never depends on shard order or job count;
* :func:`plan_shards` -- stable, weight-balanced chunking of a work list
  into at most ``jobs`` shards (equal inputs always produce equal plans);
* :func:`run_sharded` -- a :class:`concurrent.futures.ProcessPoolExecutor`
  wrapper with worker warm-start (per-process initializer), per-shard
  wall-clock accounting, an overall timeout (expiry reaps the
  still-running workers), and a degradation ladder: any pool-layer
  failure (fork trouble, unpicklable work, a killed worker) falls back
  to inline execution of the remaining shards, so a parallel caller can
  never do worse than finish sequentially;
* :func:`run_supervised` -- the service-grade sibling
  (:mod:`repro.par.supervise`): per-shard retry with exponential
  backoff and deterministic jitter, poison-shard quarantine
  (:class:`ShardError` results instead of aborted runs), hung-worker
  reaping on a per-shard deadline, out-of-order collection, and
  optional write-ahead journaling so a killed coordinator resumes
  without recomputing a single collected shard.

The determinism contract: for a fixed work list and configuration,
``jobs=1`` and ``jobs=N`` produce identical *merged* results -- only
timing fields differ.  Every caller in :mod:`repro.fault`,
:mod:`repro.cover` and :mod:`repro.mc` is tested against that contract.
"""

from .pool import ParStats, plan_shards, run_sharded
from .seeds import derive_seed
from .supervise import ShardError, backoff_delay, run_supervised
from .workers import ModelSpec, la1_model_spec

__all__ = [
    "ParStats",
    "plan_shards",
    "run_sharded",
    "run_supervised",
    "ShardError",
    "backoff_delay",
    "derive_seed",
    "ModelSpec",
    "la1_model_spec",
]
