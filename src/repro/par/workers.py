"""Module-level worker entry points for :func:`repro.par.run_sharded`.

Everything a :class:`~concurrent.futures.ProcessPoolExecutor` touches
must be picklable by reference, so the task functions live here at
module level, and every expensive structure (a fault campaign's
simulators, an ASM machine, an elaborated netlist) is built *once per
worker process* through the matching ``*_init`` initializer and cached
in module globals -- the warm-start that keeps per-shard cost at the
actual work, not at model construction.

Unpicklable objects (machines with closure rules, predicate functions)
never cross the pipe: callers ship a :class:`ModelSpec` -- a dotted
``"package.module:factory"`` path plus keyword arguments -- and each
worker rebuilds the model locally.  Deterministic factories plus
:func:`repro.par.derive_seed` streams are what make ``jobs=N`` replay
``jobs=1`` exactly.
"""

from __future__ import annotations

import importlib
import json
import os
import time
from typing import Optional

__all__ = [
    "ModelSpec",
    "apply_chaos",
    "la1_model_spec",
    "build_la1_testgen_model",
    "la1_traffic_model_spec",
    "build_la1_traffic_model",
    "campaign_init",
    "campaign_shard",
    "testgen_init",
    "testgen_score_shard",
    "testgen_lane_score_shard",
    "testgen_replay_shard",
    "cover_collect_shard",
    "mc_sweep_init",
    "mc_check_shard",
    "sat_check_shard",
]


# ----------------------------------------------------------------------
# model specs: picklable recipes for unpicklable models
# ----------------------------------------------------------------------
class ModelSpec:
    """A picklable recipe: ``factory`` is a dotted ``"module:attr"``
    path to a callable returning ``(machine, predicates)``; ``kwargs``
    are its keyword arguments (JSON-serializable values only, so the
    cache key below is stable)."""

    __slots__ = ("factory", "kwargs")

    def __init__(self, factory: str, kwargs: Optional[dict] = None):
        self.factory = factory
        self.kwargs = dict(kwargs or {})

    def key(self) -> str:
        return f"{self.factory}?{json.dumps(self.kwargs, sort_keys=True)}"

    def build(self):
        module_name, __, attr = self.factory.partition(":")
        if not attr:
            raise ValueError(
                f"ModelSpec factory {self.factory!r} must be 'module:attr'"
            )
        factory = getattr(importlib.import_module(module_name), attr)
        return factory(**self.kwargs)

    def __repr__(self):
        return f"ModelSpec({self.factory!r}, {self.kwargs!r})"


def build_la1_testgen_model(banks: int = 2):
    """The standard LA-1 testgen target: the N-bank ASM machine plus its
    state predicates (the factory behind :func:`la1_model_spec`)."""
    from ..core.asm_model import La1AsmConfig, build_la1_asm
    from ..cover.asm_cov import la1_state_predicates

    machine = build_la1_asm(La1AsmConfig(banks=banks))
    return machine, la1_state_predicates(banks)


def la1_model_spec(banks: int = 2) -> ModelSpec:
    """Spec for :func:`build_la1_testgen_model` -- what
    ``coverage_driven_suite(..., jobs=N)`` callers pass for the shipped
    LA-1 models."""
    return ModelSpec("repro.par.workers:build_la1_testgen_model",
                     {"banks": banks})


def build_la1_traffic_model(banks: int = 2, seed: int = 7,
                            lanes: int = 1):
    """The RTL traffic-walk testgen target: an
    :class:`~repro.cover.traffic_walk.La1TrafficModel` whose
    ``score_walks`` hook scores a whole candidate batch lane-parallel
    (one candidate per lane), plus its (empty) predicate placeholder."""
    from ..cover.traffic_walk import La1TrafficModel

    return La1TrafficModel(banks=banks, seed=seed, lanes=lanes), None


def la1_traffic_model_spec(banks: int = 2, seed: int = 7,
                           lanes: int = 1) -> ModelSpec:
    """Spec for :func:`build_la1_traffic_model` -- what lane-parallel
    ``coverage_driven_suite(..., jobs=N)`` callers pass so each worker
    rebuilds the traffic model (and its bitpar simulator) locally."""
    return ModelSpec("repro.par.workers:build_la1_traffic_model",
                     {"banks": banks, "seed": seed, "lanes": lanes})


_MODEL_CACHE: dict = {}


def _model(spec: ModelSpec):
    key = spec.key()
    if key not in _MODEL_CACHE:
        _MODEL_CACHE[key] = spec.build()
    return _MODEL_CACHE[key]


# ----------------------------------------------------------------------
# chaos injection (tests / chaos bench / serve --smoke only)
# ----------------------------------------------------------------------
def _claim_marker(path: Optional[str]) -> bool:
    """Atomically claim a chaos marker file: True for exactly one
    claimant across all workers and attempts, False ever after -- which
    is what makes an induced fault strike exactly once per marker."""
    if not path:
        return False
    try:
        os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def apply_chaos(config) -> None:
    """Honour the chaos knobs a campaign config may carry.

    ``chaos_kill_marker``: the first worker to claim the marker dies
    instantly (``os._exit``), simulating an OOM kill or segfault;
    ``chaos_hang_marker``: the first claimant wedges, simulating a hung
    engine the supervisor must reap.  Both strike exactly once, so a
    retried attempt proceeds normally -- the supervised determinism
    story the chaos bench asserts.
    """
    if _claim_marker(getattr(config, "chaos_kill_marker", None)):
        os._exit(137)
    if _claim_marker(getattr(config, "chaos_hang_marker", None)):
        time.sleep(3600)


# ----------------------------------------------------------------------
# fault campaign
# ----------------------------------------------------------------------
_CAMPAIGN_CACHE: dict = {}


def _campaign(config):
    from ..fault.campaign import CampaignConfig, FaultCampaign

    key = json.dumps(config.fingerprint(), sort_keys=True)
    if key not in _CAMPAIGN_CACHE:
        # workers never checkpoint (the coordinator owns the state file)
        # and never enforce the whole-campaign deadline (the coordinator
        # owns the clock); per-fault deadlines still apply locally
        local = CampaignConfig(
            banks=config.banks,
            traffic=config.traffic,
            seed=config.seed,
            backend=config.backend,
            rtl_cycles=config.rtl_cycles,
            fault_deadline_s=config.fault_deadline_s,
            design=getattr(config, "design", None),
            patterns=getattr(config, "patterns", 1),
        )
        _CAMPAIGN_CACHE[key] = FaultCampaign(local)
    return _CAMPAIGN_CACHE[key]


def campaign_init(config) -> None:
    """Warm-start one worker: build the campaign (its simulators and
    golden runs materialize lazily on the first fault of each layer)."""
    _campaign(config)


def campaign_shard(config, faults, lanes: int = 1,
                   patterns_per_pass: Optional[int] = None) -> dict:
    """Sweep one shard of faults; returns a mergeable mini
    :class:`~repro.fault.campaign.CampaignReport` as a dict.  With
    ``lanes > 1`` the compatible (lane-encodable) faults of the shard
    run as PPSFP batches on the bitpar backend (verdicts unchanged), so
    lane parallelism multiplies with the process fan-out;
    ``patterns_per_pass`` caps the pattern-group tiling per pass."""
    from ..fault.campaign import CampaignReport

    apply_chaos(config)
    campaign = _campaign(config)
    verdicts = campaign.execute_faults(
        faults, lanes=lanes, patterns_per_pass=patterns_per_pass)
    engine_stats = {}
    if campaign._rtl_sim is not None:
        engine_stats["rtl_sim"] = campaign._rtl_sim.stats()
    for count, sim in sorted(campaign._ppsfp_sims.items()):
        engine_stats.setdefault("ppsfp", {})[str(count)] = sim.stats()
    return CampaignReport(
        verdicts, config.fingerprint(),
        sum(v.cpu_time for v in verdicts), engine_stats,
    ).to_dict()


# ----------------------------------------------------------------------
# coverage-driven test generation
# ----------------------------------------------------------------------
def testgen_init(spec: ModelSpec) -> None:
    """Warm-start one worker: rebuild (machine, predicates) once."""
    _model(spec)


def testgen_score_shard(spec: ModelSpec, db_dict: dict, candidates,
                        walk_steps: int) -> list:
    """Score candidate walks against a snapshot of the accumulated DB.

    ``candidates`` is ``[(walk_index, walk_seed), ...]``; each walk is
    regenerated locally from its derived seed, replayed against a clone
    of the snapshot, and scored by newly covered points.  Only ``(index,
    gain)`` pairs return -- the coordinator regenerates the winning walk
    from the same seed, so no action object ever crosses the pipe.
    """
    from ..asm.testgen import generate_random_walks
    from ..cover.db import CoverageDB
    from ..cover.testgen import replay_coverage

    machine, predicates = _model(spec)
    base = CoverageDB.from_dict(db_dict)
    base_covered = base.counts()[0]
    scores = []
    for index, walk_seed in candidates:
        case = generate_random_walks(machine, 1, walk_steps,
                                     seed=walk_seed)[0]
        trial = replay_coverage(machine, case, predicates, base.clone())
        scores.append((index, trial.counts()[0] - base_covered))
    return scores


def testgen_lane_score_shard(spec: ModelSpec, db_dict: dict, candidates,
                             walk_steps: int, lanes: int) -> list:
    """Score one shard of candidate walks lane-parallel.

    Same contract as :func:`testgen_score_shard` (``(index, gain)``
    pairs against a DB snapshot), but the worker hands its whole shard
    to the rebuilt machine's ``score_walks`` hook, which packs up to
    ``lanes`` candidates per bit-parallel simulation pass -- so process
    fan-out multiplies with lane fan-out.  A spec that rebuilds a
    machine without the hook falls back to the per-walk replay path,
    keeping the returned gains identical either way.
    """
    from ..cover.db import CoverageDB

    machine, __predicates = _model(spec)
    score_walks = getattr(machine, "score_walks", None)
    if score_walks is None:
        return testgen_score_shard(spec, db_dict, candidates, walk_steps)
    base = CoverageDB.from_dict(db_dict)
    gains = score_walks([s for __, s in candidates], walk_steps, base,
                        lanes=lanes)
    return [(index, gain) for (index, __), gain in zip(candidates, gains)]


def testgen_replay_shard(spec: ModelSpec, candidates,
                         walk_steps: int) -> list:
    """Replay undirected walks into fresh per-walk DBs.

    Returns ``[(walk_index, db_dict), ...]``; because DB merge is
    lossless, merging the per-walk DBs in walk order reproduces the
    sequential accumulation bit for bit.
    """
    from ..asm.testgen import generate_random_walks
    from ..cover.testgen import replay_coverage

    machine, predicates = _model(spec)
    out = []
    for index, walk_seed in candidates:
        case = generate_random_walks(machine, 1, walk_steps,
                                     seed=walk_seed)[0]
        db = replay_coverage(machine, case, predicates)
        out.append((index, db.to_dict()))
    return out


# ----------------------------------------------------------------------
# cross-level coverage collection
# ----------------------------------------------------------------------
def cover_collect_shard(kwargs: dict) -> dict:
    """Collect one four-level LA-1 coverage shard (one seed)."""
    from ..cover.la1 import collect_la1_coverage

    return collect_la1_coverage(**kwargs).to_dict()


# ----------------------------------------------------------------------
# symbolic model checking sweeps
# ----------------------------------------------------------------------
_DESIGN_CACHE: dict = {}


def _mc_design(banks: int, datapath: bool):
    from ..core.rtl_model import build_la1_top_rtl
    from ..core.rulebase import MC_SCALE_CONFIG
    from ..rtl import elaborate

    key = (banks, datapath)
    if key not in _DESIGN_CACHE:
        top = build_la1_top_rtl(MC_SCALE_CONFIG(banks), datapath=datapath)
        _DESIGN_CACHE[key] = elaborate(top)
    return _DESIGN_CACHE[key]


def mc_sweep_init(banks: int, datapath: bool) -> None:
    """Warm-start one worker: build and elaborate the netlist once; the
    per-property symbolic encodings reuse it."""
    _mc_design(banks, datapath)


def mc_check_shard(banks: int, datapath: bool, name: str, prop,
                   options: dict) -> dict:
    """Check one PSL property against the cached design."""
    from ..core.rulebase import check_read_mode_rtl

    result = check_read_mode_rtl(
        banks,
        prop=prop,
        datapath=datapath,
        property_name=name,
        design=_mc_design(banks, datapath),
        **options,
    )
    return result.to_dict()


def sat_check_shard(banks: int, datapath: bool, name: str, prop,
                    options: dict) -> dict:
    """Check one PSL property with the SAT engine (BMC + k-induction)
    against the cached design.  Same signature and result shape as
    :func:`mc_check_shard`, so sweeps swap engines without re-sharding."""
    from ..sat.bmc import check_read_mode_sat

    result = check_read_mode_sat(
        banks,
        prop=prop,
        datapath=datapath,
        property_name=name,
        design=_mc_design(banks, datapath),
        **options,
    )
    return result.to_dict()
