"""Supervised shard execution: retry, quarantine, reap, journal, resume.

:func:`run_sharded` (the plain pool) treats any worker failure as fatal
to the pool and degrades the whole run inline -- correct for the rare
fork-refusal case, but a long-lived verification service needs finer
containment: a worker that segfaults on one poisoned shard must not
drag thirty healthy shards back to sequential execution, a hung shard
must be *killed* (not politely cancelled) and retried elsewhere, and a
coordinator restart must resume from durable state instead of
recomputing finished shards.

:func:`run_supervised` provides that ladder.  It manages one worker
:class:`multiprocessing.Process` per in-flight shard (a shard plan has
at most ``jobs`` shards, so this costs the same number of processes as
the pool, while making per-shard kill possible -- a
``ProcessPoolExecutor`` cannot terminate one task):

* **retry with backoff** -- a shard whose worker raises, crashes, or
  exceeds ``shard_deadline_s`` is re-attempted up to ``max_attempts``
  times, after an exponential backoff with deterministic jitter
  (hash-derived from ``(seed, shard, attempt)``, so two coordinators
  never thunder in lockstep yet tests replay exactly);
* **quarantine** -- a shard that fails every attempt yields a
  structured :class:`ShardError` result (``stats.quarantined`` records
  the index) while every other shard completes normally: a poisoned
  shard degrades the run, it never aborts it;
* **reaping** -- a shard still running at its deadline has its worker
  process killed (``stats.killed_workers``), immediately freeing the
  slot; cancelled-but-running CPU burners cannot exist;
* **out-of-order collection** -- ``on_result`` fires the moment any
  shard lands, so checkpoint hooks never queue behind a slow shard 0;
* **write-ahead journal** -- with ``journal=`` every collected result
  is durably appended before the next scheduling decision; a killed
  coordinator re-running the same call replays the journal
  (``stats.journal_hits``), refires ``on_result`` for replayed shards,
  and computes only what was never collected.  Results being
  deterministic, the resumed run's merged output is bit-identical to an
  undisturbed one.

Retries never change *what* is computed -- a shard's task and args are
immutable across attempts -- so verdict content is attempt-count
invariant; only the timing fields of :class:`~repro.par.pool.ParStats`
differ.  ``jobs <= 1`` applies the same retry/quarantine/journal ladder
inline (no per-shard deadline: a coordinator cannot kill itself).
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from queue import Empty
from typing import Callable, Optional, Sequence

from .pool import ParStats, _mp_context, _timed_call
from .seeds import derive_seed

__all__ = ["ShardError", "run_supervised", "backoff_delay"]

#: how long a dead worker gets to flush a late result from its queue
#: feeder thread before the coordinator declares the shard crashed
_CRASH_GRACE_S = 0.25

#: coordinator poll quantum (queue waits and liveness checks)
_POLL_S = 0.02


class ShardError:
    """The structured result of a quarantined shard.

    Callers receive this *in place of* the shard's value, so a poisoned
    shard is data, not control flow: the fault campaign turns it into
    per-fault ``error`` verdicts, the MC sweep into an inconclusive
    property, the testgen loop into an inline re-score.
    """

    def __init__(self, index: int, attempts: int, kind: str, detail: str):
        self.index = index
        self.attempts = attempts
        #: "exception" (task raised), "crash" (worker died), or
        #: "deadline" (shard exceeded shard_deadline_s and was killed)
        self.kind = kind
        self.detail = detail

    def to_dict(self) -> dict:
        return {
            "shard_error": True,
            "index": self.index,
            "attempts": self.attempts,
            "kind": self.kind,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardError":
        return cls(data["index"], data["attempts"], data["kind"],
                   data["detail"])

    def __repr__(self):
        return (f"ShardError(shard {self.index}: {self.kind} after "
                f"{self.attempts} attempt(s))")


def backoff_delay(seed: int, index: int, attempt: int,
                  base_s: float, max_s: float) -> float:
    """The sleep before re-attempting shard ``index`` (``attempt`` >= 2):
    exponential in the attempt number, capped at ``max_s``, scaled by a
    deterministic jitter in [0.5, 1.5) hash-derived from the identifying
    triple -- reproducible, yet decorrelated across shards and runs."""
    jitter = 0.5 + derive_seed(seed, "backoff", index, attempt) / 2.0**63
    return min(max_s, base_s * 2.0 ** (attempt - 2)) * jitter


def _supervised_worker(result_q, index: int, attempt: int, task, args,
                       initializer, initargs) -> None:
    """One shard attempt in its own process: run, report, exit.  Any
    exception -- including in the initializer -- reports as a structured
    error message; only the coordinator decides retry vs quarantine."""
    try:
        if initializer is not None:
            initializer(*initargs)
        wall, value = _timed_call(task, args)
        result_q.put(("ok", index, attempt, wall, value))
    except BaseException as exc:  # noqa: BLE001 - containment boundary
        try:
            result_q.put(("error", index, attempt, 0.0,
                          f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - queue torn down
            pass


class _Supervisor:
    """Coordinator state of one :func:`run_supervised` call."""

    def __init__(self, task, shard_args, jobs, initializer, initargs,
                 timeout_s, shard_deadline_s, max_attempts, backoff_base_s,
                 backoff_max_s, seed, on_result, journal,
                 journal_fingerprint):
        self.task = task
        self.shard_args = [tuple(args) for args in shard_args]
        self.jobs = jobs
        self.initializer = initializer
        self.initargs = initargs
        self.shard_deadline_s = shard_deadline_s
        self.max_attempts = max(1, max_attempts)
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.seed = seed
        self.on_result = on_result
        self.journal = journal
        self.journal_fingerprint = journal_fingerprint or {}
        self.stats = ParStats(jobs, len(self.shard_args))
        self.start = time.perf_counter()
        self.deadline = (None if timeout_s is None
                         else self.start + timeout_s)
        n = len(self.shard_args)
        self.results: list = [None] * n
        self.resolved = [False] * n  # collected, quarantined or journaled
        self.attempts = [0] * n
        self.stats.shard_wall_s = [0.0] * n

    # -- shared resolution paths --------------------------------------
    def _collect(self, index: int, wall: float, value,
                 from_journal: bool = False) -> None:
        self.results[index] = value
        self.resolved[index] = True
        self.stats.shard_wall_s[index] = wall
        if from_journal:
            self.stats.journal_hits += 1
        elif self.journal is not None:
            self.journal.append({
                "type": "shard", "index": index, "wall": wall,
                "value": value,
            })
        if self.on_result is not None:
            self.on_result(index, value)

    def _quarantine(self, index: int, kind: str, detail: str) -> None:
        error = ShardError(index, self.attempts[index], kind, detail)
        self.results[index] = error
        self.resolved[index] = True
        self.stats.quarantined.append(index)
        if self.journal is not None:
            self.journal.append({
                "type": "quarantine", "index": index,
                "value": error.to_dict(),
            })

    def _replay_journal(self) -> None:
        """Adopt every intact shard record of a matching journal; write
        the header on a fresh one.  A journal written for different work
        is ignored wholesale (fingerprint guard)."""
        if self.journal is None:
            return
        records = list(self.journal.replay())
        if not records:
            self.journal.append({
                "type": "header",
                "fingerprint": self.journal_fingerprint,
                "shards": len(self.shard_args),
            })
            return
        header = records[0]
        if (header.get("type") != "header"
                or header.get("fingerprint") != self.journal_fingerprint
                or header.get("shards") != len(self.shard_args)):
            warnings.warn(
                "supervised journal was written for different work "
                "(fingerprint/shard-count mismatch); ignoring it and "
                "running without journaling",
                stacklevel=2,
            )
            self.journal = None
            return
        for record in records[1:]:
            index = record.get("index")
            if not isinstance(index, int) or not (
                    0 <= index < len(self.shard_args)):
                continue
            if self.resolved[index]:
                continue
            if record.get("type") == "shard":
                self._collect(index, float(record.get("wall", 0.0)),
                              record.get("value"), from_journal=True)
            elif record.get("type") == "quarantine":
                # a quarantined shard is retried by the resumed run: the
                # failure may have been environmental (journal replays
                # it as *pending*, not as a verdict)
                continue

    # -- inline execution (jobs <= 1) ---------------------------------
    def run_inline(self) -> None:
        if self.initializer is not None:
            self.initializer(*self.initargs)
        for index in range(len(self.shard_args)):
            if self.resolved[index]:
                continue
            if (self.deadline is not None
                    and time.perf_counter() > self.deadline):
                self.stats.timed_out.append(index)
                continue
            while True:
                self.attempts[index] += 1
                try:
                    wall, value = _timed_call(
                        self.task, self.shard_args[index])
                except Exception as exc:  # noqa: BLE001 - retry ladder
                    if self.attempts[index] >= self.max_attempts:
                        self._quarantine(
                            index, "exception",
                            f"{type(exc).__name__}: {exc}")
                        break
                    self.stats.retries += 1
                    time.sleep(backoff_delay(
                        self.seed, index, self.attempts[index] + 1,
                        self.backoff_base_s, self.backoff_max_s))
                else:
                    self._collect(index, wall, value)
                    break

    # -- pool execution -----------------------------------------------
    def run_pool(self) -> None:
        ctx = _mp_context()
        result_q = ctx.Queue()
        #: (index, eligible_at) of shards waiting for a worker slot
        pending = deque(
            (index, 0.0) for index in range(len(self.shard_args))
            if not self.resolved[index]
        )
        #: proc -> (index, attempt, started_at, dead_since or None)
        running: dict = {}
        workers = max(1, self.jobs)

        def spawn(index: int) -> None:
            self.attempts[index] += 1
            proc = ctx.Process(
                target=_supervised_worker,
                args=(result_q, index, self.attempts[index], self.task,
                      self.shard_args[index], self.initializer,
                      self.initargs),
                daemon=True,
            )
            proc.start()
            running[proc] = [index, self.attempts[index],
                             time.perf_counter(), None]

        def release(proc) -> None:
            running.pop(proc, None)
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - stuck exiting
                proc.kill()
                proc.join(timeout=1.0)

        def retry_or_quarantine(index: int, kind: str,
                                detail: str) -> None:
            if self.resolved[index]:
                return
            if self.attempts[index] >= self.max_attempts:
                self._quarantine(index, kind, detail)
                return
            self.stats.retries += 1
            eligible = time.perf_counter() + backoff_delay(
                self.seed, index, self.attempts[index] + 1,
                self.backoff_base_s, self.backoff_max_s)
            pending.append((index, eligible))

        def drain(block_s: float = 0.0) -> bool:
            """Pull every available worker message; True if any."""
            got = False
            timeout = block_s
            while True:
                try:
                    message = result_q.get(
                        timeout=timeout) if timeout else result_q.get_nowait()
                except Empty:
                    return got
                got, timeout = True, 0.0
                status, index, attempt, wall, value = message
                owner = next(
                    (p for p, state in running.items()
                     if state[0] == index and state[1] == attempt), None)
                if owner is not None:
                    release(owner)
                if self.resolved[index]:
                    continue  # stale attempt beaten by journal/quarantine
                if status == "ok":
                    self._collect(index, wall, value)
                else:
                    retry_or_quarantine(index, "exception", value)

        try:
            while not all(self.resolved):
                now = time.perf_counter()
                # overall deadline: kill everything still running, mark
                # the unresolved shards timed out (None results)
                if self.deadline is not None and now > self.deadline:
                    for proc in list(running):
                        if proc.is_alive():
                            proc.kill()
                            self.stats.killed_workers += 1
                        release(proc)
                    for index in range(len(self.shard_args)):
                        if not self.resolved[index]:
                            self.stats.timed_out.append(index)
                    break
                # reap shards past their per-shard deadline
                if self.shard_deadline_s is not None:
                    for proc, state in list(running.items()):
                        index, attempt, started, __ = state
                        if now - started > self.shard_deadline_s:
                            if proc.is_alive():
                                proc.kill()
                                self.stats.killed_workers += 1
                            release(proc)
                            drain()  # a result may have raced the kill
                            retry_or_quarantine(
                                index, "deadline",
                                f"shard exceeded its "
                                f"{self.shard_deadline_s}s deadline")
                # declare crashed workers (dead, no result after grace)
                for proc, state in list(running.items()):
                    if proc.is_alive():
                        continue
                    if state[3] is None:
                        state[3] = now
                        continue
                    if now - state[3] < _CRASH_GRACE_S:
                        continue
                    drain()
                    if proc not in running:  # drain released it
                        continue
                    index = state[0]
                    release(proc)
                    retry_or_quarantine(
                        index, "crash",
                        f"worker exited with code {proc.exitcode} "
                        "before reporting a result")
                # fill free slots with eligible pending shards
                for __ in range(len(pending)):
                    if len(running) >= workers:
                        break
                    index, eligible = pending[0]
                    if self.resolved[index]:
                        pending.popleft()
                        continue
                    if eligible > now:
                        pending.rotate(-1)
                        continue
                    pending.popleft()
                    spawn(index)
                drain(block_s=_POLL_S)
            self.stats.mode = "pool"
        finally:
            for proc in list(running):
                if proc.is_alive():  # pragma: no cover - abnormal exit
                    proc.kill()
                proc.join(timeout=1.0)
            result_q.close()
            result_q.cancel_join_thread()


def run_supervised(
    task: Callable,
    shard_args: Sequence[tuple],
    *,
    jobs: int = 1,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    timeout_s: Optional[float] = None,
    shard_deadline_s: Optional[float] = None,
    max_attempts: int = 2,
    backoff_base_s: float = 0.05,
    backoff_max_s: float = 2.0,
    seed: int = 0,
    on_result: Optional[Callable[[int, object], None]] = None,
    journal=None,
    journal_fingerprint: Optional[dict] = None,
) -> tuple[list, ParStats]:
    """Run ``task(*args)`` per shard under supervision (see module doc).

    Returns ``(results, stats)`` in shard order: each entry is the
    task's value, a :class:`ShardError` (quarantined after
    ``max_attempts``), or ``None`` (abandoned by ``timeout_s``,
    recorded in ``stats.timed_out``).  ``on_result(index, value)``
    fires in completion order the moment a shard lands -- including
    once per shard replayed from ``journal``.

    ``journal`` is any object with ``append(dict)`` and ``replay()``
    (:class:`repro.serve.journal.Journal`); journaled values must be
    JSON-serializable -- note JSON turns tuples into lists, so resumed
    and fresh results agree only for JSON-shaped payloads, which all
    repro.par worker tasks return.  ``journal_fingerprint`` guards the
    journal against resuming different work.
    """
    supervisor = _Supervisor(
        task, shard_args, jobs, initializer, initargs, timeout_s,
        shard_deadline_s, max_attempts, backoff_base_s, backoff_max_s,
        seed, on_result, journal, journal_fingerprint,
    )
    supervisor._replay_journal()
    if not supervisor.shard_args or all(supervisor.resolved):
        pass
    elif jobs <= 1 or len(supervisor.shard_args) <= 1 or (
            os.environ.get("REPRO_PAR_INLINE") == "1"):
        supervisor.run_inline()
    else:
        try:
            supervisor.run_pool()
        except Exception as exc:
            # the same degradation ladder as run_sharded: a failure of
            # the pool *infrastructure* (fork refusal, queue teardown,
            # pickling trouble) finishes the unresolved shards inline
            # instead of aborting -- worker failures never get here,
            # they are contained per-shard by the supervision above
            supervisor.stats.mode = "pool+inline"
            supervisor.stats.fallback_reason = f"{type(exc).__name__}: {exc}"
            supervisor.run_inline()
    supervisor.stats.timed_out.sort()
    supervisor.stats.quarantined.sort()
    supervisor.stats.wall_s = time.perf_counter() - supervisor.start
    return supervisor.results, supervisor.stats
