"""Deterministic shard planning and the degradable process pool.

:func:`plan_shards` turns a work list into at most ``jobs`` shards with
a stable greedy longest-processing-time packing: items are considered in
descending weight (ties broken by original position) and each goes to
the currently lightest shard (ties broken by shard index).  Equal inputs
always produce equal plans, and within a shard the original submission
order is preserved -- both facts the determinism tests rely on.

:func:`run_sharded` executes one picklable task per shard on a
:class:`concurrent.futures.ProcessPoolExecutor` with an optional
per-process *initializer* (the worker warm-start: build the netlist or
model once per worker, not once per task).  Results come back in shard
order regardless of completion order; ``on_result`` fires the moment a
shard is collected (completion order, via
:func:`concurrent.futures.wait`), so a checkpointing caller never waits
for a slow shard 0 before durably recording a finished shard 3.
Failures degrade, never crash:

* a pool-layer failure (fork refusal, unpicklable payload, a worker
  killed mid-task) switches the remaining shards to inline in-process
  execution (``mode="pool+inline"``, reason recorded);
* an overall ``timeout_s`` marks uncollected shards in
  ``stats.timed_out``, returns ``None`` for them -- the caller decides
  how to degrade (the fault campaign emits ``truncated`` verdicts) --
  and *terminates* the still-running worker processes
  (``stats.killed_workers``): a timed-out campaign must not leak
  CPU-burning workers behind the returned call.

For per-shard retry, poison-shard quarantine and per-shard deadlines,
see the supervised sibling :func:`repro.par.supervise.run_supervised`.

Per-shard wall-clock is measured *inside* the worker, so
:class:`ParStats` reports honest compute times: ``critical_path_s`` is
the longest shard and ``speedup_estimate`` the speedup the plan would
deliver given at least ``jobs`` free cores.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional, Sequence

__all__ = ["ParStats", "plan_shards", "run_sharded"]


def plan_shards(
    items: Sequence,
    jobs: int,
    weight: Optional[Callable[[object], float]] = None,
) -> list[list]:
    """Pack ``items`` into at most ``jobs`` shards, deterministically.

    With no ``weight`` every item counts 1 (round-robin-like balance);
    with one, the classic greedy LPT heuristic keeps the heaviest items
    spread across shards, which is what makes the 4-bank fault campaign
    scale (three ASM faults carry ~90% of its cost).  Empty shards are
    dropped.  ``jobs <= 1`` returns a single shard with the original
    order.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [items] if items else []
    n_shards = min(jobs, len(items))
    weights = [1.0 if weight is None else float(weight(it)) for it in items]
    order = sorted(range(len(items)), key=lambda i: (-weights[i], i))
    loads = [0.0] * n_shards
    assigned: list[list[int]] = [[] for __ in range(n_shards)]
    for i in order:
        target = min(range(n_shards), key=lambda s: (loads[s], s))
        loads[target] += weights[i]
        assigned[target].append(i)
    # preserve submission order within each shard
    return [
        [items[i] for i in sorted(shard)] for shard in assigned if shard
    ]


class ParStats:
    """Execution accounting of one :func:`run_sharded` call."""

    def __init__(self, jobs: int, shards: int):
        self.jobs = jobs
        self.shards = shards
        #: "inline" | "pool" | "pool+inline" (degraded mid-flight)
        self.mode = "inline"
        #: why the pool was abandoned, when it was
        self.fallback_reason: Optional[str] = None
        #: worker-measured wall-clock per shard (shard order)
        self.shard_wall_s: list[float] = []
        #: shard indices never collected before ``timeout_s`` expired
        self.timed_out: list[int] = []
        #: overall wall-clock of the run_sharded call
        self.wall_s = 0.0
        #: shard attempts beyond the first (supervised runs only)
        self.retries = 0
        #: shard indices quarantined after exhausting their attempt
        #: budget (supervised runs only; each has a ShardError result)
        self.quarantined: list[int] = []
        #: worker processes forcibly terminated (hung-shard reaping and
        #: overall-timeout cleanup)
        self.killed_workers = 0
        #: shards answered from a write-ahead journal instead of being
        #: recomputed (supervised resume)
        self.journal_hits = 0

    @property
    def critical_path_s(self) -> float:
        """The longest shard: the plan's lower bound on wall-clock."""
        return max(self.shard_wall_s, default=0.0)

    @property
    def total_shard_s(self) -> float:
        """Sum of per-shard compute (the sequential-equivalent cost)."""
        return sum(self.shard_wall_s)

    @property
    def speedup_estimate(self) -> float:
        """Speedup the shard plan supports given >= ``jobs`` free cores
        (sequential-equivalent over critical path; 1.0 when degenerate)."""
        critical = self.critical_path_s
        if critical <= 0.0:
            return 1.0
        return self.total_shard_s / critical

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "shards": self.shards,
            "mode": self.mode,
            "fallback_reason": self.fallback_reason,
            "shard_wall_s": [round(s, 4) for s in self.shard_wall_s],
            "timed_out": list(self.timed_out),
            "wall_s": round(self.wall_s, 4),
            "critical_path_s": round(self.critical_path_s, 4),
            "speedup_estimate": round(self.speedup_estimate, 3),
            "retries": self.retries,
            "quarantined": list(self.quarantined),
            "killed_workers": self.killed_workers,
            "journal_hits": self.journal_hits,
        }

    def __repr__(self):
        return (
            f"ParStats(jobs={self.jobs}, shards={self.shards}, "
            f"mode={self.mode}, wall={self.wall_s:.2f}s)"
        )


def _timed_call(task, args) -> tuple[float, object]:
    """Worker-side wrapper: execute and measure one shard."""
    start = time.perf_counter()
    value = task(*args)
    return time.perf_counter() - start, value


def _mp_context():
    """Fork when the platform has it (cheap warm-start: workers inherit
    loaded modules), otherwise the platform default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_sharded(
    task: Callable,
    shard_args: Sequence[tuple],
    *,
    jobs: int = 1,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    timeout_s: Optional[float] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
) -> tuple[list, ParStats]:
    """Run ``task(*args)`` for every args-tuple in ``shard_args``.

    Returns ``(results, stats)`` with results in shard order.  A shard
    abandoned by the overall ``timeout_s`` yields ``None`` (tasks must
    therefore never legitimately return ``None``) and its index lands in
    ``stats.timed_out``.  ``jobs <= 1`` (or a single shard) runs inline
    with identical semantics -- including the initializer call, so
    worker warm-start caches behave the same in both modes.

    ``on_result(index, value)`` fires in the coordinator the moment each
    shard's result is collected (completion order, not index order) --
    the checkpointing hook: a killed coordinator has durably recorded
    every shard already collected, and a slow shard never delays the
    checkpointing of a fast one.
    """
    shard_args = list(shard_args)
    stats = ParStats(jobs, len(shard_args))
    start = time.perf_counter()
    deadline = None if timeout_s is None else start + timeout_s
    results: list = [None] * len(shard_args)
    collected = [False] * len(shard_args)
    stats.shard_wall_s = [0.0] * len(shard_args)

    def run_inline(indices) -> None:
        if initializer is not None:
            initializer(*initargs)
        for i in indices:
            if deadline is not None and time.perf_counter() > deadline:
                stats.timed_out.append(i)
                continue
            wall, value = _timed_call(task, shard_args[i])
            stats.shard_wall_s[i] = wall
            results[i] = value
            collected[i] = True
            if on_result is not None:
                on_result(i, value)

    if jobs <= 1 or len(shard_args) <= 1:
        run_inline(range(len(shard_args)))
        stats.wall_s = time.perf_counter() - start
        return results, stats

    try:
        workers = min(jobs, len(shard_args))
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            index_of = {
                pool.submit(_timed_call, task, args): i
                for i, args in enumerate(shard_args)
            }
            outstanding = set(index_of)
            while outstanding:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.perf_counter())
                done, outstanding = wait(
                    outstanding, timeout=remaining,
                    return_when=FIRST_COMPLETED,
                )
                if not done:  # overall deadline expired
                    for future in outstanding:
                        future.cancel()
                        stats.timed_out.append(index_of[future])
                    # cancel() cannot stop a *running* task: reap the
                    # worker processes so a timed-out campaign does not
                    # leave them burning CPU behind the returned call
                    for proc in list(getattr(pool, "_processes",
                                             {}).values()):
                        if proc.is_alive():
                            proc.terminate()
                            stats.killed_workers += 1
                    break
                for future in done:
                    i = index_of[future]
                    wall, value = future.result()  # raises -> ladder
                    stats.shard_wall_s[i] = wall
                    results[i] = value
                    collected[i] = True
                    if on_result is not None:
                        on_result(i, value)
        stats.mode = "pool"
    except Exception as exc:
        # the degradation ladder: any pool-layer failure (broken pool,
        # pickling trouble, fork refusal) finishes the job inline -- a
        # deterministic task that re-raises inline propagates, which is
        # the same outcome sequential execution would have had
        stats.mode = "pool+inline"
        stats.fallback_reason = f"{type(exc).__name__}: {exc}"
        run_inline(i for i in range(len(shard_args)) if not collected[i])
    stats.timed_out.sort()
    stats.wall_s = time.perf_counter() - start
    return results, stats
