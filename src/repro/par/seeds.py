"""Hash-based seed-stream splitting.

Arithmetic seed schedules (``seed + 7919 * round``) are fragile under
resharding: two different ``(round, walk)`` pairs can collide, and
changing the job count silently reorders which walk consumes which RNG
stream.  :func:`derive_seed` replaces them with a keyed hash: the seed of
every stream is a pure function of the root seed and the stream's
*labels* (strings, indices, tuples -- anything with a stable ``repr``),
so shard order and job count cannot perturb any stream.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed"]

#: seeds are confined to 63 bits so they stay exact in any JSON tooling
_SEED_MASK = (1 << 63) - 1


def derive_seed(*parts) -> int:
    """Derive a 63-bit seed from ``parts`` by hashing.

    Each part is framed as ``<typename>:<repr>`` before hashing, so
    ``derive_seed(1)`` and ``derive_seed("1")`` are distinct streams and
    no concatenation ambiguity exists between adjacent parts.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(f"{type(part).__name__}:{part!r}".encode())
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "big") & _SEED_MASK
