"""Reproduction of *On the Design and Verification Methodology of the
Look-Aside Interface* (Habibi, Ahmed, Ait Mohamed, Tahar -- DATE 2004).

The package implements the paper's complete design-and-verification flow
for the LA-1 network-processor interface, together with every substrate
the flow depends on:

* :mod:`repro.sysc` -- SystemC-like event-driven simulation kernel.
* :mod:`repro.rtl` -- synthesizable RTL IR, synchronous simulator and
  Verilog emitter.
* :mod:`repro.asm` -- Abstract State Machine framework (AsmL analogue)
  with bounded exploration, conformance testing and exploration-based
  model checking.
* :mod:`repro.psl` -- Property Specification Language subset (Boolean /
  temporal / verification / modeling layers, SEREs, checker automata).
* :mod:`repro.bdd` -- ROBDD engine.
* :mod:`repro.mc` -- RuleBase-style symbolic model checker over RTL.
* :mod:`repro.ovl` -- Open Verification Library style assertion monitors
  instantiated as RTL modules.
* :mod:`repro.abv` -- assertion-based verification with external ("C#")
  monitors bound to kernel-level models.
* :mod:`repro.uml` -- UML class / use-case / clock-annotated sequence
  diagrams and property extraction.
* :mod:`repro.core` -- the LA-1 interface itself at all four abstraction
  levels plus the refinement flow of the paper's Figure 2.
"""

__version__ = "1.0.0"

__all__ = [
    "sysc",
    "rtl",
    "asm",
    "psl",
    "bdd",
    "mc",
    "ovl",
    "abv",
    "uml",
    "core",
]
