"""Symbolic encoding of a flattened RTL design.

This is the front half of the RuleBase substitute: it bit-blasts a
:class:`~repro.rtl.netlist.FlatDesign` into BDDs --

* every register bit becomes a *current* variable ``path[i]`` and a
  *next* variable ``path[i]'``;
* every free input bit becomes an input variable;
* when the design uses both LA-1 clock domains a ``phase`` state bit is
  added: even steps are rising-K edges, odd steps rising-K# edges, and a
  register's next-state function holds its value on the other domain's
  edges (the standard way to model-check a DDR design at half-cycle
  granularity);
* combinational nets become vectors of BDD functions over state and
  input variables, with tristate nets lowered to priority muxes.

Variable order is interleaved current/next by default (see
:mod:`repro.bdd.ordering`), which the ordering ablation compares against
the naive order.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bdd import BddManager, interleaved_order, naive_order, NEXT_SUFFIX
from ..rtl.hdl import (
    BinOp,
    Concat,
    Const,
    Expr,
    Mux,
    Reduce,
    Ref,
    Slice,
    UnOp,
)
from ..rtl.netlist import FlatDesign, FlatNet

__all__ = ["SymbolicModel"]

PHASE_VAR = "__phase"


class SymbolicModel:
    """BDD-encoded transition system of a flattened RTL design."""

    def __init__(
        self,
        design: FlatDesign,
        node_budget: Optional[int] = None,
        ordering: str = "interleaved",
        aux_slots: int = 16,
        coi_roots: Optional[Sequence[str]] = None,
    ):
        """``aux_slots`` reserves variable pairs early in the order for
        property-automaton state bits: satellite automata correlate with
        the design signals they label, so placing their variables near the
        front (instead of after every bank) keeps the reached-set BDD
        small -- the same consideration RuleBase users tuned orders for.

        ``coi_roots`` (flat net paths) restricts the encoding to the
        cone of influence of the listed nets before any BDD variable is
        created: registers and logic a property never observes do not get
        state variables at all.  The reduced design shares net objects
        with the original, so it must only be used for symbolic encoding,
        never simulated."""
        if coi_roots is not None:
            from ..lint.coi import reduce_design

            design = reduce_design(design, coi_roots)
        self.design = design
        self.manager = BddManager(node_budget=node_budget)
        self._net_bits: dict[FlatNet, list[int]] = {}
        self._state_bit_names: list[str] = []
        self._input_bit_names: list[str] = []
        self._aux_free: list[str] = []
        self._aux_slots = aux_slots
        self._build_variables(ordering)
        self._compile_nets()
        self._build_next_functions()
        self._build_init()

    # ------------------------------------------------------------------
    # variable creation
    # ------------------------------------------------------------------
    def _bit_names(self, flat: FlatNet) -> list[str]:
        if flat.width == 1:
            return [flat.path]
        return [f"{flat.path}[{i}]" for i in range(flat.width)]

    def _build_variables(self, ordering: str) -> None:
        design = self.design
        self.multi_clock = len(design.clocks) > 1
        if len(design.clocks) > 2:
            raise ValueError(
                "symbolic model supports at most two clock domains "
                f"(got {design.clocks})"
            )
        state_bits: list[str] = []
        if self.multi_clock:
            state_bits.append(PHASE_VAR)
        for reg in design.regs:
            state_bits.extend(self._bit_names(reg))
        input_bits: list[str] = []
        for inp in design.inputs:
            input_bits.extend(self._bit_names(inp))
        aux_names = [f"__aux{i}" for i in range(self._aux_slots)]
        if ordering == "interleaved":
            order = interleaved_order(aux_names + state_bits, input_bits)
        elif ordering == "naive":
            order = naive_order(aux_names + state_bits, input_bits)
        else:
            raise ValueError(f"unknown ordering {ordering!r}")
        for name in order:
            self.manager.add_var(name)
        self._aux_free = list(aux_names)
        self._state_bit_names = state_bits
        self._input_bit_names = input_bits
        # expose per-net variable vectors
        for reg in design.regs:
            self._net_bits[reg] = [
                self.manager.var(n) for n in self._bit_names(reg)
            ]
        for inp in design.inputs:
            self._net_bits[inp] = [
                self.manager.var(n) for n in self._bit_names(inp)
            ]
        if self.multi_clock:
            self.phase = self.manager.var(PHASE_VAR)

    # ------------------------------------------------------------------
    # combinational compilation
    # ------------------------------------------------------------------
    def _compile_nets(self) -> None:
        for flat in self.design.comb_order:
            self._net_bits[flat] = self._compile_flat(flat)

    def _compile_flat(self, flat: FlatNet) -> list[int]:
        m = self.manager
        if flat.tristate is not None:
            # priority mux over drivers, undriven value 0
            bits = [m.FALSE] * flat.width
            for driver in reversed(flat.tristate):
                enable = self._compile_expr(driver.enable, flat.scope)[0]
                value = self._compile_expr(driver.value, flat.scope)
                bits = [m.ite(enable, v, b) for v, b in zip(value, bits)]
            return bits
        assert flat.expr is not None
        return self._compile_expr(flat.expr, flat.scope)

    def _compile_expr(self, expr: Expr, scope: dict) -> list[int]:
        m = self.manager
        if isinstance(expr, Const):
            return [
                m.TRUE if (expr.value >> i) & 1 else m.FALSE
                for i in range(expr.width)
            ]
        if isinstance(expr, Ref):
            flat = scope[expr.net]
            return list(self._net_bits[flat])
        if isinstance(expr, UnOp):
            return [m.not_(b) for b in self._compile_expr(expr.a, scope)]
        if isinstance(expr, BinOp):
            a = self._compile_expr(expr.a, scope)
            b = self._compile_expr(expr.b, scope)
            if expr.op == "and":
                return [m.and_(x, y) for x, y in zip(a, b)]
            if expr.op == "or":
                return [m.or_(x, y) for x, y in zip(a, b)]
            if expr.op == "xor":
                return [m.xor(x, y) for x, y in zip(a, b)]
            if expr.op == "eq":
                acc = m.TRUE
                for x, y in zip(a, b):
                    acc = m.and_(acc, m.xnor(x, y))
                return [acc]
            if expr.op == "add":
                # ripple-carry adder, result truncated to operand width
                out: list[int] = []
                carry = m.FALSE
                for x, y in zip(a, b):
                    out.append(m.xor(m.xor(x, y), carry))
                    carry = m.or_(
                        m.and_(x, y), m.and_(carry, m.or_(x, y))
                    )
                return out
        if isinstance(expr, Mux):
            sel = self._compile_expr(expr.sel, scope)[0]
            t = self._compile_expr(expr.if_true, scope)
            f = self._compile_expr(expr.if_false, scope)
            return [m.ite(sel, x, y) for x, y in zip(t, f)]
        if isinstance(expr, Slice):
            bits = self._compile_expr(expr.a, scope)
            return bits[expr.lo : expr.hi + 1]
        if isinstance(expr, Concat):
            out = []
            for part in expr.parts:
                out.extend(self._compile_expr(part, scope))
            return out
        if isinstance(expr, Reduce):
            bits = self._compile_expr(expr.a, scope)
            if expr.op == "xor":
                acc = m.FALSE
                for b in bits:
                    acc = m.xor(acc, b)
            elif expr.op == "or":
                acc = m.FALSE
                for b in bits:
                    acc = m.or_(acc, b)
            else:
                acc = m.TRUE
                for b in bits:
                    acc = m.and_(acc, b)
            return [acc]
        raise TypeError(f"cannot compile {expr!r}")

    # ------------------------------------------------------------------
    # transition and init
    # ------------------------------------------------------------------
    def _build_next_functions(self) -> None:
        m = self.manager
        self.next_functions: dict[str, int] = {}
        if self.multi_clock:
            self.next_functions[PHASE_VAR] = m.not_(self.phase)
        # phase == 0 -> rising K (clocks[0] in sorted order is "K" before
        # "K#"), phase == 1 -> rising K#
        clocks = self.design.clocks
        for reg in self.design.regs:
            names = self._bit_names(reg)
            scope = reg.scope
            assert reg.next_expr is not None
            next_bits = self._compile_expr(reg.next_expr, scope)
            current_bits = self._net_bits[reg]
            if self.multi_clock:
                clock_index = clocks.index(reg.clock)
                enable = (
                    m.not_(self.phase) if clock_index == 0 else self.phase
                )
                next_bits = [
                    m.ite(enable, nb, cb)
                    for nb, cb in zip(next_bits, current_bits)
                ]
            for name, bit in zip(names, next_bits):
                self.next_functions[name] = bit

    def _build_init(self) -> None:
        m = self.manager
        init = m.TRUE
        if self.multi_clock:
            init = m.and_(init, m.not_(self.phase))
        for reg in self.design.regs:
            for i, name in enumerate(self._bit_names(reg)):
                bit = m.var(name)
                if (reg.init >> i) & 1:
                    init = m.and_(init, bit)
                else:
                    init = m.and_(init, m.not_(bit))
        self.init = init

    # ------------------------------------------------------------------
    # public helpers
    # ------------------------------------------------------------------
    @property
    def state_bits(self) -> list[str]:
        """Current-state variable names."""
        return list(self._state_bit_names)

    @property
    def input_bits(self) -> list[str]:
        """Free input variable names."""
        return list(self._input_bit_names)

    def net_bdd(self, path: str) -> list[int]:
        """The BDD vector of any flat net by hierarchical path."""
        return list(self._net_bits[self.design.net(path)])

    def net_bit(self, path: str, bit: int = 0) -> int:
        """One bit of a net as a BDD."""
        return self._net_bits[self.design.net(path)][bit]

    def add_state_var(self, name: str, next_function: int, init_value: bool) -> int:
        """Add an auxiliary state bit (used to embed property automata).

        The variable (and its primed copy) must already exist in the
        manager -- use :meth:`declare_aux_vars` before compiling the
        next function.
        """
        self._state_bit_names.append(name)
        self.next_functions[name] = next_function
        bit = self.manager.var(name)
        self.init = self.manager.and_(
            self.init, bit if init_value else self.manager.not_(bit)
        )
        return bit

    def alloc_aux_vars(self, count: int) -> list[str]:
        """Allocate ``count`` auxiliary state variables.

        Reserved early-order slots are used first; when exhausted, extra
        variables (and their primed copies) are appended at the end of
        the order, which still works but orders worse.
        """
        names: list[str] = []
        for __ in range(count):
            if self._aux_free:
                names.append(self._aux_free.pop(0))
            else:
                name = f"__aux_late{len(self._state_bit_names)}_{len(names)}"
                self.manager.add_var(name)
                self.manager.add_var(name + NEXT_SUFFIX)
                names.append(name)
        return names

    def declare_aux_vars(self, names: list[str]) -> dict[str, int]:
        """Declare auxiliary state variables (current + next) at the end
        of the order; returns ``{name: current_var_bdd}``.

        Prefer :meth:`alloc_aux_vars`, which uses the reserved
        early-order slots.
        """
        result = {}
        for name in names:
            result[name] = self.manager.add_var(name)
            self.manager.add_var(name + NEXT_SUFFIX)
        return result
