"""Parallel PSL property sweeps over one RTL design.

A RuleBase session checks a *suite* of properties against the same
netlist; the properties are independent, so the sweep is the natural
third fan-out axis of :mod:`repro.par`: one process-pool task per
property, every worker elaborating the design once
(:func:`repro.par.workers.mc_sweep_init`) and re-encoding the symbolic
model per property (checker automata are satellite state variables and
must not accumulate across checks).

:func:`sweep_rtl_properties` returns a :class:`PropertySweepReport`
whose :meth:`~PropertySweepReport.combined` collapses the per-property
results into one :class:`~repro.mc.checker.SymbolicCheckResult` with
conjunction semantics -- sweeping the three read-mode conjuncts reaches
the same verdict as checking their conjunction in one run, which is how
``run_flow(jobs=N)`` parallelizes its RTL model-checking stage.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..psl.ast import Property
from .checker import SymbolicCheckResult

__all__ = ["PropertySweepReport", "sweep_rtl_properties"]


class PropertySweepReport:
    """Per-property results of one sweep plus pool accounting."""

    def __init__(self, results: list, par_stats: Optional[dict] = None,
                 quarantined: Optional[list] = None):
        #: list of (name, SymbolicCheckResult), in suite order
        self.results = list(results)
        #: ParStats.to_dict() of the underlying supervised run
        self.par_stats = dict(par_stats or {})
        #: names of properties whose shard was quarantined (worker
        #: failed every attempt) -- no verdict exists for them, so the
        #: sweep's conjunction degrades to inconclusive, never to a
        #: silent pass
        self.quarantined = list(quarantined or [])

    @property
    def holds(self) -> Optional[bool]:
        """Conjunction verdict: ``False`` if any property fails,
        ``None`` if any is inconclusive (exploded/truncated/quarantined)
        and none fails, else ``True``."""
        verdicts = [r.holds for __, r in self.results]
        if any(v is False for v in verdicts):
            return False
        if self.quarantined or any(v is not True for v in verdicts):
            return None
        return True

    def failures(self) -> list:
        return [(name, r) for name, r in self.results if r.holds is False]

    def combined(self) -> SymbolicCheckResult:
        """One aggregate result with conjunction semantics: CPU times
        add (the sequential-equivalent cost), size metrics take the
        per-property maximum (the worst single encoding), explosion or
        truncation anywhere taints the whole sweep, and the shallowest
        counterexample is reported."""
        results = [r for __, r in self.results]
        cex_depths = [
            r.counterexample_depth for r in results
            if r.counterexample_depth is not None
        ]
        bdd_stats: dict = {}
        for r in results:
            for key, value in (r.bdd_stats or {}).items():
                if isinstance(value, (int, float)) and not isinstance(
                        value, bool):
                    bdd_stats[key] = bdd_stats.get(key, 0) + value
        names = ",".join(name for name, __ in self.results)
        return SymbolicCheckResult(
            self.holds,
            sum(r.cpu_time for r in results),
            max((r.peak_nodes for r in results), default=0),
            max((r.reached_size for r in results), default=0),
            max((r.iterations for r in results), default=0),
            max((r.memory_mb for r in results), default=0.0),
            exploded=any(r.exploded for r in results),
            counterexample_depth=min(cex_depths, default=None),
            property_name=f"sweep({names})",
            truncated=any(r.truncated for r in results),
            bdd_stats=bdd_stats,
        )

    def to_dict(self) -> dict:
        return {
            "holds": self.holds,
            "properties": [
                {"name": name, **r.to_dict()} for name, r in self.results
            ],
            "quarantined": list(self.quarantined),
            "par": self.par_stats,
        }

    def __repr__(self):
        return (
            f"PropertySweepReport({len(self.results)} properties, "
            f"holds={self.holds})"
        )


def sweep_rtl_properties(
    banks: int,
    properties: Sequence[Tuple[str, Property]],
    datapath: bool = True,
    jobs: int = 1,
    shard_attempts: int = 2,
    shard_deadline_s: Optional[float] = None,
    engine: str = "bdd",
    **options,
) -> PropertySweepReport:
    """Check every named property against the N-bank LA-1 RTL.

    ``properties`` is a ``[(name, Property), ...]`` suite (e.g.
    :func:`repro.core.properties.read_mode_suite`).  With ``jobs > 1``
    each property is one process-pool task; workers share a per-process
    elaborated design via the warm-start initializer.  ``jobs=1`` runs
    the same tasks inline against a locally cached design -- verdicts
    are identical either way (BDD reachability is deterministic), only
    wall-clock differs.  The sweep runs supervised
    (:func:`repro.par.run_supervised`): a crashed or hung worker is
    reaped and its property retried up to ``shard_attempts`` times
    (``shard_deadline_s`` bounds one property's wall-clock); a property
    quarantined after the budget lands in
    :attr:`PropertySweepReport.quarantined` and degrades the sweep to
    inconclusive rather than aborting it.

    ``engine`` picks the per-property checker: ``"bdd"`` (default)
    routes through :func:`repro.core.rulebase.check_read_mode_rtl`,
    ``"sat"`` through :func:`repro.sat.bmc.check_read_mode_sat`
    (BMC + k-induction past the BDD explosion wall); extra ``options``
    pass through to the selected checker (budgets, deadline, ``coi``,
    and for SAT ``max_k``/``max_depth``/``method``).
    """
    from ..par import ShardError, run_supervised
    from ..par.workers import mc_check_shard, mc_sweep_init, \
        sat_check_shard

    if engine not in ("bdd", "sat"):
        raise ValueError(f"unknown mc engine {engine!r}")
    shard_fn = sat_check_shard if engine == "sat" else mc_check_shard
    shard_args = [
        (banks, datapath, name, prop, dict(options))
        for name, prop in properties
    ]
    results, stats = run_supervised(
        shard_fn,
        shard_args,
        jobs=jobs,
        initializer=mc_sweep_init,
        initargs=(banks, datapath),
        max_attempts=shard_attempts,
        shard_deadline_s=shard_deadline_s,
    )
    paired = []
    quarantined = []
    for (name, __), result in zip(properties, results):
        if isinstance(result, ShardError):
            quarantined.append(name)
        elif result is not None:
            paired.append((name, SymbolicCheckResult.from_dict(result)))
    return PropertySweepReport(paired, stats.to_dict(), quarantined)
