"""The RuleBase-style symbolic model checker.

Given a symbolically encoded RTL design (:class:`SymbolicModel`) and a PSL
safety property, this module

1. builds the property's deterministic checker automaton
   (:func:`repro.psl.automata.build_checker`),
2. embeds the automaton as auxiliary binary-encoded state variables whose
   next-state functions read the design's labelled signals -- exactly how
   RuleBase compiles Sugar/PSL into "satellite" state machines,
3. runs BDD-based forward reachability, flagging the property violated as
   soon as a reachable state drives the automaton into its failure state,
4. reports the metrics of the paper's Table 2 -- CPU time, memory estimate
   and BDD node counts -- and converts
   :class:`~repro.bdd.BddBudgetExceeded` into a *state explosion* verdict.

Labelled signals map PSL atoms to design nets: ``{"atom": ("path", bit)}``
or arbitrary pre-built BDDs.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from ..bdd import BddBudgetExceeded, NEXT_SUFFIX
from ..psl.ast import Property, PslError
from ..psl.automata import CheckerAutomaton, build_checker
from .transition import SymbolicModel

__all__ = ["SymbolicCheckResult", "SymbolicModelChecker"]


class SymbolicCheckResult:
    """Verdict plus Table 2 metrics.

    ``holds`` is True / False / None; None means the run did not decide:
    either it aborted with *state explosion* (BDD node budget exhausted,
    the 4-bank outcome of Table 2, ``exploded=True``) or it hit its
    wall-clock deadline (``truncated=True``).  ``bdd_stats`` carries the
    manager's node/computed-table counters
    (:meth:`repro.bdd.BddManager.stats`) so degradation triggers are
    observable in campaign and flow reports.
    """

    def __init__(
        self,
        holds: Optional[bool],
        cpu_time: float,
        peak_nodes: int,
        reached_size: int,
        iterations: int,
        memory_mb: float,
        exploded: bool = False,
        counterexample_depth: Optional[int] = None,
        property_name: str = "property",
        truncated: bool = False,
        bdd_stats: Optional[dict] = None,
    ):
        self.holds = holds
        self.cpu_time = cpu_time
        self.peak_nodes = peak_nodes
        self.reached_size = reached_size
        self.iterations = iterations
        self.memory_mb = memory_mb
        self.exploded = exploded
        self.counterexample_depth = counterexample_depth
        self.property_name = property_name
        self.truncated = truncated
        self.bdd_stats = dict(bdd_stats or {})

    def to_dict(self) -> dict:
        """Pipe-friendly form (used by the parallel property sweep)."""
        return {
            "holds": self.holds,
            "cpu_time": self.cpu_time,
            "peak_nodes": self.peak_nodes,
            "reached_size": self.reached_size,
            "iterations": self.iterations,
            "memory_mb": self.memory_mb,
            "exploded": self.exploded,
            "counterexample_depth": self.counterexample_depth,
            "property_name": self.property_name,
            "truncated": self.truncated,
            "bdd_stats": self.bdd_stats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SymbolicCheckResult":
        return cls(
            data.get("holds"),
            data.get("cpu_time", 0.0),
            data.get("peak_nodes", 0),
            data.get("reached_size", 0),
            data.get("iterations", 0),
            data.get("memory_mb", 0.0),
            exploded=data.get("exploded", False),
            counterexample_depth=data.get("counterexample_depth"),
            property_name=data.get("property_name", "property"),
            truncated=data.get("truncated", False),
            bdd_stats=data.get("bdd_stats"),
        )

    def __repr__(self):
        if self.exploded:
            verdict = "STATE EXPLOSION"
        elif self.truncated:
            verdict = "TRUNCATED"
        else:
            verdict = {True: "HOLDS", False: "FAILS", None: "UNKNOWN"}[self.holds]
        return (
            f"SymbolicCheckResult({self.property_name}: {verdict}, "
            f"cpu={self.cpu_time:.3f}s, bdds={self.peak_nodes}, "
            f"mem={self.memory_mb:.1f}MB, iters={self.iterations})"
        )


class SymbolicModelChecker:
    """Forward-reachability safety checking over a :class:`SymbolicModel`.

    Parameters
    ----------
    model:
        The symbolically encoded design.  Its manager's ``node_budget``
        (if any) caps *transient* allocation within one image step.
    live_node_budget:
        Cap on the *live* BDD size (reached set + transition partitions)
        measured after each garbage collection -- the RuleBase "memory
        exhausted" analogue.  Exceeding it yields a state-explosion
        verdict.
    gc_threshold:
        Allocation level that triggers a copying garbage collection
        between iterations.
    """

    def __init__(self, model: SymbolicModel,
                 live_node_budget: Optional[int] = None,
                 gc_threshold: int = 600000):
        self.model = model
        self.live_node_budget = live_node_budget
        self.gc_threshold = gc_threshold

    # ------------------------------------------------------------------
    def check_property(
        self,
        prop: Property,
        labels: dict[str, Union[tuple, int]],
        name: str = "property",
        max_iterations: int = 10000,
        deadline_s: Optional[float] = None,
    ) -> SymbolicCheckResult:
        """Check a PSL safety property against the design.

        ``labels`` maps every atom of the property to either a
        ``("net.path", bit_index)`` pair or a pre-built BDD over the
        model's variables.  ``deadline_s`` is a wall-clock budget: a run
        that exceeds it returns cleanly with ``truncated=True`` instead
        of spinning.
        """
        if not prop.is_safety():
            raise PslError(f"{prop!r} is not a safety property")
        model = self.model
        m = model.manager
        start = time.perf_counter()
        try:
            checker = build_checker(prop)
            atom_bdds = self._resolve_labels(checker, labels)
            bad = self._embed_automaton(checker, atom_bdds, name)
            return self._reachability(bad, start, name, max_iterations,
                                      deadline_s)
        except BddBudgetExceeded:
            elapsed = time.perf_counter() - start
            return SymbolicCheckResult(
                None,
                elapsed,
                m.peak_nodes,
                0,
                0,
                m.estimated_memory_bytes() / 1e6,
                exploded=True,
                property_name=name,
                bdd_stats=m.stats(),
            )

    def check_invariant(
        self, bad: int, name: str = "invariant", max_iterations: int = 10000,
        deadline_s: Optional[float] = None,
    ) -> SymbolicCheckResult:
        """Check that the ``bad`` BDD (over current vars/inputs) is
        unreachable."""
        start = time.perf_counter()
        try:
            return self._reachability(bad, start, name, max_iterations,
                                      deadline_s)
        except BddBudgetExceeded:
            m = self.model.manager
            elapsed = time.perf_counter() - start
            return SymbolicCheckResult(
                None,
                elapsed,
                m.peak_nodes,
                0,
                0,
                m.estimated_memory_bytes() / 1e6,
                exploded=True,
                property_name=name,
                bdd_stats=m.stats(),
            )

    # ------------------------------------------------------------------
    def _resolve_labels(self, checker: CheckerAutomaton, labels: dict) -> dict:
        model = self.model
        atom_bdds: dict[str, int] = {}
        for atom in checker.atoms:
            if atom not in labels:
                raise PslError(f"no label mapping for atom {atom!r}")
            spec = labels[atom]
            if isinstance(spec, tuple):
                path, bit = spec
                atom_bdds[atom] = model.net_bit(path, bit)
            else:
                atom_bdds[atom] = spec
        return atom_bdds

    def _embed_automaton(
        self, checker: CheckerAutomaton, atom_bdds: dict, name: str
    ) -> int:
        """Add automaton state bits to the model as satellite state.

        Returns the *combinational* fail condition -- the BDD over current
        automaton state and labelled signals that is true exactly when
        the current cycle's valuation reveals a violation.  Using the
        condition (rather than a registered fail bit) makes the reported
        counterexample depth equal the failing cycle.
        """
        model = self.model
        m = model.manager
        num_states = checker.num_states
        width = max(1, (num_states - 1).bit_length()) if num_states > 1 else 1
        bit_names = model.alloc_aux_vars(width)

        state_bits = [m.var(n) for n in bit_names]

        def state_eq(index: int) -> int:
            acc = m.TRUE
            for i, bit in enumerate(state_bits):
                if (index >> i) & 1:
                    acc = m.and_(acc, bit)
                else:
                    acc = m.and_(acc, m.not_(bit))
            return acc

        def key_match(key: tuple) -> int:
            acc = m.TRUE
            for atom, value in zip(checker.atoms, key):
                bdd = atom_bdds[atom]
                acc = m.and_(acc, bdd if value else m.not_(bdd))
            return acc

        # next-state functions per automaton bit + combinational fail
        next_bits = [m.FALSE] * width
        fail_cond = m.FALSE
        from itertools import product

        keys = list(product((False, True), repeat=len(checker.atoms)))
        for src in range(num_states):
            src_bdd = state_eq(src)
            for key in keys:
                dst = checker.transition(src, key)
                cond = m.and_(src_bdd, key_match(key))
                if dst == CheckerAutomaton.FAIL_STATE:
                    fail_cond = m.or_(fail_cond, cond)
                    continue
                for i in range(width):
                    if (dst >> i) & 1:
                        next_bits[i] = m.or_(next_bits[i], cond)
        for bname, bit_fn in zip(bit_names, next_bits):
            model.add_state_var(bname, bit_fn, init_value=False)
        return fail_cond

    # ------------------------------------------------------------------
    def _reachability(
        self, bad: int, start: float, name: str, max_iterations: int,
        deadline_s: Optional[float] = None,
    ) -> SymbolicCheckResult:
        model = self.model
        m = model.manager
        deadline = None if deadline_s is None else start + deadline_s
        state_vars = model.state_bits
        input_vars = model.input_bits
        next_names = [v + NEXT_SUFFIX for v in state_vars]
        rename_back = dict(zip(next_names, state_vars))

        # partitioned transition relation: one conjunct per state bit
        partitions = []
        for var in state_vars:
            nxt = m.var(var + NEXT_SUFFIX)
            partitions.append(m.xnor(nxt, model.next_functions[var]))

        # early-quantification schedule: a current/input variable can be
        # quantified out as soon as the last partition reading it has been
        # conjoined into the relational product (IWLS95-style)
        quantifiable = set(state_vars) | set(input_vars)
        supports = [m.support(p) & quantifiable for p in partitions]
        last_use = {v: -1 for v in quantifiable}
        for i, support in enumerate(supports):
            for v in support:
                last_use[v] = i
        release_at: list[list[str]] = [[] for __ in partitions]
        unused_anywhere: list[str] = []
        for v, i in last_use.items():
            if i >= 0:
                release_at[i].append(v)
            else:
                unused_anywhere.append(v)

        reached = model.init
        frontier = model.init
        iterations = 0
        peak_live = m.num_nodes
        peak_alloc = m.num_nodes

        def metrics() -> tuple[int, float]:
            return max(peak_live, peak_alloc), (
                max(peak_live, peak_alloc) * 88 / 1e6
            )

        def explosion() -> SymbolicCheckResult:
            elapsed = time.perf_counter() - start
            nodes, mem = metrics()
            return SymbolicCheckResult(
                None, elapsed, nodes, 0, iterations, mem,
                exploded=True, property_name=name, bdd_stats=m.stats(),
            )

        def timed_out() -> SymbolicCheckResult:
            elapsed = time.perf_counter() - start
            nodes, mem = metrics()
            return SymbolicCheckResult(
                None, elapsed, nodes, m.size(reached), iterations, mem,
                property_name=name, truncated=True, bdd_stats=m.stats(),
            )

        if m.and_(reached, bad) != m.FALSE:
            elapsed = time.perf_counter() - start
            nodes, mem = metrics()
            return SymbolicCheckResult(
                False, elapsed, nodes, m.size(reached), 0, mem,
                counterexample_depth=0, property_name=name,
                bdd_stats=m.stats(),
            )
        try:
            while frontier != m.FALSE and iterations < max_iterations:
                if deadline is not None and time.perf_counter() > deadline:
                    return timed_out()
                iterations += 1
                # image of the frontier with early quantification:
                # variables leave the product as soon as no later
                # partition reads them
                product_bdd = m.exists(unused_anywhere, frontier) \
                    if unused_anywhere else frontier
                for part, released in zip(partitions, release_at):
                    product_bdd = m.and_(product_bdd, part)
                    if released:
                        product_bdd = m.exists(released, product_bdd)
                image = m.rename(product_bdd, rename_back)
                new = m.and_(image, m.not_(reached))
                if new == m.FALSE:
                    break
                if m.and_(new, bad) != m.FALSE:
                    elapsed = time.perf_counter() - start
                    nodes, mem = metrics()
                    return SymbolicCheckResult(
                        False, elapsed, nodes, m.size(reached), iterations,
                        mem, counterexample_depth=iterations,
                        property_name=name, bdd_stats=m.stats(),
                    )
                reached = m.or_(reached, new)
                frontier = new
                peak_alloc = max(peak_alloc, m.num_nodes)
                # copying garbage collection: drop dead nodes, then judge
                # *live* size against the budget (the RuleBase memory wall)
                if m.num_nodes > self.gc_threshold:
                    fresh = m.clone_empty()
                    fresh.node_budget = m.node_budget
                    roots = [reached, frontier, bad] + partitions
                    copied = m.copy_roots(fresh, roots)
                    reached, frontier, bad = copied[0], copied[1], copied[2]
                    partitions = copied[3:]
                    m = fresh
                    peak_live = max(peak_live, m.num_nodes)
                    if (
                        self.live_node_budget is not None
                        and m.num_nodes > self.live_node_budget
                    ):
                        return explosion()
        except BddBudgetExceeded:
            return explosion()
        elapsed = time.perf_counter() - start
        peak_alloc = max(peak_alloc, m.num_nodes)
        reached_size = m.size(reached)
        peak_live = max(peak_live, reached_size)
        nodes, mem = metrics()
        return SymbolicCheckResult(
            True, elapsed, nodes, reached_size, iterations, mem,
            property_name=name, bdd_stats=m.stats(),
        )
