"""``repro.mc`` -- the RuleBase-style symbolic model checker.

Bit-blasts flattened RTL into BDDs (:class:`SymbolicModel`), embeds PSL
checker automata as satellite state machines and runs BDD forward
reachability (:class:`SymbolicModelChecker`), reporting Table 2's metrics
(CPU time, memory, BDD counts) and detecting state explosion through the
BDD node budget.
"""

from .transition import PHASE_VAR, SymbolicModel
from .checker import SymbolicCheckResult, SymbolicModelChecker
from .sweep import PropertySweepReport, sweep_rtl_properties

__all__ = [
    "SymbolicModel",
    "SymbolicModelChecker",
    "SymbolicCheckResult",
    "PHASE_VAR",
    "PropertySweepReport",
    "sweep_rtl_properties",
]
