"""repro.serve -- fault-tolerant verification-as-a-service.

The service layer turns the repository's batch verification tools into
a shared environment: an asyncio, stdlib-only HTTP front-end
(:mod:`repro.serve.server`) accepts fault-campaign, coverage-testgen,
model-checking and full-flow jobs (:mod:`repro.serve.jobs`), dedupes
them by content fingerprint into a crash-safe content-addressed result
store (:mod:`repro.serve.store`), and streams incremental verdicts as
shards land.  Durability rests on the write-ahead journal
(:mod:`repro.serve.journal`) shared with the supervised execution layer
in :mod:`repro.par.supervise`.

Quick start::

    PYTHONPATH=src python -m repro.serve --root /tmp/la1-serve
    curl -s -X POST localhost:8642/jobs \\
        -d '{"kind": "campaign", "spec": {"banks": 1, "jobs": 4}}'
"""

from .jobs import (
    JOB_KINDS,
    CampaignJob,
    CoverJob,
    FlowJob,
    Job,
    McJob,
    build_job,
)
from .journal import Journal
from .server import JobRecord, VerificationServer, serve_in_thread
from .store import ResultStore, content_key

__all__ = [
    "JOB_KINDS",
    "CampaignJob",
    "CoverJob",
    "FlowJob",
    "Job",
    "JobRecord",
    "Journal",
    "McJob",
    "ResultStore",
    "VerificationServer",
    "build_job",
    "content_key",
    "serve_in_thread",
]
