"""CLI for the verification service: ``python -m repro.serve``.

Two modes:

* default -- bind the HTTP front-end and serve until interrupted::

      PYTHONPATH=src python -m repro.serve --root /tmp/la1-serve --port 8642

* ``--smoke`` -- the CI end-to-end check: start an ephemeral server,
  submit a 1-bank fault campaign (with an induced worker kill mid-run)
  and a coverage job over real HTTP, stream the campaign's verdict
  events, and assert both final reports are bit-identical to inline
  ``jobs=1`` goldens computed in-process.  Exercises the whole ladder:
  HTTP parsing, job adapters, supervised retry after a worker crash,
  the content-addressed store (a resubmission must be a cache hit) and
  event streaming.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
import urllib.error
import urllib.request


def _http(method: str, url: str, payload: dict | None = None) -> dict:
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read().decode())


def _wait_terminal(base: str, job_id: str, timeout_s: float = 180.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        record = _http("GET", f"{base}/jobs/{job_id}")
        if record["status"] in ("done", "cached", "error", "interrupted"):
            return record
        time.sleep(0.1)
    raise SystemExit(f"smoke: job {job_id} did not finish in {timeout_s}s")


def _campaign_signature(report: dict) -> list:
    """Timing-independent identity of a campaign report dict."""
    return sorted(
        (v["fault_id"], v["outcome"], tuple(v["detected_by"]))
        for v in report["faults"]
    )


def _check(label: str, ok: bool) -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if not ok:
        raise SystemExit(f"smoke failed: {label}")


def smoke() -> int:
    import os

    from ..fault.campaign import CampaignConfig, FaultCampaign
    from ..par.workers import la1_model_spec
    from .server import serve_in_thread

    print("serve smoke: computing inline goldens (jobs=1, no chaos)")
    campaign_spec = {"banks": 1, "traffic": 10, "seed": 2004,
                     "rtl_cycles": 120}
    golden_campaign = FaultCampaign(CampaignConfig(
        banks=1, traffic=10, seed=2004, rtl_cycles=120)).run(jobs=1)

    from ..cover.testgen import undirected_suite
    cover_spec = {"banks": 1, "mode": "undirected", "seed": 7,
                  "max_tests": 4, "walk_steps": 12}
    spec = la1_model_spec(1)
    machine, predicates = spec.build()
    golden_cover = undirected_suite(machine, predicates, num_tests=4,
                                    walk_steps=12, seed=7, jobs=1)

    with tempfile.TemporaryDirectory(prefix="la1-serve-smoke-") as root:
        server, stop = serve_in_thread(root, max_workers=2)
        base = f"http://127.0.0.1:{server.port}"
        try:
            health = _http("GET", f"{base}/healthz")
            _check("healthz responds", health.get("ok") is True)

            # campaign over HTTP, parallel, with one induced worker
            # kill: the first worker to claim the marker dies with
            # os._exit(137) mid-shard and supervision must retry it
            kill_marker = os.path.join(root, "chaos.kill")
            submitted = _http("POST", f"{base}/jobs", {
                "kind": "campaign",
                "spec": {**campaign_spec, "jobs": 2,
                         "chaos_kill_marker": kill_marker},
            })
            record = _wait_terminal(base, submitted["id"])
            _check("campaign finished clean",
                   record["status"] == "done")
            report = record["result"]
            _check("induced worker kill was claimed",
                   os.path.exists(kill_marker))
            _check("campaign verdicts match inline golden",
                   _campaign_signature(report)
                   == _campaign_signature(golden_campaign.to_dict()))
            _check("campaign counts match inline golden",
                   report["counts"] == golden_campaign.counts())

            # the event stream must carry one verdict per fault
            events = urllib.request.urlopen(
                f"{base}/jobs/{submitted['id']}/events",
                timeout=60).read().decode().splitlines()
            parsed = [json.loads(line) for line in events]
            _check("event stream terminates with done",
                   parsed[-1]["type"] == "done")
            _check("event stream carries every verdict",
                   sum(1 for e in parsed if e.get("type") == "verdict")
                   == len(report["faults"]))

            # resubmission of identical content must hit the store
            again = _http("POST", f"{base}/jobs", {
                "kind": "campaign", "spec": dict(campaign_spec)})
            _check("identical resubmission is a store hit",
                   again["status"] == "cached"
                   and again["key"] == submitted["key"])

            # coverage testgen over HTTP, parallel
            submitted = _http("POST", f"{base}/jobs", {
                "kind": "cover", "spec": {**cover_spec, "jobs": 2}})
            record = _wait_terminal(base, submitted["id"])
            _check("cover job finished clean", record["status"] == "done")
            _check("cover coverage matches inline golden",
                   record["result"]["history"] == golden_cover.history)
            _check("cover db matches inline golden",
                   record["result"]["db"] == golden_cover.db.to_dict())

            # malformed work is a 400, not a server death
            try:
                _http("POST", f"{base}/jobs", {"kind": "nope", "spec": {}})
                bad = False
            except urllib.error.HTTPError as exc:
                bad = exc.code == 400
            _check("unknown job kind is a 400", bad)
            _check("server survived it all",
                   _http("GET", f"{base}/healthz")["ok"] is True)
        finally:
            stop()
    print("serve smoke: all checks passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="fault-tolerant verification-as-a-service front-end",
    )
    parser.add_argument("--root", default=None,
                        help="state directory (store + journal + spool); "
                             "default: a temporary directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument("--max-workers", type=int, default=2,
                        help="concurrent jobs executed server-side")
    parser.add_argument("--smoke", action="store_true",
                        help="run the end-to-end CI smoke check and exit")
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke()

    from .server import VerificationServer

    async def run() -> None:
        root = args.root or tempfile.mkdtemp(prefix="la1-serve-")
        server = VerificationServer(args.root or root, args.host,
                                    args.port,
                                    max_workers=args.max_workers)
        await server.start()
        print(f"repro.serve listening on http://{args.host}:{server.port} "
              f"(state: {root})")
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("repro.serve: interrupted, shutting down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
