"""Crash-safe write-ahead journaling for coordinators and the server.

A :class:`Journal` is an append-only JSONL file with one durability
guarantee: :meth:`append` returns only after the record's bytes are
flushed *and* fsync'd, so a coordinator killed at any instant finds
every record it ever appended -- except possibly a torn final line,
which a crash mid-``write`` can leave behind.  :meth:`replay` therefore
treats a truncated or corrupt *tail* line as the end of the journal
(with a warning) instead of an error; a corrupt line in the *middle*
also stops replay there, on the grounds that nothing after a torn write
can be trusted to have been ordered correctly.

The first record of a journal is conventionally a ``header`` carrying a
fingerprint of the work the journal describes.  :meth:`matches` lets a
resuming coordinator refuse a journal written for different work (the
records would be meaningless) without crashing: a mismatched journal
simply replays as empty.

Used by :func:`repro.par.supervise.run_supervised` to make shard
results durable the moment they are collected, and by
:class:`repro.serve.server.VerificationServer` to persist job
submissions and completions across restarts.
"""

from __future__ import annotations

import io
import json
import os
import warnings
from typing import Iterator, Optional

__all__ = ["Journal"]


class Journal:
    """An append-only, fsync'd JSONL journal.

    The file handle opens lazily on first :meth:`append` (a journal that
    is only ever replayed never creates its file) and stays open for the
    journal's lifetime so repeated appends pay one ``fsync`` each, not
    an open/close pair.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[io.TextIOBase] = None
        #: records appended by *this* process (replayed ones excluded)
        self.appended = 0

    # -- writing -------------------------------------------------------
    def _handle(self) -> io.TextIOBase:
        if self._fh is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: dict) -> None:
        """Durably append one record: newline-framed canonical JSON,
        flushed and fsync'd before returning."""
        fh = self._handle()
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        self.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay --------------------------------------------------------
    def replay(self) -> Iterator[dict]:
        """Yield every intact record in append order.

        A missing file replays as empty.  A torn line (crash mid-write)
        ends the replay with a warning; everything before it is intact
        by the fsync-per-append contract.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    warnings.warn(
                        f"journal {self.path}: discarding torn record at "
                        f"line {lineno} (crash mid-write); replay stops "
                        "here",
                        stacklevel=2,
                    )
                    return
                if not isinstance(record, dict):
                    warnings.warn(
                        f"journal {self.path}: non-object record at line "
                        f"{lineno}; replay stops here",
                        stacklevel=2,
                    )
                    return
                yield record

    def matches(self, fingerprint: dict) -> bool:
        """True when the journal is empty/new or its header record's
        fingerprint equals ``fingerprint`` -- the guard a resuming
        coordinator uses before trusting replayed shard results."""
        for record in self.replay():
            if record.get("type") == "header":
                return record.get("fingerprint") == fingerprint
            return False  # first record is not a header: unknown origin
        return True

    def __repr__(self):
        return f"Journal({self.path!r}, appended={self.appended})"
