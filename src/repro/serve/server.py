"""The asyncio verification service front-end (stdlib-only HTTP).

One long-lived server turns the batch verification tools into a shared,
fault-tolerant environment many engineers hammer concurrently -- the
"common reusable verification environment" the methodology papers call
for.  The HTTP surface is deliberately tiny and dependency-free
(:func:`asyncio.start_server` plus a hand-rolled HTTP/1.1 parser):

=====================  ================================================
``GET  /healthz``      liveness + store/job accounting
``POST /jobs``         submit ``{"kind": ..., "spec": {...}}``; returns
                       the job id, its content key, and -- on a store
                       hit -- the cached result immediately
``GET  /jobs``         all job records (id, kind, key, status)
``GET  /jobs/<id>``    one record, with its result once finished
``GET  /jobs/<id>/events``  NDJSON stream: every incremental event
                       (campaign verdicts as their shard lands), then a
                       terminal ``{"type": "done"}`` line
``GET  /store/<key>``  the content-addressed result payload
=====================  ================================================

Fault containment is layered: worker crashes/hangs/poison shards are
contained by the supervised pool *inside* a job
(:func:`repro.par.run_supervised`); a job whose adapter itself raises
lands in status ``error`` with the traceback, never taking the server
down; and the server journals every submission and completion to its
write-ahead journal, so a crashed-and-restarted server knows which jobs
were interrupted -- their per-key checkpoints and shard journals under
the spool directory make resubmission resume instead of recompute.

Deduplication is content-addressed: submissions with equal ``(kind,
fingerprint)`` share one computation while in flight (the second
submitter receives the first one's job id) and one stored result
forever after (the store hit path).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import threading
import time
import traceback
from typing import Optional

from .jobs import build_job
from .journal import Journal
from .store import ResultStore

__all__ = ["JobRecord", "VerificationServer", "serve_in_thread"]

#: terminal job states (event streams end when these are reached)
_TERMINAL = ("done", "cached", "error")


class JobRecord:
    """The server-side life of one submitted job."""

    def __init__(self, job_id: str, kind: str, key: str, spec: dict):
        self.job_id = job_id
        self.kind = kind
        self.key = key
        self.spec = spec
        #: queued | running | done | cached | error | interrupted
        self.status = "queued"
        self.events: list[dict] = []
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def to_dict(self, with_result: bool = False) -> dict:
        out = {
            "id": self.job_id,
            "kind": self.kind,
            "key": self.key,
            "status": self.status,
            "events": len(self.events),
            "error": self.error,
        }
        if with_result:
            out["result"] = self.result
        return out


class VerificationServer:
    """The asyncio front-end plus its durable state (store + journal)."""

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0,
                 max_workers: int = 2):
        self.root = root
        self.host = host
        self.port = port
        self.store = ResultStore(os.path.join(root, "store"))
        self.spool = os.path.join(root, "spool")
        self.journal = Journal(os.path.join(root, "serve.journal"))
        self.records: dict[str, JobRecord] = {}
        self._by_key: dict[str, JobRecord] = {}
        self._ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._semaphore = asyncio.Semaphore(max_workers)
        self._recover()

    # -- crash recovery ------------------------------------------------
    def _recover(self) -> None:
        """Replay the server journal: submissions without a matching
        completion were interrupted by a crash.  Their records resurface
        as ``interrupted`` -- resubmitting the same work resumes from
        the per-key checkpoint/journal in the spool directory."""
        open_jobs: dict[str, dict] = {}
        last_id = 0
        for record in self.journal.replay():
            kind = record.get("type")
            if kind == "submit":
                open_jobs[record["id"]] = record
                try:
                    last_id = max(last_id, int(record["id"].lstrip("j")))
                except ValueError:  # pragma: no cover - foreign id
                    pass
            elif kind == "finish":
                open_jobs.pop(record["id"], None)
        self._ids = itertools.count(last_id + 1)
        for job_id, sub in open_jobs.items():
            record = JobRecord(job_id, sub.get("kind", "?"),
                               sub.get("key", "?"), sub.get("spec", {}))
            record.status = "interrupted"
            record.error = "server was killed while this job ran"
            self.records[job_id] = record

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.journal.close()

    # -- job execution -------------------------------------------------
    def submit(self, kind: str, spec: dict) -> JobRecord:
        """Validate, dedupe, journal and schedule one submission.
        Raises ``ValueError`` for malformed work (the 400 path)."""
        job = build_job(kind, spec)
        key = job.key()
        cached = self.store.get(key)
        if cached is not None:
            record = JobRecord(f"j{next(self._ids)}", kind, key, spec)
            record.status = "cached"
            record.result = cached
            record.finished_at = time.time()
            self.records[record.job_id] = record
            return record
        inflight = self._by_key.get(key)
        if inflight is not None and not inflight.terminal:
            return inflight  # identical work already running: share it
        record = JobRecord(f"j{next(self._ids)}", kind, key, spec)
        self.records[record.job_id] = record
        self._by_key[key] = record
        self.journal.append({
            "type": "submit", "id": record.job_id, "kind": kind,
            "key": key, "spec": spec,
        })
        asyncio.get_running_loop().create_task(self._execute(record, job))
        return record

    async def _execute(self, record: JobRecord, job) -> None:
        loop = asyncio.get_running_loop()

        def emit(event: dict) -> None:
            # called from the worker thread: hand the event to the loop
            loop.call_soon_threadsafe(record.events.append, event)

        async with self._semaphore:
            record.status = "running"
            try:
                result = await loop.run_in_executor(
                    None, job.run, emit, self.spool)
            except Exception:
                record.status = "error"
                record.error = traceback.format_exc(limit=5)
            else:
                self.store.put(record.key, result)
                record.result = result
                record.status = "done"
            record.finished_at = time.time()
            self.journal.append({
                "type": "finish", "id": record.job_id, "key": record.key,
                "status": record.status,
            })

    # -- HTTP plumbing -------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            await self._route(writer, method, path, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away: its problem, not the service's
        except Exception:  # noqa: BLE001 - the server must not die
            try:
                await self._respond(writer, 500, {
                    "error": traceback.format_exc(limit=3)})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    async def _read_request(reader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return method, path, body

    @staticmethod
    async def _respond(writer, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed",
                  500: "Internal Server Error"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body)
        await writer.drain()

    async def _route(self, writer, method: str, path: str,
                     body: bytes) -> None:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            counts: dict[str, int] = {}
            for record in self.records.values():
                counts[record.status] = counts.get(record.status, 0) + 1
            await self._respond(writer, 200, {
                "ok": True,
                "jobs": counts,
                "store": self.store.stats(),
                "journal_records": self.journal.appended,
            })
        elif path == "/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode() or "{}")
                if not isinstance(payload, dict):
                    raise ValueError("request body must be a JSON object")
                record = self.submit(
                    str(payload.get("kind", "")),
                    payload.get("spec") or {},
                )
            except ValueError as exc:
                await self._respond(writer, 400, {"error": str(exc)})
                return
            await self._respond(
                writer, 200,
                record.to_dict(with_result=record.status == "cached"))
        elif path == "/jobs" and method == "GET":
            await self._respond(writer, 200, {
                "jobs": [r.to_dict() for r in self.records.values()],
            })
        elif path.startswith("/jobs/") and method == "GET":
            parts = path.split("/")  # ['', 'jobs', id, ...]
            record = self.records.get(parts[2])
            if record is None:
                await self._respond(writer, 404,
                                    {"error": f"no job {parts[2]!r}"})
            elif len(parts) == 3:
                await self._respond(writer, 200,
                                    record.to_dict(with_result=True))
            elif len(parts) == 4 and parts[3] == "events":
                await self._stream_events(writer, record)
            else:
                await self._respond(writer, 404, {"error": "bad path"})
        elif path.startswith("/store/") and method == "GET":
            key = path.split("/")[2]
            payload = self.store.get(key)
            if payload is None:
                await self._respond(writer, 404,
                                    {"error": f"no entry {key!r}"})
            else:
                await self._respond(writer, 200, payload)
        elif path in ("/", "/jobs") or path.startswith(
                ("/jobs/", "/store/", "/healthz")):
            await self._respond(writer, 405,
                                {"error": f"{method} not allowed here"})
        else:
            await self._respond(writer, 404, {"error": f"no route {path}"})

    async def _stream_events(self, writer, record: JobRecord) -> None:
        """NDJSON event stream: incremental verdicts the moment their
        shard lands, then a terminal ``done`` line.  Sent with
        ``Connection: close`` framing, so any HTTP/1.x client that reads
        to EOF consumes it."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n")
        await writer.drain()
        sent = 0
        while True:
            while sent < len(record.events):
                line = json.dumps(record.events[sent], sort_keys=True)
                writer.write(line.encode() + b"\n")
                sent += 1
            await writer.drain()
            if record.terminal or record.status == "interrupted":
                break
            await asyncio.sleep(0.05)
        writer.write(json.dumps({
            "type": "done", "status": record.status, "events": sent,
            "key": record.key,
        }, sort_keys=True).encode() + b"\n")
        await writer.drain()


def serve_in_thread(root: str, host: str = "127.0.0.1", port: int = 0,
                    max_workers: int = 2):
    """Run a :class:`VerificationServer` on a background thread.

    Returns ``(server, stop)``: the started server (``server.port`` is
    the bound port) and a ``stop()`` that shuts the loop down and joins
    the thread.  The helper the tests, the chaos bench and ``--smoke``
    all use; production deployments run :mod:`repro.serve.__main__`
    instead.
    """
    started = threading.Event()
    box: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = VerificationServer(root, host, port,
                                    max_workers=max_workers)
        loop.run_until_complete(server.start())
        box["server"] = server
        box["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            loop.close()

    thread = threading.Thread(target=runner, name="repro-serve",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=10):  # pragma: no cover - startup wedge
        raise RuntimeError("verification server failed to start")

    def stop() -> None:
        box["loop"].call_soon_threadsafe(box["loop"].stop)
        thread.join(timeout=10)

    return box["server"], stop
