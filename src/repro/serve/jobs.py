"""Job adapters: the verification engines behind a uniform service API.

Every job kind wraps one batch tool of the methodology -- fault
campaigns (:mod:`repro.fault`), coverage-driven testgen
(:mod:`repro.cover`), RTL model-checking sweeps (:mod:`repro.mc`) and
the full Figure-2 flow (:mod:`repro.core.flow`) -- behind three
methods:

* :meth:`Job.fingerprint` -- the *content identity* of the work: every
  field that can change the result (design shape, stimulus seed,
  workload config) and none that cannot (process/lane fan-out, retry
  budgets, chaos markers).  Two submissions with equal fingerprints are
  the same work, so the server dedupes them onto one computation and
  one content-addressed store entry (:func:`repro.serve.store.content_key`
  of ``(kind, fingerprint)``).
* :meth:`Job.run` -- execute, streaming incremental events through the
  ``emit`` callback as shards land (campaign verdicts the moment their
  shard is collected -- the supervised pool's out-of-order
  ``on_result``), returning the JSON result payload.
* per-key work directories -- a job given a ``workdir`` places its
  checkpoint and write-ahead journal there under its content key, so a
  job interrupted by a server crash resumes on resubmission without
  recomputing collected work.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from .store import content_key

__all__ = ["Job", "CampaignJob", "CoverJob", "McJob", "FlowJob",
           "JOB_KINDS", "build_job"]

Emit = Callable[[dict], None]


def _get(spec: dict, key: str, default, kinds) -> object:
    value = spec.get(key, default)
    if value is not None and not isinstance(value, kinds):
        raise ValueError(f"job field {key!r} must be {kinds}, "
                         f"got {type(value).__name__}")
    return value


class Job:
    """One unit of verification work behind the service."""

    kind = "abstract"

    def __init__(self, spec: dict):
        if not isinstance(spec, dict):
            raise ValueError("job spec must be a JSON object")
        self.spec = dict(spec)
        # execution knobs: shape the *how*, never the result content
        self.jobs = int(_get(spec, "jobs", 1, (int,)))
        self.lanes = int(_get(spec, "lanes", 1, (int,)))
        self.shard_attempts = int(_get(spec, "shard_attempts", 2, (int,)))
        self.shard_deadline_s = _get(
            spec, "shard_deadline_s", None, (int, float))

    def fingerprint(self) -> dict:
        raise NotImplementedError

    def key(self) -> str:
        return content_key(self.kind, self.fingerprint())

    def run(self, emit: Emit, workdir: Optional[str] = None) -> dict:
        raise NotImplementedError

    def _spool(self, workdir: Optional[str], suffix: str) -> Optional[str]:
        """A durable per-content-key scratch path under ``workdir``."""
        if not workdir:
            return None
        os.makedirs(workdir, exist_ok=True)
        return os.path.join(workdir, f"{self.key()}.{suffix}")

    def __repr__(self):
        return f"{type(self).__name__}({self.fingerprint()!r})"


class CampaignJob(Job):
    """A fault-injection campaign (:class:`repro.fault.FaultCampaign`)."""

    kind = "campaign"

    def __init__(self, spec: dict):
        super().__init__(spec)
        # a repro.dsl.zoo design name switches the campaign workload
        # from the LA-1 transaction host to the open-loop DSL stimulus
        self.design = _get(spec, "design", None, (str,))
        self.banks = int(_get(spec, "banks", 2, (int,)))
        self.traffic = int(_get(spec, "traffic", 24, (int,)))
        self.seed = int(_get(spec, "seed", 2004, (int,)))
        self.backend = str(_get(spec, "backend",
                                "interp" if self.design else "compiled",
                                (str,)))
        self.rtl_cycles = int(_get(spec, "rtl_cycles",
                                   32 if self.design else 160, (int,)))
        self.max_faults = _get(spec, "max_faults", None, (int,))
        # stimulus patterns per fault are workload content (verdicts
        # merge across patterns); the per-pass tiling cap is not
        self.patterns = int(_get(spec, "patterns", 1, (int,)))
        self.patterns_per_pass = _get(spec, "patterns_per_pass", None,
                                      (int,))
        self.deadline_s = _get(spec, "deadline_s", None, (int, float))
        # chaos markers ride the spec (smoke/bench only) but are
        # execution-side: they must not perturb the content identity
        self.chaos_kill_marker = _get(
            spec, "chaos_kill_marker", None, (str,))
        self.chaos_hang_marker = _get(
            spec, "chaos_hang_marker", None, (str,))

    def fingerprint(self) -> dict:
        fingerprint = {
            "banks": self.banks,
            "traffic": self.traffic,
            "seed": self.seed,
            "backend": self.backend,
            "rtl_cycles": self.rtl_cycles,
            "max_faults": self.max_faults,
        }
        if self.patterns > 1:
            # conditional key: single-pattern submissions keep their
            # pre-pattern content identity (and store entries)
            fingerprint["patterns"] = self.patterns
        if self.design:
            # content identity of the *elaborated netlist*, not of the
            # Python frontend source: an edit that lowers identically
            # (comments, names of locals) dedupes onto the same work
            from ..dsl.elab import netlist_fingerprint
            from ..dsl.zoo import build_elaborated

            fingerprint["design"] = self.design
            fingerprint["netlist"] = netlist_fingerprint(
                build_elaborated(self.design))
        return fingerprint

    def run(self, emit: Emit, workdir: Optional[str] = None) -> dict:
        from ..fault.campaign import CampaignConfig, FaultCampaign

        config = CampaignConfig(
            design=self.design,
            banks=self.banks,
            traffic=self.traffic,
            seed=self.seed,
            backend=self.backend,
            rtl_cycles=self.rtl_cycles,
            max_faults=self.max_faults,
            patterns=self.patterns,
            campaign_deadline_s=self.deadline_s,
            checkpoint_path=self._spool(workdir, "ckpt.json"),
            journal_path=self._spool(workdir, "wal.jsonl"),
            shard_attempts=self.shard_attempts,
            shard_deadline_s=self.shard_deadline_s,
            chaos_kill_marker=self.chaos_kill_marker,
            chaos_hang_marker=self.chaos_hang_marker,
        )
        report = FaultCampaign(config).run(
            jobs=self.jobs,
            lanes=self.lanes,
            patterns_per_pass=self.patterns_per_pass,
            on_verdict=lambda v: emit({
                "type": "verdict",
                "fault_id": v.fault_id,
                "outcome": v.outcome,
                "detected_by": v.detected_by,
            }),
        )
        return report.to_dict()


class CoverJob(Job):
    """Coverage-driven (or undirected) test generation.

    ``vehicle`` selects the stimulus model: ``"asm"`` (default) walks
    the abstract machine; ``"traffic"`` drives seeded LA-1 transaction
    streams through the RTL netlist
    (:class:`repro.cover.traffic_walk.La1TrafficModel`), where the
    ``lanes`` execution knob packs that many candidates per
    bit-parallel scoring pass.
    """

    kind = "cover"

    def __init__(self, spec: dict):
        super().__init__(spec)
        self.banks = int(_get(spec, "banks", 2, (int,)))
        self.mode = str(_get(spec, "mode", "directed", (str,)))
        if self.mode not in ("directed", "undirected"):
            raise ValueError(f"unknown cover mode {self.mode!r}")
        self.vehicle = str(_get(spec, "vehicle", "asm", (str,)))
        if self.vehicle not in ("asm", "traffic"):
            raise ValueError(f"unknown cover vehicle {self.vehicle!r}")
        self.seed = int(_get(spec, "seed", 0, (int,)))
        self.max_tests = int(_get(spec, "max_tests", 8, (int,)))
        self.walk_steps = int(_get(spec, "walk_steps", 16, (int,)))
        self.candidates_per_round = int(
            _get(spec, "candidates_per_round", 8, (int,)))
        self.target = float(_get(spec, "target", 1.0, (int, float)))
        self.plateau_rounds = int(_get(spec, "plateau_rounds", 3, (int,)))

    def fingerprint(self) -> dict:
        fingerprint = {
            "banks": self.banks,
            "mode": self.mode,
            "seed": self.seed,
            "max_tests": self.max_tests,
            "walk_steps": self.walk_steps,
            "candidates_per_round": self.candidates_per_round,
            "target": self.target,
            "plateau_rounds": self.plateau_rounds,
        }
        if self.vehicle != "asm":
            # conditional key: ASM submissions keep their pre-vehicle
            # content identity (and store entries)
            fingerprint["vehicle"] = self.vehicle
        return fingerprint

    def run(self, emit: Emit, workdir: Optional[str] = None) -> dict:
        from ..cover.testgen import coverage_driven_suite, undirected_suite
        from ..par.workers import la1_model_spec, la1_traffic_model_spec

        if self.vehicle == "traffic":
            spec = la1_traffic_model_spec(
                self.banks, seed=self.seed, lanes=self.lanes)
        else:
            spec = la1_model_spec(self.banks)
        machine, predicates = spec.build()
        if self.mode == "directed":
            result = coverage_driven_suite(
                machine, predicates,
                target=self.target,
                max_tests=self.max_tests,
                candidates_per_round=self.candidates_per_round,
                walk_steps=self.walk_steps,
                seed=self.seed,
                plateau_rounds=self.plateau_rounds,
                jobs=self.jobs,
                model_spec=spec,
                lanes=self.lanes,
            )
        else:
            result = undirected_suite(
                machine, predicates,
                num_tests=self.max_tests,
                walk_steps=self.walk_steps,
                seed=self.seed,
                jobs=self.jobs,
                model_spec=spec,
                lanes=self.lanes,
            )
        for index, coverage in enumerate(result.history):
            emit({"type": "round", "test": index,
                  "coverage": round(coverage, 6)})
        return {
            "mode": self.mode,
            "num_tests": result.num_tests,
            "coverage": result.coverage,
            "history": result.history,
            "reached_target": result.reached_target,
            "plateaued": result.plateaued,
            "candidates_scored": result.candidates_scored,
            "db": result.db.to_dict(),
        }


class McJob(Job):
    """A read-mode RTL model-checking sweep (:mod:`repro.mc`)."""

    kind = "mc"

    def __init__(self, spec: dict):
        super().__init__(spec)
        self.banks = int(_get(spec, "banks", 2, (int,)))
        self.datapath = bool(_get(spec, "datapath", False, (bool, int)))

    def fingerprint(self) -> dict:
        return {"banks": self.banks, "datapath": self.datapath}

    def run(self, emit: Emit, workdir: Optional[str] = None) -> dict:
        from ..core.properties import read_mode_suite
        from ..mc import sweep_rtl_properties

        sweep = sweep_rtl_properties(
            self.banks,
            read_mode_suite(1),
            datapath=self.datapath,
            jobs=self.jobs,
            shard_attempts=self.shard_attempts,
            shard_deadline_s=self.shard_deadline_s,
        )
        for name, result in sweep.results:
            emit({"type": "property", "name": name, "holds": result.holds})
        return sweep.to_dict()


class FlowJob(Job):
    """The full Figure-2 flow (:func:`repro.core.flow.run_flow`)."""

    kind = "flow"

    def __init__(self, spec: dict):
        super().__init__(spec)
        # a repro.dsl.zoo design name runs the DSL flow
        # (repro.dsl.flow.run_dsl_flow) instead of the LA-1 Figure-2 flow
        self.design = _get(spec, "design", None, (str,))
        self.banks = int(_get(spec, "banks", 2, (int,)))
        self.traffic = int(_get(spec, "traffic", 40, (int,)))
        self.seed = int(_get(spec, "seed", 2004, (int,)))
        self.rtl_mc = _get(spec, "rtl_mc", "control", (str,))
        self.mc_engine = str(_get(spec, "mc_engine", "sat", (str,)))
        self.coverage = bool(_get(spec, "coverage", True, (bool, int)))

    def fingerprint(self) -> dict:
        if self.design:
            from ..dsl.elab import netlist_fingerprint
            from ..dsl.zoo import build_elaborated

            return {
                "design": self.design,
                "netlist": netlist_fingerprint(
                    build_elaborated(self.design)),
                "seed": self.seed,
                "mc_engine": self.mc_engine,
            }
        return {
            "banks": self.banks,
            "traffic": self.traffic,
            "seed": self.seed,
            "rtl_mc": self.rtl_mc,
            "coverage": self.coverage,
        }

    def run(self, emit: Emit, workdir: Optional[str] = None) -> dict:
        if self.design:
            from ..dsl.flow import run_dsl_flow

            report = run_dsl_flow(self.design, seed=self.seed,
                                  mc_engine=self.mc_engine)
            stages = []
            for stage in report.stages:
                emit({"type": "stage", "name": stage.name, "ok": stage.ok})
                stages.append({
                    "name": stage.name,
                    "ok": stage.ok,
                    "detail": stage.detail,
                    "cpu_time": round(stage.cpu_time, 4),
                })
            return {
                "ok": report.ok,
                "design": self.design,
                "fingerprint": report.fingerprint,
                "stages": stages,
            }
        from ..core.flow import FlowConfig, run_flow

        report = run_flow(FlowConfig(
            banks=self.banks,
            traffic=self.traffic,
            seed=self.seed,
            rtl_mc=self.rtl_mc,
            coverage=self.coverage,
            jobs=self.jobs,
            shard_attempts=self.shard_attempts,
            shard_deadline_s=self.shard_deadline_s,
        ))
        stages = []
        for stage in report.stages:
            emit({"type": "stage", "name": stage.name, "ok": stage.ok})
            stages.append({
                "name": stage.name,
                "ok": stage.ok,
                "detail": stage.detail,
                "cpu_time": round(stage.cpu_time, 4),
            })
        return {
            "ok": report.ok,
            "stages": stages,
            "verilog_lines": len(report.verilog.splitlines()),
        }


JOB_KINDS = {
    job.kind: job for job in (CampaignJob, CoverJob, McJob, FlowJob)
}


def build_job(kind: str, spec: dict) -> Job:
    """Instantiate and validate one job; raises ``ValueError`` for an
    unknown kind or malformed spec (the server's 400 path)."""
    try:
        factory = JOB_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown job kind {kind!r}; expected one of "
            f"{sorted(JOB_KINDS)}"
        ) from None
    return factory(spec)
