"""The content-addressed result store behind the verification service.

Results are addressed by the blake2b hash of the *work's identity* --
for a campaign job that is ``(design fingerprint, stimulus seed,
config)``, canonically JSON-encoded by :func:`content_key` -- so two
users submitting the same verification work share one computation and
one stored result, regardless of submission order or concurrency.

Durability contract (the store may be hammered by many writers and
survive kill -9 at any instant):

* writes are atomic: the payload lands in a same-directory temp file,
  is flushed and fsync'd, and only then renamed over the final path
  with ``os.replace`` (readers see the old entry or the new one, never
  a torn one); the containing directory is fsync'd so the rename itself
  survives a crash;
* a corrupt entry (torn by a pre-atomic writer, or bit-rotted) reads as
  a *miss with a warning*, never an exception -- the service recomputes
  and atomically replaces it; the corrupt file is quarantined aside
  with a ``.corrupt`` suffix for post-mortem.

Entries are sharded into 256 two-hex-digit subdirectories so a store
holding millions of results never puts millions of entries in one
directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from typing import Optional

__all__ = ["content_key", "ResultStore"]


def content_key(kind: str, fingerprint: dict) -> str:
    """The content address of one piece of verification work: blake2b
    over the canonical JSON of ``(kind, fingerprint)``.  Equal work --
    regardless of dict ordering -- hashes equal; any semantic difference
    (one more bank, a different stimulus seed) lands elsewhere."""
    canon = json.dumps([kind, fingerprint], sort_keys=True,
                       separators=(",", ":"))
    return hashlib.blake2b(canon.encode(), digest_size=16).hexdigest()


def _fsync_dir(path: str) -> None:
    """Make a rename in ``path`` durable (POSIX directory fsync)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ResultStore:
    """A content-addressed JSON store with atomic, durable writes."""

    def __init__(self, root: str):
        self.root = root
        #: accounting surfaced through the server's /healthz
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- writing -------------------------------------------------------
    def put(self, key: str, payload: dict) -> str:
        """Atomically store ``payload`` under ``key``; returns the final
        path.  Concurrent writers of the same key are safe: whichever
        ``os.replace`` lands last wins wholesale."""
        path = self._path(key)
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(parent)
        self.writes += 1
        return path

    # -- reading -------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or None on miss.  A corrupt entry is
        quarantined aside and reads as a miss (the caller recomputes)."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError) as exc:
            self.corrupt += 1
            self.misses += 1
            quarantined = f"{path}.corrupt"
            try:
                os.replace(path, quarantined)
            except OSError:  # pragma: no cover - raced with a rewriter
                quarantined = "<unquarantinable>"
            warnings.warn(
                f"result store entry {key} is corrupt ({exc}); moved to "
                f"{quarantined} and treated as a miss",
                stacklevel=2,
            )
            return None
        if not isinstance(payload, dict):
            self.corrupt += 1
            self.misses += 1
            warnings.warn(
                f"result store entry {key} holds a non-object payload; "
                "treated as a miss",
                stacklevel=2,
            )
            return None
        self.hits += 1
        return payload

    def has(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if os.path.isdir(shard_dir):
                count += sum(1 for name in os.listdir(shard_dir)
                             if name.endswith(".json"))
        return count

    def stats(self) -> dict:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
        }

    def __repr__(self):
        return f"ResultStore({self.root!r}, {len(self)} entries)"
