"""The finite state machine produced by ASM exploration.

"The AsmL tool generates the model's FSM by executing the model program in
a special execution environment, keeping track of the actions it performs
and recording the states it visits" (paper, Section 5.1).  The FSM "is
usually only a portion -- an under-approximation -- of the huge FSM that
would result if the model program could be explored completely";
:attr:`Fsm.complete` records whether any exploration bound was hit.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Fsm", "Transition"]


class Transition:
    """One explored transition: source state, action label, target state."""

    __slots__ = ("src", "label", "dst")

    def __init__(self, src: int, label: str, dst: int):
        self.src = src
        self.label = label
        self.dst = dst

    def __eq__(self, other):
        return (
            isinstance(other, Transition)
            and (other.src, other.label, other.dst) == (self.src, self.label, self.dst)
        )

    def __hash__(self):
        return hash((self.src, self.label, self.dst))

    def __repr__(self):
        return f"{self.src} --{self.label}--> {self.dst}"


class Fsm:
    """An explored FSM: numbered states with their snapshots, transitions,
    and the bookkeeping Table 1 reports (node and transition counts)."""

    def __init__(self, initial: int = 0):
        self.initial = initial
        self.states: list[tuple] = []
        self.transitions: list[Transition] = []
        self.complete = True

    def add_state(self, snapshot: tuple) -> int:
        """Record a state snapshot; returns its id."""
        self.states.append(snapshot)
        return len(self.states) - 1

    def add_transition(self, src: int, label: str, dst: int) -> None:
        """Record a transition."""
        self.transitions.append(Transition(src, label, dst))

    @property
    def num_nodes(self) -> int:
        """Number of FSM nodes (Table 1's "Number of FSM Nodes")."""
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        """Number of FSM transitions (Table 1's "Transitions")."""
        return len(self.transitions)

    def successors(self, state: int) -> list[Transition]:
        """Outgoing transitions of a state."""
        return [t for t in self.transitions if t.src == state]

    def state_dict(self, state: int) -> dict:
        """A state's snapshot as a dictionary."""
        return dict(self.states[state])

    def path_to(self, target: int) -> Optional[list[Transition]]:
        """A shortest transition path from the initial state to ``target``."""
        if target == self.initial:
            return []
        from collections import deque

        outgoing: dict[int, list[Transition]] = {}
        for t in self.transitions:
            outgoing.setdefault(t.src, []).append(t)
        parent: dict[int, Transition] = {}
        queue = deque([self.initial])
        seen = {self.initial}
        while queue:
            node = queue.popleft()
            for t in outgoing.get(node, ()):
                if t.dst in seen:
                    continue
                parent[t.dst] = t
                if t.dst == target:
                    path = [t]
                    while path[0].src != self.initial:
                        path.insert(0, parent[path[0].src])
                    return path
                seen.add(t.dst)
                queue.append(t.dst)
        return None

    def to_dot(self, max_states: int = 200) -> str:
        """Render as Graphviz dot (small FSMs only)."""
        lines = ["digraph fsm {", "  rankdir=LR;"]
        for i in range(min(self.num_nodes, max_states)):
            shape = "doublecircle" if i == self.initial else "circle"
            lines.append(f'  s{i} [shape={shape}, label="s{i}"];')
        for t in self.transitions:
            if t.src < max_states and t.dst < max_states:
                lines.append(f'  s{t.src} -> s{t.dst} [label="{t.label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self):
        tag = "" if self.complete else ", under-approximation"
        return f"Fsm(nodes={self.num_nodes}, transitions={self.num_transitions}{tag})"
