"""Bounded reachability analysis -- the AsmL exploration algorithm.

"The AsmL tool ... includes a general algorithm implementing reachability
analysis (also called state space exploration)" (paper, Section 5.1).
:class:`Explorer` walks an :class:`~repro.asm.machine.AsmMachine` breadth
first from its initial state, firing every enabled (rule, arguments)
action, and records the visited portion as an
:class:`~repro.asm.fsm.Fsm`.

As in AsmL, "you must limit the number of states and transitions that the
tool explores": :class:`ExplorationConfig` carries the bounds plus the two
configuration knobs the paper stresses -- a *state projection* (which
variables participate in state identity) and an *action filter* (which
rules to explore).  When any bound is hit the produced FSM is marked as an
under-approximation.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Optional, Sequence

from .fsm import Fsm
from .machine import Action, AsmMachine

__all__ = ["ExplorationConfig", "ExplorationResult", "Explorer"]


class ExplorationConfig:
    """Bounds and filters guiding the exploration.

    Parameters
    ----------
    max_states, max_transitions, max_depth:
        Hard bounds; ``None`` means unbounded.
    state_projection:
        Optional list of variable names that define state identity (the
        AsmL configuration's "variables" set).  Variables outside the
        projection still evolve but do not distinguish FSM nodes.
    action_filter:
        Optional predicate over :class:`Action`; actions rejected by the
        filter are not explored (the configuration's "methods/actions").
    deadline_s:
        Wall-clock budget in seconds; ``None`` means unlimited.  A run
        that exceeds it stops cleanly with ``truncated=True`` (reason
        ``"deadline"``) instead of hanging a campaign.
    """

    def __init__(
        self,
        max_states: Optional[int] = 100000,
        max_transitions: Optional[int] = 1000000,
        max_depth: Optional[int] = None,
        state_projection: Optional[Sequence[str]] = None,
        action_filter: Optional[Callable[[Action], bool]] = None,
        deadline_s: Optional[float] = None,
    ):
        self.max_states = max_states
        self.max_transitions = max_transitions
        self.max_depth = max_depth
        self.state_projection = (
            tuple(state_projection) if state_projection is not None else None
        )
        self.action_filter = action_filter
        self.deadline_s = deadline_s


class ExplorationResult:
    """The FSM plus the accounting reported in Table 1.

    ``truncated_reason`` is ``""`` for a complete run, ``"bounds"`` when
    a state/transition/depth bound was hit, and ``"deadline"`` when the
    wall-clock budget expired.
    """

    def __init__(self, fsm: Fsm, cpu_time: float, truncated: bool,
                 truncated_reason: str = ""):
        self.fsm = fsm
        self.cpu_time = cpu_time
        self.truncated = truncated
        self.truncated_reason = truncated_reason

    @property
    def num_nodes(self) -> int:
        """FSM node count."""
        return self.fsm.num_nodes

    @property
    def num_transitions(self) -> int:
        """FSM transition count."""
        return self.fsm.num_transitions

    def __repr__(self):
        return (
            f"ExplorationResult(nodes={self.num_nodes}, "
            f"transitions={self.num_transitions}, "
            f"cpu={self.cpu_time:.3f}s, truncated={self.truncated})"
        )


class Explorer:
    """Breadth-first exploration of an ASM machine."""

    def __init__(self, machine: AsmMachine,
                 config: Optional[ExplorationConfig] = None):
        self.machine = machine
        self.config = config or ExplorationConfig()

    def _project(self, snapshot: tuple) -> tuple:
        projection = self.config.state_projection
        if projection is None:
            return snapshot
        as_dict = dict(snapshot)
        return tuple((name, as_dict[name]) for name in projection)

    def explore(self) -> ExplorationResult:
        """Run the exploration; the machine is reset first and left in its
        initial state afterwards."""
        machine = self.machine
        config = self.config
        start = time.perf_counter()
        machine.reset()
        fsm = Fsm()
        initial_snapshot = machine.snapshot()
        initial_key = self._project(initial_snapshot)
        index: dict[tuple, int] = {initial_key: fsm.add_state(initial_snapshot)}
        queue: deque[tuple[tuple, int, int]] = deque(
            [(initial_snapshot, 0, 0)]
        )
        truncated = False
        reason = ""
        deadline = (
            None if config.deadline_s is None else start + config.deadline_s
        )
        num_transitions = 0
        while queue:
            if deadline is not None and time.perf_counter() > deadline:
                truncated = True
                reason = "deadline"
                break
            snapshot, state_id, depth = queue.popleft()
            if config.max_depth is not None and depth >= config.max_depth:
                truncated = True
                reason = reason or "bounds"
                continue
            machine.restore(snapshot)
            actions = machine.enabled_actions()
            if config.action_filter is not None:
                actions = [a for a in actions if config.action_filter(a)]
            for action in actions:
                if (
                    config.max_transitions is not None
                    and num_transitions >= config.max_transitions
                ):
                    truncated = True
                    reason = reason or "bounds"
                    break
                machine.restore(snapshot)
                machine.fire(action)
                succ_snapshot = machine.snapshot()
                succ_key = self._project(succ_snapshot)
                succ_id = index.get(succ_key)
                if succ_id is None:
                    if (
                        config.max_states is not None
                        and len(index) >= config.max_states
                    ):
                        truncated = True
                        reason = reason or "bounds"
                        continue
                    succ_id = fsm.add_state(succ_snapshot)
                    index[succ_key] = succ_id
                    queue.append((succ_snapshot, succ_id, depth + 1))
                fsm.add_transition(state_id, action.label, succ_id)
                num_transitions += 1
        machine.reset()
        fsm.complete = not truncated
        elapsed = time.perf_counter() - start
        return ExplorationResult(fsm, elapsed, truncated, reason)
