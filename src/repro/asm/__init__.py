"""``repro.asm`` -- the Abstract State Machine framework (AsmL analogue).

State variables + guarded update rules with atomic update sets
(:mod:`machine`), finite domains for rule arguments (:mod:`domains`),
bounded reachability generating FSMs (:mod:`exploration`),
exploration-based PSL model checking with counterexamples
(:mod:`checker`) and model/implementation conformance co-execution
(:mod:`conformance`).
"""

from .domains import BoolDomain, Domain, EnumDomain, ExplicitDomain, IntRange
from .machine import Action, AsmError, AsmMachine, Rule, UpdateConflict
from .fsm import Fsm, Transition
from .exploration import ExplorationConfig, ExplorationResult, Explorer
from .checker import AsmModelChecker, CoverResult, Labeling, ModelCheckResult
from .testgen import (
    ReplayReport,
    TestSuite,
    generate_transition_cover,
    replay_suite,
)
from .conformance import (
    ConformanceResult,
    Divergence,
    Implementation,
    check_conformance,
)

__all__ = [
    "Domain",
    "IntRange",
    "EnumDomain",
    "BoolDomain",
    "ExplicitDomain",
    "AsmMachine",
    "AsmError",
    "UpdateConflict",
    "Rule",
    "Action",
    "Fsm",
    "Transition",
    "Explorer",
    "ExplorationConfig",
    "ExplorationResult",
    "AsmModelChecker",
    "CoverResult",
    "Labeling",
    "ModelCheckResult",
    "Implementation",
    "Divergence",
    "ConformanceResult",
    "check_conformance",
    "TestSuite",
    "ReplayReport",
    "generate_transition_cover",
    "replay_suite",
]
