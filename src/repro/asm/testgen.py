"""Test-suite generation from explored FSMs -- the AsmL workflow.

"The AsmL tool generates the model's FSM by executing the model program
... the test suite generated from the FSM usually does not cover all
possible states and transitions of the model program" (paper,
Section 5.1).  This module closes that loop:

* :func:`generate_transition_cover` walks an explored
  :class:`~repro.asm.fsm.Fsm` and produces a small set of action
  sequences (each starting from reset) that together traverse **every
  recorded transition** -- the classic transition-coverage suite;
* :func:`replay_suite` executes a suite against any
  :class:`~repro.asm.conformance.Implementation`, comparing observables
  against the model after every step, and reports coverage plus the
  first divergence.

Because the FSM is an under-approximation, the suite's coverage is
relative to the *explored* portion -- exactly the caveat the paper
makes.
"""

from __future__ import annotations

import random
import time
from collections import deque
from typing import Optional, Sequence

from .conformance import Divergence, Implementation
from .fsm import Fsm, Transition
from .machine import Action, AsmMachine

__all__ = ["TestSuite", "ReplayReport", "generate_transition_cover",
           "generate_random_walks", "replay_suite"]


class TestSuite:
    """A set of from-reset action-label sequences with coverage data."""

    def __init__(self, cases: list[list[Transition]], fsm: Fsm):
        self.cases = cases
        self.fsm = fsm

    @property
    def num_cases(self) -> int:
        """Number of test sequences."""
        return len(self.cases)

    @property
    def total_steps(self) -> int:
        """Total actions across the suite."""
        return sum(len(case) for case in self.cases)

    def covered_transitions(self) -> set[Transition]:
        """All distinct transitions exercised by the suite."""
        return {t for case in self.cases for t in case}

    @property
    def transition_coverage(self) -> float:
        """Fraction of the explored FSM's transitions covered."""
        total = len(set(self.fsm.transitions))
        if total == 0:
            return 1.0
        return len(self.covered_transitions()) / total

    def labels(self) -> list[list[str]]:
        """The suite as action-label sequences."""
        return [[t.label for t in case] for case in self.cases]

    def __repr__(self):
        return (
            f"TestSuite(cases={self.num_cases}, steps={self.total_steps}, "
            f"coverage={self.transition_coverage:.0%})"
        )


def generate_transition_cover(fsm: Fsm) -> TestSuite:
    """Build a transition-cover suite by greedy Eulerian-style walks.

    Repeatedly: start at the initial state, follow uncovered transitions
    when possible (shortest detour through covered ones otherwise), stop
    when no uncovered transition is reachable, and open a new case.
    """
    outgoing: dict[int, list[Transition]] = {}
    for transition in fsm.transitions:
        outgoing.setdefault(transition.src, []).append(transition)
    uncovered: set[Transition] = set(fsm.transitions)
    cases: list[list[Transition]] = []

    def path_to_uncovered(start: int) -> Optional[list[Transition]]:
        """Shortest transition path from ``start`` ending in an
        uncovered transition."""
        parent: dict[int, Transition] = {}
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for transition in outgoing.get(node, ()):
                if transition in uncovered:
                    path = [transition]
                    back = node
                    while back != start:
                        step = parent[back]
                        path.insert(0, step)
                        back = step.src
                    return path
                if transition.dst not in seen:
                    seen.add(transition.dst)
                    parent[transition.dst] = transition
                    queue.append(transition.dst)
        return None

    while uncovered:
        case: list[Transition] = []
        current = fsm.initial
        while True:
            extension = path_to_uncovered(current)
            if extension is None:
                break
            case.extend(extension)
            uncovered.difference_update(extension)
            current = extension[-1].dst
        if not case:
            break  # remaining transitions unreachable from reset
        cases.append(case)
    return TestSuite(cases, fsm)


def generate_random_walks(
    machine: AsmMachine,
    cases: int,
    steps: int,
    seed: int = 0,
) -> list[list[Action]]:
    """Generate ``cases`` random from-reset action sequences.

    Each walk starts at the machine's reset state and repeatedly fires a
    uniformly chosen enabled action, up to ``steps`` actions (shorter if
    the machine deadlocks).  This is the *undirected* stimulus baseline;
    the coverage-driven selection loop in :mod:`repro.cover.testgen`
    ranks exactly these candidates by incremental coverage.  The machine
    is left in its reset state.
    """
    rng = random.Random(seed)
    walks: list[list[Action]] = []
    for __ in range(cases):
        machine.reset()
        walk: list[Action] = []
        for __ in range(steps):
            enabled = machine.enabled_actions()
            if not enabled:
                break
            action = rng.choice(enabled)
            machine.fire(action)
            walk.append(action)
        walks.append(walk)
    machine.reset()
    return walks


class ReplayReport:
    """Outcome of replaying a suite against an implementation."""

    def __init__(self, passed: bool, cases_run: int, steps_run: int,
                 cpu_time: float, divergence: Optional[Divergence] = None):
        self.passed = passed
        self.cases_run = cases_run
        self.steps_run = steps_run
        self.cpu_time = cpu_time
        self.divergence = divergence

    def __repr__(self):
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"ReplayReport({verdict}, cases={self.cases_run}, "
            f"steps={self.steps_run}, cpu={self.cpu_time:.3f}s)"
        )


def replay_suite(
    suite: TestSuite,
    machine: AsmMachine,
    implementation: Implementation,
    observables: Sequence[str],
) -> ReplayReport:
    """Run every case of ``suite`` on model and implementation in
    lockstep, comparing the observable projection after each step."""
    from .conformance import _decode_path

    start = time.perf_counter()
    steps_run = 0
    for case_index, labels in enumerate(suite.labels()):
        machine.reset()
        implementation.reset()
        executed: list[str] = []
        for label in labels:
            (rule_name, args), = _decode_path(machine, [label])
            machine.fire_named(rule_name, **args)
            implementation.apply(rule_name, args)
            executed.append(label)
            steps_run += 1
            model_obs = {
                name: machine.state[name] for name in observables
            }
            impl_obs = implementation.observe()
            impl_projection = {name: impl_obs[name] for name in observables}
            if impl_projection != model_obs:
                elapsed = time.perf_counter() - start
                return ReplayReport(
                    False, case_index + 1, steps_run, elapsed,
                    Divergence(executed, model_obs, impl_projection),
                )
    elapsed = time.perf_counter() - start
    return ReplayReport(True, suite.num_cases, steps_run, elapsed)
