"""Model checking PSL properties by guided ASM exploration.

"By adapting the exploration algorithm we've been able to implement a model
checking procedure for PSL" (paper, Section 5.1).  The procedure composes
the machine's reachable states with the deterministic checker automaton of
each property (:func:`repro.psl.automata.build_checker`) and searches the
product breadth first:

* a property is **violated** when the product reaches the automaton's
  failure state -- the paper's filter/stopping condition
  ``P_status = true & P_value = false``; the "generated portion of the
  state machine from the initial state until the stop error point forms a
  complete path for a counter-example";
* a safety property **holds** when the full product is explored without
  reaching a failure;
* if exploration bounds truncate the search, the verdict is *unknown* (an
  under-approximating run that found no violation).

Atoms are evaluated on machine states through a *labeling*: by default an
atom named like a state variable samples that variable's truthiness, and
callers may supply arbitrary ``atom -> f(state_dict) -> bool`` functions.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Mapping, Optional, Sequence

from ..psl.ast import Property, PslError, Sere
from ..psl.automata import CheckerAutomaton, build_checker
from ..psl.sere import compile_sere
from .exploration import ExplorationConfig
from .machine import AsmMachine

__all__ = ["Labeling", "ModelCheckResult", "CoverResult", "AsmModelChecker"]


class Labeling:
    """Maps PSL atoms to boolean observations of a machine state."""

    def __init__(self, functions: Optional[Mapping[str, Callable]] = None):
        self._functions: dict[str, Callable] = dict(functions or {})

    def define(self, atom: str, fn: Callable[[dict], bool]) -> None:
        """Register an observation function for an atom."""
        self._functions[atom] = fn

    def valuation(self, state: dict, atoms: Sequence[str]) -> dict:
        """Evaluate the listed atoms on a machine state dictionary."""
        result = {}
        for atom in atoms:
            fn = self._functions.get(atom)
            if fn is not None:
                result[atom] = bool(fn(state))
            elif atom in state:
                result[atom] = bool(state[atom])
            else:
                raise PslError(
                    f"atom {atom!r} has no labeling function and is not a "
                    "state variable"
                )
        return result


class ModelCheckResult:
    """Verdict plus the accounting Table 1 reports.

    ``holds`` is True (proved), False (violated -- see
    :attr:`counterexample`) or None (bounds hit, no violation found).
    """

    def __init__(
        self,
        holds: Optional[bool],
        num_nodes: int,
        num_transitions: int,
        cpu_time: float,
        counterexample: Optional[list] = None,
        property_name: str = "property",
        truncated_reason: str = "",
    ):
        self.holds = holds
        self.num_nodes = num_nodes
        self.num_transitions = num_transitions
        self.cpu_time = cpu_time
        self.counterexample = counterexample
        self.property_name = property_name
        #: "" for a decided run; "bounds" / "deadline" when holds is None
        self.truncated_reason = truncated_reason

    def __repr__(self):
        verdict = {True: "HOLDS", False: "FAILS", None: "UNKNOWN"}[self.holds]
        return (
            f"ModelCheckResult({self.property_name}: {verdict}, "
            f"nodes={self.num_nodes}, transitions={self.num_transitions}, "
            f"cpu={self.cpu_time:.3f}s)"
        )


class CoverResult:
    """Outcome of a cover-directive check: was the SERE ever matched?

    ``covered`` is True with a :attr:`witness` path, False (the whole
    bounded exploration finished without a match) or None (bounds hit).
    """

    def __init__(self, covered, num_nodes, num_transitions, cpu_time,
                 witness=None, name="cover"):
        self.covered = covered
        self.num_nodes = num_nodes
        self.num_transitions = num_transitions
        self.cpu_time = cpu_time
        self.witness = witness
        self.name = name

    def __repr__(self):
        verdict = {True: "COVERED", False: "UNREACHABLE",
                   None: "UNKNOWN"}[self.covered]
        return (
            f"CoverResult({self.name}: {verdict}, nodes={self.num_nodes}, "
            f"cpu={self.cpu_time:.3f}s)"
        )


class AsmModelChecker:
    """Exploration-based PSL model checker over an :class:`AsmMachine`."""

    def __init__(
        self,
        machine: AsmMachine,
        labeling: Optional[Labeling] = None,
        config: Optional[ExplorationConfig] = None,
    ):
        self.machine = machine
        self.labeling = labeling or Labeling()
        self.config = config or ExplorationConfig()

    # ------------------------------------------------------------------
    def check(self, prop: Property, name: str = "property") -> ModelCheckResult:
        """Check a single safety property."""
        return self.check_combined([prop], name=name)

    def check_combined(
        self,
        props: Sequence[Property],
        name: str = "combined",
        assumptions: Sequence[Property] = (),
    ) -> ModelCheckResult:
        """Check several properties in one product exploration.

        This mirrors Table 1, which reports "the CPU time required to
        verify all the interface properties combined together".

        ``assumptions`` are environment constraints (PSL ``assume``
        directives): executions that would violate an assumption are
        pruned from the search, so properties are verified only over
        assumption-consistent behaviours -- the standard way RuleBase
        users modelled a constrained host.
        """
        for prop in tuple(props) + tuple(assumptions):
            if not prop.is_safety():
                raise PslError(
                    f"{prop!r} is not a safety property; exploration-based "
                    "model checking needs finite bad prefixes"
                )
        start = time.perf_counter()
        num_assumptions = len(assumptions)
        checkers = [build_checker(p) for p in assumptions]
        checkers += [build_checker(p) for p in props]
        machine = self.machine
        config = self.config
        machine.reset()

        def observe(snapshot: tuple) -> tuple:
            state = dict(snapshot)
            return tuple(
                chk.transition(0, chk.valuation_key(
                    self.labeling.valuation(state, chk.atoms)))
                for chk in checkers
            )

        def advance(chk_states: tuple, snapshot: tuple) -> tuple:
            state = dict(snapshot)
            return tuple(
                chk.transition(cs, chk.valuation_key(
                    self.labeling.valuation(state, chk.atoms)))
                for chk, cs in zip(checkers, chk_states)
            )

        initial_snapshot = machine.snapshot()
        initial_chk = observe(initial_snapshot)
        fail = CheckerAutomaton.FAIL_STATE

        def assumption_violated(chk_states: tuple) -> bool:
            return fail in chk_states[:num_assumptions]

        def property_violated(chk_states: tuple) -> bool:
            return fail in chk_states[num_assumptions:]

        # parents: product_key -> (parent_key, action_label, snapshot)
        parents: dict = {}
        initial_key = (self._project(initial_snapshot), initial_chk)
        parents[initial_key] = (None, None, initial_snapshot)

        if assumption_violated(initial_chk):
            # no assumption-consistent behaviour exists: vacuously true
            elapsed = time.perf_counter() - start
            return ModelCheckResult(
                True, 0, 0, elapsed, property_name=name,
            )
        if property_violated(initial_chk):
            elapsed = time.perf_counter() - start
            return ModelCheckResult(
                False, 1, 0, elapsed,
                counterexample=[("initial", dict(initial_snapshot))],
                property_name=name,
            )

        queue: deque = deque([(initial_snapshot, initial_chk, initial_key, 0)])
        visited = {initial_key}
        num_transitions = 0
        truncated = False
        reason = ""
        deadline = (
            None if getattr(config, "deadline_s", None) is None
            else start + config.deadline_s
        )

        while queue:
            if deadline is not None and time.perf_counter() > deadline:
                truncated = True
                reason = "deadline"
                break
            snapshot, chk_states, key, depth = queue.popleft()
            if config.max_depth is not None and depth >= config.max_depth:
                truncated = True
                reason = reason or "bounds"
                continue
            machine.restore(snapshot)
            actions = machine.enabled_actions()
            if config.action_filter is not None:
                actions = [a for a in actions if config.action_filter(a)]
            for action in actions:
                if (
                    config.max_transitions is not None
                    and num_transitions >= config.max_transitions
                ):
                    truncated = True
                    reason = reason or "bounds"
                    break
                machine.restore(snapshot)
                machine.fire(action)
                succ_snapshot = machine.snapshot()
                succ_chk = advance(chk_states, succ_snapshot)
                succ_key = (self._project(succ_snapshot), succ_chk)
                num_transitions += 1
                if assumption_violated(succ_chk):
                    continue  # pruned: outside the assumed environment
                if succ_key not in parents:
                    parents[succ_key] = (key, action.label, succ_snapshot)
                if property_violated(succ_chk):
                    elapsed = time.perf_counter() - start
                    machine.reset()
                    return ModelCheckResult(
                        False,
                        len(visited) + 1,
                        num_transitions,
                        elapsed,
                        counterexample=self._trace(parents, succ_key),
                        property_name=name,
                    )
                if succ_key in visited:
                    continue
                if (
                    config.max_states is not None
                    and len(visited) >= config.max_states
                ):
                    truncated = True
                    reason = reason or "bounds"
                    continue
                visited.add(succ_key)
                queue.append((succ_snapshot, succ_chk, succ_key, depth + 1))

        machine.reset()
        elapsed = time.perf_counter() - start
        holds: Optional[bool] = True if not truncated else None
        return ModelCheckResult(
            holds, len(visited), num_transitions, elapsed, property_name=name,
            truncated_reason=reason,
        )

    # ------------------------------------------------------------------
    def check_cover(self, sere: Sere, name: str = "cover") -> CoverResult:
        """Search for a witness execution matching the SERE (PSL's
        ``cover`` directive): a match may start at any cycle."""
        start = time.perf_counter()
        nfa = compile_sere(sere)
        atoms = sorted(sere.atoms())
        machine = self.machine
        config = self.config
        machine.reset()

        def val(snapshot: tuple) -> dict:
            return self.labeling.valuation(dict(snapshot), atoms)

        initial_snapshot = machine.snapshot()
        # NFA runs start fresh at every cycle (cover matches anywhere)
        initial_runs = nfa.step(nfa.initial, val(initial_snapshot))
        if nfa.accepts_now(initial_runs) or nfa.accepts_empty:
            elapsed = time.perf_counter() - start
            machine.reset()
            return CoverResult(True, 1, 0, elapsed,
                               witness=[("initial", dict(initial_snapshot))],
                               name=name)
        initial_key = (self._project(initial_snapshot), initial_runs)
        parents: dict = {initial_key: (None, None, initial_snapshot)}
        queue: deque = deque([(initial_snapshot, initial_runs, initial_key, 0)])
        visited = {initial_key}
        num_transitions = 0
        truncated = False
        deadline = (
            None if getattr(config, "deadline_s", None) is None
            else start + config.deadline_s
        )
        while queue:
            if deadline is not None and time.perf_counter() > deadline:
                truncated = True
                break
            snapshot, runs, key, depth = queue.popleft()
            if config.max_depth is not None and depth >= config.max_depth:
                truncated = True
                continue
            machine.restore(snapshot)
            actions = machine.enabled_actions()
            if config.action_filter is not None:
                actions = [a for a in actions if config.action_filter(a)]
            for action in actions:
                if (
                    config.max_transitions is not None
                    and num_transitions >= config.max_transitions
                ):
                    truncated = True
                    break
                machine.restore(snapshot)
                machine.fire(action)
                succ = machine.snapshot()
                valuation = val(succ)
                succ_runs = nfa.step(runs | nfa.initial, valuation)
                succ_key = (self._project(succ), succ_runs)
                num_transitions += 1
                if succ_key not in parents:
                    parents[succ_key] = (key, action.label, succ)
                if nfa.accepts_now(succ_runs):
                    elapsed = time.perf_counter() - start
                    machine.reset()
                    return CoverResult(
                        True, len(visited) + 1, num_transitions, elapsed,
                        witness=self._trace(parents, succ_key), name=name,
                    )
                if succ_key in visited:
                    continue
                if (
                    config.max_states is not None
                    and len(visited) >= config.max_states
                ):
                    truncated = True
                    continue
                visited.add(succ_key)
                queue.append((succ, succ_runs, succ_key, depth + 1))
        machine.reset()
        elapsed = time.perf_counter() - start
        return CoverResult(
            None if truncated else False,
            len(visited), num_transitions, elapsed, name=name,
        )

    # ------------------------------------------------------------------
    def _project(self, snapshot: tuple) -> tuple:
        projection = self.config.state_projection
        if projection is None:
            return snapshot
        as_dict = dict(snapshot)
        return tuple((v, as_dict[v]) for v in projection)

    @staticmethod
    def _trace(parents: dict, key) -> list:
        """Reconstruct the counterexample path to ``key``."""
        steps = []
        while key is not None:
            parent, label, snapshot = parents[key]
            steps.append((label or "initial", dict(snapshot)))
            key = parent
        steps.reverse()
        return steps
