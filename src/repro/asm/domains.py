"""Finite domains for ASM exploration.

"Defining the domains, which are defined as finite collections of values
from which method arguments are taken, are the most important issues to
consider" (paper, Section 5.1): exploration enumerates rule arguments from
these collections, so their size directly controls the FSM the AsmL-style
explorer builds.  The domain-size ablation benchmark sweeps exactly this.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

__all__ = ["Domain", "IntRange", "EnumDomain", "BoolDomain", "ExplicitDomain"]


class Domain:
    """A named finite collection of hashable values."""

    name = "domain"

    def values(self) -> Sequence:
        """The collection, in a deterministic order."""
        raise NotImplementedError

    def __iter__(self) -> Iterator:
        return iter(self.values())

    def __len__(self) -> int:
        return len(self.values())

    def __contains__(self, item) -> bool:
        return item in self.values()

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r}, {list(self.values())!r})"


class IntRange(Domain):
    """Integers ``lo..hi`` inclusive.

    The paper's example: "for an integer input that can only take a value
    in the range from 5 to 23, considering all possible integer values for
    the type AsmL.Integer is a waste of time".
    """

    def __init__(self, name: str, lo: int, hi: int):
        if hi < lo:
            raise ValueError(f"empty IntRange [{lo}, {hi}]")
        self.name = name
        self.lo = lo
        self.hi = hi
        self._values = tuple(range(lo, hi + 1))

    def values(self):
        return self._values


class EnumDomain(Domain):
    """An explicit enumeration of symbolic values."""

    def __init__(self, name: str, values: Iterable):
        self.name = name
        self._values = tuple(values)
        if not self._values:
            raise ValueError(f"empty EnumDomain {name}")

    def values(self):
        return self._values


class BoolDomain(Domain):
    """The two booleans -- AsmL's ``any rec in {true, false}``."""

    def __init__(self, name: str = "bool"):
        self.name = name

    def values(self):
        return (False, True)


class ExplicitDomain(Domain):
    """An arbitrary ordered collection of hashable values."""

    def __init__(self, name: str, values: Sequence):
        self.name = name
        self._values = tuple(values)
        if not self._values:
            raise ValueError(f"empty ExplicitDomain {name}")

    def values(self):
        return self._values
