"""The Abstract State Machine core: state, guarded rules, update sets.

"An ASM model by definition encodes only those aspects of the system's
structure that affect the behavior being modeled" (paper, Section 2.3).
Concretely:

* an :class:`AsmMachine` holds a flat dictionary of named state variables
  with hashable values;
* behaviour is a set of :class:`Rule` objects -- each has a ``require``
  precondition (the AsmL ``require`` clause that "defines the rules
  filtering the states where the method can be executed") and an effect
  producing an *update set*;
* firing applies the whole update set atomically; two updates assigning
  different values to one location is an ASM consistency violation and
  raises :class:`UpdateConflict`;
* rule parameters are drawn from finite :class:`~repro.asm.domains.Domain`
  collections, which is where the explorer's nondeterminism comes from
  (AsmL's ``any x in {...}``).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from .domains import Domain

__all__ = ["AsmError", "UpdateConflict", "Rule", "Action", "AsmMachine"]


class AsmError(Exception):
    """Raised on ASM misuse (unknown variables, firing a disabled rule)."""


class UpdateConflict(AsmError):
    """Two updates in one step assign different values to one location."""


class Rule:
    """A guarded update rule (an AsmL method).

    ``guard(state, **args)`` is the ``require`` precondition;
    ``effect(state, **args)`` returns the update set as a ``{var: value}``
    mapping (read-only access to ``state``).  ``domains`` maps parameter
    names to the finite collections exploration draws arguments from.
    """

    def __init__(
        self,
        name: str,
        guard: Callable[..., bool],
        effect: Callable[..., Mapping],
        domains: Optional[Mapping[str, Domain]] = None,
    ):
        self.name = name
        self.guard = guard
        self.effect = effect
        self.domains: dict[str, Domain] = dict(domains or {})

    def argument_combinations(self) -> list[dict]:
        """All argument dictionaries drawn from this rule's domains."""
        combos: list[dict] = [{}]
        for param, domain in self.domains.items():
            combos = [
                {**combo, param: value}
                for combo in combos
                for value in domain.values()
            ]
        return combos

    def __repr__(self):
        params = ", ".join(self.domains)
        return f"Rule({self.name}({params}))"


class Action:
    """A concrete step: a rule plus chosen arguments."""

    __slots__ = ("rule", "args")

    def __init__(self, rule: Rule, args: dict):
        self.rule = rule
        self.args = args

    @property
    def label(self) -> str:
        """Human-readable transition label for FSMs and counterexamples."""
        if not self.args:
            return self.rule.name
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.args.items()))
        return f"{self.rule.name}({rendered})"

    def __eq__(self, other):
        return (
            isinstance(other, Action)
            and other.rule is self.rule
            and other.args == self.args
        )

    def __hash__(self):
        return hash((id(self.rule), tuple(sorted(self.args.items()))))

    def __repr__(self):
        return f"Action({self.label})"


class AsmMachine:
    """A model program: named state variables plus guarded rules."""

    def __init__(self, name: str = "asm"):
        self.name = name
        self._initial: dict = {}
        self.state: dict = {}
        self.rules: list[Rule] = []
        self._frozen_vars: Optional[frozenset] = None
        # inline lint suppressions; see lint_waive
        self.lint_waivers: list[tuple[str, str, str]] = []
        # fire observers: ``fn(machine, action)`` called after every
        # applied update set (post-state visible) -- the hook coverage
        # collectors (:mod:`repro.cover.asm_cov`) attach to
        self.fire_observers: list[Callable[["AsmMachine", Action], None]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def var(self, name: str, initial) -> str:
        """Declare a state variable with its initial value; returns the
        name so models can keep symbolic handles."""
        if name in self._initial:
            raise AsmError(f"variable {name} already declared")
        try:
            hash(initial)
        except TypeError:
            raise AsmError(
                f"initial value of {name} must be hashable for exploration"
            ) from None
        self._initial[name] = initial
        self.state[name] = initial
        return name

    def rule(
        self,
        name: str,
        guard: Callable[..., bool],
        effect: Callable[..., Mapping],
        domains: Optional[Mapping[str, Domain]] = None,
    ) -> Rule:
        """Register a guarded rule; returns the :class:`Rule`."""
        rule = Rule(name, guard, effect, domains)
        self.rules.append(rule)
        return rule

    def lint_waive(self, rule: str, pattern: str, reason: str) -> None:
        """Suppress a :mod:`repro.lint` rule for locations matching the
        glob ``pattern`` (``<machine>.<rule_name>``), with a required
        justification.  Waived findings stay in reports but do not fail
        the run."""
        if not reason:
            raise AsmError("a lint waiver requires a justification")
        self.lint_waivers.append((rule, pattern, reason))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the initial state."""
        self.state = dict(self._initial)

    def snapshot(self) -> tuple:
        """A hashable canonical snapshot of the current state."""
        return tuple(sorted(self.state.items()))

    def restore(self, snapshot: tuple) -> None:
        """Restore a snapshot taken with :meth:`snapshot`."""
        self.state = dict(snapshot)

    def enabled_actions(self) -> list[Action]:
        """All (rule, argument) combinations whose guard holds now."""
        actions: list[Action] = []
        for rule in self.rules:
            for args in rule.argument_combinations():
                if rule.guard(self.state, **args):
                    actions.append(Action(rule, args))
        return actions

    def compute_updates(self, action: Action) -> dict:
        """Evaluate an action's update set without applying it."""
        if not action.rule.guard(self.state, **action.args):
            raise AsmError(
                f"rule {action.label} fired with unsatisfied require clause"
            )
        updates = dict(action.rule.effect(self.state, **action.args))
        seen: dict[str, object] = {}
        for key, value in updates.items():
            if key not in self.state:
                raise AsmError(f"rule {action.label} updates unknown var {key}")
            try:
                hash(value)
            except TypeError:
                raise AsmError(
                    f"rule {action.label} writes unhashable value to {key}"
                ) from None
            if key in seen and seen[key] != value:
                raise UpdateConflict(
                    f"rule {action.label}: conflicting updates to {key}"
                )
            seen[key] = value
        return updates

    def fire(self, action: Action) -> None:
        """Fire an enabled action: apply its update set atomically."""
        updates = self.compute_updates(action)
        self.state.update(updates)
        for observer in self.fire_observers:
            observer(self, action)

    def fire_named(self, rule_name: str, **args) -> None:
        """Convenience: fire a rule by name with explicit arguments."""
        for rule in self.rules:
            if rule.name == rule_name:
                self.fire(Action(rule, args))
                return
        raise AsmError(f"no rule named {rule_name}")

    def run(self, actions: Sequence[Action]) -> None:
        """Fire a sequence of actions."""
        for action in actions:
            self.fire(action)

    def __repr__(self):
        return (
            f"AsmMachine({self.name!r}, vars={len(self._initial)}, "
            f"rules={len(self.rules)})"
        )
