"""Conformance testing: co-executing a model and an implementation.

"The AsmL tool performs a conformance test by executing the program under
test, called the implementation (SystemC model for our case), together
with the model program in ASM ... It then verifies if for all the possible
inputs, both models behave the same" (paper, Section 5.1).

:func:`check_conformance` drives the ASM machine and an implementation
through the same breadth-first action tree up to a depth bound, comparing
observable projections after every step.  Implementations plug in through
the tiny :class:`Implementation` protocol (factory-reset + apply-action +
observe), which :mod:`repro.core.conformance` adapts the SystemC-level
LA-1 model to.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Optional, Sequence

from .machine import Action, AsmMachine

__all__ = ["Implementation", "Divergence", "ConformanceResult", "check_conformance"]


class Implementation:
    """Protocol for the program under test.

    Subclasses provide a fresh restartable system: :meth:`reset` restores
    the initial condition, :meth:`apply` performs the action named by an
    ASM rule with its arguments, and :meth:`observe` returns the
    observable state as a dictionary comparable with the model's.
    """

    def reset(self) -> None:
        """Restore the implementation to its initial state."""
        raise NotImplementedError

    def apply(self, rule_name: str, args: dict) -> None:
        """Perform one action."""
        raise NotImplementedError

    def observe(self) -> dict:
        """The observable state after the last action."""
        raise NotImplementedError


class Divergence:
    """A behavioural mismatch found during co-execution."""

    def __init__(self, path: list[str], model_obs: dict, impl_obs: dict):
        self.path = path
        self.model_obs = model_obs
        self.impl_obs = impl_obs

    def __repr__(self):
        return (
            f"Divergence(after {' -> '.join(self.path) or '<initial>'}: "
            f"model={self.model_obs}, impl={self.impl_obs})"
        )


class ConformanceResult:
    """Outcome of a conformance run."""

    def __init__(
        self,
        conformant: bool,
        paths_checked: int,
        steps_executed: int,
        cpu_time: float,
        divergence: Optional[Divergence] = None,
    ):
        self.conformant = conformant
        self.paths_checked = paths_checked
        self.steps_executed = steps_executed
        self.cpu_time = cpu_time
        self.divergence = divergence

    def __repr__(self):
        verdict = "CONFORMANT" if self.conformant else "DIVERGENT"
        return (
            f"ConformanceResult({verdict}, paths={self.paths_checked}, "
            f"steps={self.steps_executed}, cpu={self.cpu_time:.3f}s)"
        )


def check_conformance(
    machine: AsmMachine,
    implementation: Implementation,
    observables: Sequence[str],
    max_depth: int = 4,
    max_paths: int = 10000,
    action_filter: Optional[Callable[[Action], bool]] = None,
) -> ConformanceResult:
    """Co-execute model and implementation over all action sequences.

    The model's observable projection is the listed state variables; the
    implementation's :meth:`~Implementation.observe` must return a
    dictionary with the same keys.  The first mismatch stops the run and
    is reported with the action path that exposes it -- the paper notes
    this phase "is sometimes time consuming, however, it is quite
    important to make sure the ASM to SystemC mapping preserves the
    system's properties".
    """
    start = time.perf_counter()
    machine.reset()

    def model_obs(snapshot: tuple) -> dict:
        state = dict(snapshot)
        return {name: state[name] for name in observables}

    # each queue entry: (model snapshot, action-label path)
    initial = machine.snapshot()
    queue: deque = deque([(initial, [])])
    paths_checked = 0
    steps_executed = 0

    # compare initial observation
    implementation.reset()
    first_impl = implementation.observe()
    first_model = model_obs(initial)
    if first_impl != first_model:
        elapsed = time.perf_counter() - start
        return ConformanceResult(
            False, 1, 0, elapsed, Divergence([], first_model, first_impl)
        )

    while queue:
        snapshot, path = queue.popleft()
        if len(path) >= max_depth:
            continue
        machine.restore(snapshot)
        actions = machine.enabled_actions()
        if action_filter is not None:
            actions = [a for a in actions if action_filter(a)]
        for action in actions:
            if paths_checked >= max_paths:
                break
            machine.restore(snapshot)
            machine.fire(action)
            succ = machine.snapshot()
            new_path = path + [action.label]
            paths_checked += 1
            # replay the full path on a fresh implementation
            implementation.reset()
            machine.restore(snapshot)
            for replay_action, replay_args in _decode_path(machine, new_path):
                implementation.apply(replay_action, replay_args)
                steps_executed += 1
            impl_observation = implementation.observe()
            model_observation = model_obs(succ)
            if impl_observation != model_observation:
                elapsed = time.perf_counter() - start
                machine.reset()
                return ConformanceResult(
                    False,
                    paths_checked,
                    steps_executed,
                    elapsed,
                    Divergence(new_path, model_observation, impl_observation),
                )
            queue.append((succ, new_path))

    machine.reset()
    elapsed = time.perf_counter() - start
    return ConformanceResult(True, paths_checked, steps_executed, elapsed)


def _decode_path(machine: AsmMachine, labels: list[str]):
    """Decode action labels back into (rule_name, args) pairs.

    Labels have the shape ``rule`` or ``rule(k=v, ...)`` as produced by
    :attr:`repro.asm.machine.Action.label`; argument values are parsed
    with ``eval`` over a bare namespace (they are ints/bools/strs
    produced by repr-compatible domains).
    """
    decoded = []
    for label in labels:
        if "(" not in label:
            decoded.append((label, {}))
            continue
        name, __, rest = label.partition("(")
        rest = rest.rstrip(")")
        args = {}
        if rest:
            for pair in rest.split(", "):
                key, __, value = pair.partition("=")
                try:
                    args[key] = eval(value, {"__builtins__": {}}, {})
                except Exception:
                    args[key] = value
        decoded.append((name, args))
    return decoded
