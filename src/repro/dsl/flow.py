"""``repro.dsl.flow`` -- the full verification flow for a zoo design.

:func:`run_dsl_flow` drives one frontend design through every engine of
the methodology, unchanged from the LA-1 stack:

1. **elaborate** -- lower to the ASM / RTL / SystemC model trio;
2. **lint** -- ``repro.lint`` over the elaborated netlist, the PSL
   property set and the per-rule ASM view (probe and cover nets are
   declared observation points so taps are not flagged dead; frontend
   ``src_loc`` decoration makes any finding point at the DSL line);
3. **conformance** -- BFS co-execution of the ASM model against the RTL
   and SystemC lowerings, bit-identical observations required;
4. **model checking** -- every design property through the SAT engine
   (BMC + k-induction; definitive verdicts) or the RuleBase-style BDD
   reachability engine;
5. **coverage** -- the design's covergroup sampled over a seeded RTL
   run;
6. **campaign** -- a fault-injection smoke campaign (stuck-ats + one
   SEU per register) that must detect at least one fault and complete
   without engine errors.

The stage results reuse :class:`repro.core.flow.StageResult`, so flow
reports read the same either way; like the LA-1 flow, execution stops
at the first failing stage.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.flow import StageResult
from ..lint import LintConfig, lint_design, lint_machine, lint_properties
from ..rtl.simulator import RtlSimulator
from .elab import check_dsl_conformance, netlist_fingerprint
from .zoo import build_elaborated, conformance_budget, zoo_properties

__all__ = ["DslFlowReport", "run_dsl_flow"]


@dataclass
class DslFlowReport:
    """All stage results of one zoo-design flow run."""

    design: str
    stages: List[StageResult] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        """True when every executed stage passed."""
        return all(stage.ok for stage in self.stages)

    def stage(self, name: str) -> Optional[StageResult]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def render(self) -> str:
        lines = [f"dsl flow [{self.design}]"
                 + (f" fingerprint {self.fingerprint}" if self.fingerprint
                    else "")]
        for stage in self.stages:
            flag = "PASS" if stage.ok else "FAIL"
            lines.append(
                f"  [{flag}] {stage.name:<16} {stage.cpu_time:7.2f}s  "
                f"{stage.detail}"
            )
        lines.append(f"  overall: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _lint_stage(name: str, elab, config: Optional[LintConfig],
                semantic: bool) -> StageResult:
    start = time.perf_counter()
    base = config or LintConfig()
    # probe, cover and monitor wires exist to be observed by engines the
    # dataflow pass cannot see (PSL labels, covergroup sampling), so
    # they are observation points, not dead logic
    sinks = tuple(elab.probes.values()) + tuple(
        path for path, __ in elab.covers.values())
    rtl_config = LintConfig(
        disabled_rules=base.disabled_rules,
        waivers=base.waivers,
        extra_sinks=tuple(base.extra_sinks) + sinks,
        asm_state_cap=base.asm_state_cap,
    )
    report = lint_design(elab.rtl, config=rtl_config, design=elab.flat,
                         subject=f"dsl:{name}", semantic=semantic)
    props = [(pname, prop) for pname, prop, __ in zoo_properties(name, elab)]
    report.extend(lint_properties(props, config=base,
                                  subject=f"dsl:{name}:properties",
                                  semantic=semantic))
    report.extend(lint_machine(elab.rule_machine(), config=base,
                               semantic=semantic))
    counts = report.counts()
    return StageResult(
        "lint", report.ok,
        f"{len(report.pass_order)} passes, {counts['error']} errors, "
        f"{counts['warning']} warnings, {counts['waived']} waived",
        time.perf_counter() - start,
        data=report,
    )


def _conformance_stage(name: str, elab, backend: str) -> StageResult:
    start = time.perf_counter()
    budget = conformance_budget(name)
    results = check_dsl_conformance(
        elab, levels=("rtl", "sysc"), backend=backend, **budget)
    ok = all(r.conformant for r in results.values())
    detail = ", ".join(
        f"{level} {'ok' if r.conformant else 'DIVERGED'} "
        f"({r.paths_checked} paths)"
        for level, r in results.items()
    )
    bad = [r.divergence for r in results.values()
           if not r.conformant and r.divergence]
    if bad:
        detail += f"; {bad[0]}"
    return StageResult("conformance", ok, detail,
                       time.perf_counter() - start, data=results)


def _mc_stage(name: str, elab, engine: str, max_k: int,
              deadline_s: Optional[float]) -> StageResult:
    start = time.perf_counter()
    outcomes = []
    ok = True
    results = {}
    for pname, prop, labels in zoo_properties(name, elab):
        if engine == "sat":
            from ..sat.bmc import SatModelChecker

            result = SatModelChecker(
                elab.flat, prop, labels, name=pname,
            ).prove(max_k=max_k, deadline_s=deadline_s)
            verdict = (f"proved k={result.k}" if result.holds is True
                       else "FAILS" if result.holds is False
                       else "UNDECIDED")
        elif engine == "bdd":
            from ..mc import SymbolicModel, SymbolicModelChecker

            roots = sorted({path for path, __ in labels.values()})
            result = SymbolicModelChecker(
                SymbolicModel(elab.flat, coi_roots=roots)
            ).check_property(prop, labels, name=pname,
                             deadline_s=deadline_s)
            verdict = (f"holds ({result.iterations} iters)"
                       if result.holds is True
                       else "FAILS" if result.holds is False
                       else "UNDECIDED")
        else:
            raise ValueError(f"unknown mc engine {engine!r}")
        results[pname] = result
        ok = ok and result.holds is True
        outcomes.append(f"{pname}: {verdict}")
    return StageResult(
        "model_checking", ok,
        f"{engine} engine; " + "; ".join(outcomes),
        time.perf_counter() - start, data=results,
    )


def _coverage_stage(name: str, elab, seed: int, cycles: int,
                    backend: str, threshold: float) -> StageResult:
    from ..cover.functional import Covergroup

    start = time.perf_counter()
    group = Covergroup(f"dsl_{name}")
    points = {}
    for cname, (path, width) in sorted(elab.covers.items()):
        bins = [str(v) for v in range(1 << width)]
        points[cname] = (group.coverpoint(cname, bins), path)
    sim = RtlSimulator(elab.flat, backend=backend)
    sim.reset()
    rng = random.Random(seed)
    inputs = [(net.path, net.width) for net in elab.flat.inputs]
    for __ in range(cycles):
        for path, width in inputs:
            sim.set_input(path, rng.getrandbits(width))
        for point, path in points.values():
            point.sample(str(sim.read(path)))
        sim.step("K")
    fraction = group.coverage()
    ok = not sim.failures and fraction >= threshold
    return StageResult(
        "coverage", ok,
        f"{fraction:.0%} of {sum(len(p.bins) for p in group.points)} bins "
        f"over {cycles} cycles"
        + (f"; monitors fired: {[f.name for f in sim.failures[:3]]}"
           if sim.failures else ""),
        time.perf_counter() - start, data=group,
    )


def _campaign_stage(name: str, seed: int, cycles: int, backend: str,
                    max_faults: Optional[int], lanes: int) -> StageResult:
    from ..fault.campaign import CampaignConfig, FaultCampaign

    start = time.perf_counter()
    config = CampaignConfig(design=name, seed=seed, backend=backend,
                            rtl_cycles=cycles, max_faults=max_faults)
    report = FaultCampaign(config).run(lanes=lanes)
    counts = report.counts()
    ok = (counts.get("detected", 0) >= 1
          and counts.get("error", 0) == 0
          and counts.get("truncated", 0) == 0)
    return StageResult(
        "campaign", ok,
        f"{len(report.verdicts)} faults: {counts['detected']} detected, "
        f"{counts['masked']} masked, {counts['silent']} silent, "
        f"{counts['error']} errors",
        time.perf_counter() - start, data=report,
    )


def run_dsl_flow(
    name: str,
    seed: int = 2004,
    mc_engine: str = "sat",
    mc_max_k: int = 40,
    mc_deadline_s: Optional[float] = 120.0,
    rtl_backend: str = "interp",
    coverage_cycles: int = 64,
    coverage_threshold: float = 0.25,
    campaign_cycles: int = 32,
    campaign_max_faults: Optional[int] = 16,
    campaign_lanes: int = 1,
    lint_config: Optional[LintConfig] = None,
    semantic_lint: bool = False,
    stages: Optional[List[str]] = None,
) -> DslFlowReport:
    """Run the verification flow for the zoo design ``name``.

    ``stages`` restricts execution to a subset (in canonical order);
    elaboration always runs.  Execution stops at the first failing
    stage, like the LA-1 flow."""
    report = DslFlowReport(name)
    wanted = set(stages) if stages is not None else {
        "lint", "conformance", "model_checking", "coverage", "campaign"}

    start = time.perf_counter()
    elab = build_elaborated(name)
    stats = elab.flat.stats()
    report.fingerprint = netlist_fingerprint(elab)
    report.stages.append(StageResult(
        "elaborate", True,
        f"{len(elab.design.modules)} modules, {len(elab.asm.rules)} ASM "
        f"rules, {stats['regs']} regs, {stats['nets']} nets, "
        f"{stats['monitors']} monitors",
        time.perf_counter() - start, data=elab,
    ))

    runners = (
        ("lint", lambda: _lint_stage(name, elab, lint_config,
                                     semantic_lint)),
        ("conformance", lambda: _conformance_stage(name, elab,
                                                   rtl_backend)),
        ("model_checking", lambda: _mc_stage(name, elab, mc_engine,
                                             mc_max_k, mc_deadline_s)),
        ("coverage", lambda: _coverage_stage(name, elab, seed,
                                             coverage_cycles, rtl_backend,
                                             coverage_threshold)),
        ("campaign", lambda: _campaign_stage(name, seed, campaign_cycles,
                                             rtl_backend,
                                             campaign_max_faults,
                                             campaign_lanes)),
    )
    for stage_name, runner in runners:
        if stage_name not in wanted:
            continue
        result = runner()
        report.stages.append(result)
        if not result.ok:
            break
    return report
