"""``repro.dsl.faults`` -- fault campaigns over elaborated DSL designs.

Zoo campaigns reuse the whole ``repro.fault`` machinery -- verdict
taxonomy, golden-run differencing, checkpoint/resume, PPSFP lane
batching, process-pool sharding -- with an open-loop workload: a seeded
per-cycle input-vector stream replaces the LA-1 transaction host, and
the per-cycle output-port log replaces the transaction log.  Detection
ladder and verdict semantics are identical to the LA-1 campaign, so
reports merge and signatures compare across design kinds."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..fault.models import Fault, RtlBitFlip, RtlStuckAt
from ..fault.rtl_inject import RtlFaultInjector
from ..rtl.netlist import FlatDesign

__all__ = [
    "zoo_fault_list",
    "zoo_stimulus",
    "zoo_log_run",
    "run_zoo_fault",
    "run_zoo_batch",
]


def zoo_fault_list(flat: FlatDesign, include_flips: bool = True,
                   flip_edge: int = 5) -> List[Fault]:
    """Both stuck-at polarities on every register bit, plus one SEU per
    register (deterministic order: netlist register order)."""
    faults: List[Fault] = []
    for reg in flat.regs:
        for bit in range(reg.width):
            faults.append(RtlStuckAt(reg.path, bit, 0))
            faults.append(RtlStuckAt(reg.path, bit, 1))
        if include_flips:
            faults.append(RtlBitFlip(reg.path, 0, at_edge=flip_edge))
    return faults


def zoo_stimulus(flat: FlatDesign, seed: int, cycles: int
                 ) -> List[Dict[str, int]]:
    """The open-loop workload: one seeded input vector per cycle."""
    rng = random.Random(seed)
    inputs = [(net.path, net.width) for net in flat.inputs]
    return [
        {path: rng.getrandbits(width) for path, width in inputs}
        for __ in range(cycles)
    ]


def zoo_log_run(campaign, sim) -> Tuple:
    """Drive ``sim`` through the campaign's stimulus; the golden-
    comparable log is the per-cycle tuple of output-port values
    (sampled combinationally before each edge)."""
    stim = campaign._zoo_stimulus()
    outputs = campaign._design().top_outputs
    log = []
    for values in stim:
        for path, value in values.items():
            sim.set_input(path, value)
        log.append(tuple(sim.read(path) for path in outputs))
        sim.step("K")
    return tuple(log)


def zoo_golden_run(campaign) -> Tuple:
    """The fault-free reference log; raises if any design monitor fires
    (a zoo design must be self-consistent under its own workload)."""
    sim = campaign._rtl_simulator()
    sim.reset()
    log = zoo_log_run(campaign, sim)
    if sim.failures:
        raise RuntimeError(
            f"golden run of design {campaign.config.design!r} fails its "
            f"own monitors {sim.failures[:3]}")
    return log


def run_zoo_fault(campaign, fault: Fault):
    """One fault through the zoo detection ladder (mirrors
    ``FaultCampaign._run_rtl`` so verdicts merge transparently)."""
    from ..fault.campaign import FaultVerdict

    golden = campaign._rtl_golden_run()
    sim = campaign._rtl_simulator()
    sim.reset()
    injector = RtlFaultInjector(sim, [fault])
    injector.attach()
    try:
        log = zoo_log_run(campaign, sim)
    finally:
        injector.detach()
    detected_by = sorted({record.name for record in sim.failures})
    if detected_by:
        outcome, detail = "detected", ""
    elif not injector.triggered:
        outcome, detail = "masked", "fault never changed a state bit"
    elif log != golden:
        outcome = "silent"
        detail = ("output log diverged from golden run with no design "
                  "monitor firing")
    else:
        outcome, detail = "masked", "no observable divergence"
    return FaultVerdict(
        fault.fault_id, fault.layer, fault.kind, outcome, detected_by,
        detail, expected_detectable=fault.expect_detectable,
    )


def run_zoo_batch(campaign, batch: List[Fault], lanes: int) -> tuple:
    """One PPSFP pass over a zoo design: fault *k* in lane ``k+1``,
    lane 0 golden.  Divergence is accumulated with the lane-word trick
    (XOR every lane word against the broadcast of lane 0); verdicts are
    bit-identical to :func:`run_zoo_fault`.  Returns
    ``(verdicts, fallbacks)`` like ``repro.fault.ppsfp._run_batch``."""
    from ..fault.campaign import FaultVerdict

    golden = campaign._rtl_golden_run()
    sim = campaign._ppsfp_simulator(lanes)
    sim.reset()
    lane_map = list(range(1, len(batch) + 1))
    injector = RtlFaultInjector(sim, batch, lane_map=lane_map)
    injector.attach()
    all_lanes = (1 << lanes) - 1
    diverged = 0
    try:
        stim = campaign._zoo_stimulus()
        flat = campaign._design()
        outputs = [(path, flat.net(path).width)
                   for path in flat.top_outputs]
        for cycle, values in enumerate(stim):
            for path, value in values.items():
                sim.set_input(path, value)
            lane0 = []
            for path, width in outputs:
                value0 = 0
                for bit in range(width):
                    word = sim.lane_word(path, bit)
                    bit0 = word & 1
                    diverged |= word ^ (all_lanes if bit0 else 0)
                    value0 |= bit0 << bit
                lane0.append(value0)
            if tuple(lane0) != golden[cycle]:
                raise RuntimeError(
                    f"PPSFP golden lane diverged at cycle {cycle}")
            sim.step("K")
    finally:
        injector.detach()
    invalid = sim.conflict_lanes
    verdicts: dict = {}
    fallbacks: List[Fault] = []
    for index, fault in enumerate(batch):
        lane = lane_map[index]
        if (invalid >> lane) & 1:
            fallbacks.append(fault)
            continue
        detected_by = sim.lane_failure_names(lane)
        if detected_by:
            outcome, detail = "detected", ""
        elif not injector.lane_triggered(lane):
            outcome, detail = "masked", "fault never changed a state bit"
        elif (diverged >> lane) & 1:
            outcome = "silent"
            detail = ("output log diverged from golden run with no design "
                      "monitor firing")
        else:
            outcome, detail = "masked", "no observable divergence"
        verdicts[fault.fault_id] = FaultVerdict(
            fault.fault_id, fault.layer, fault.kind, outcome, detected_by,
            detail, expected_detectable=fault.expect_detectable,
        )
    return verdicts, fallbacks
