"""``python -m repro.dsl`` -- the frontend CLI.

* ``list`` -- the zoo inventory with per-design statistics;
* ``elaborate <design>`` -- lower one design, print level statistics
  and the netlist fingerprint (``--verilog`` dumps the emitted RTL);
* ``verify <design>`` -- the full flow (lint, conformance, model
  checking, coverage, fault-campaign smoke); exit code 1 on any
  failing stage, for CI gates.
"""

from __future__ import annotations

import argparse
import json
import sys

from .zoo import build_elaborated, zoo_names, zoo_properties


def _cmd_list(args) -> int:
    from .zoo import ZOO

    for name in zoo_names():
        entry = ZOO[name]
        elab = build_elaborated(name)
        stats = elab.flat.stats()
        params = ", ".join(f"{k}={v}" for k, v in entry.PARAMS.items())
        print(f"{name:<10} {params:<20} {stats['regs']} regs, "
              f"{stats['nets']} nets, {stats['monitors']} monitors, "
              f"{len(zoo_properties(name, elab))} properties")
    return 0


def _cmd_elaborate(args) -> int:
    from .elab import netlist_fingerprint

    elab = build_elaborated(args.design)
    if args.verilog:
        from ..rtl.verilog_emit import emit_verilog

        print(emit_verilog(elab.rtl))
        return 0
    stats = elab.flat.stats()
    out = {
        "design": args.design,
        "modules": [m.name for m in elab.design.modules],
        "asm_rules": [r.name for r in elab.asm.rules],
        "rtl": stats,
        "probes": sorted(elab.probes),
        "covers": sorted(elab.covers),
        "fingerprint": netlist_fingerprint(elab),
    }
    if args.json:
        print(json.dumps(out, indent=2))
    else:
        print(f"{args.design}: {len(out['modules'])} modules -> "
              f"{len(out['asm_rules'])} ASM rules, {stats['regs']} regs / "
              f"{stats['nets']} nets / {stats['monitors']} monitors")
        print(f"  probes: {', '.join(out['probes'])}")
        print(f"  covers: {', '.join(out['covers'])}")
        print(f"  fingerprint: {out['fingerprint']}")
    return 0


def _cmd_verify(args) -> int:
    from .flow import run_dsl_flow

    report = run_dsl_flow(
        args.design,
        seed=args.seed,
        mc_engine=args.mc_engine,
        stages=args.stages.split(",") if args.stages else None,
    )
    print(report.render())
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dsl",
        description="design-language frontend: list, elaborate and "
                    "verify zoo designs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="zoo inventory")

    p_elab = sub.add_parser("elaborate", help="lower one design")
    p_elab.add_argument("design", choices=zoo_names())
    p_elab.add_argument("--verilog", action="store_true",
                        help="dump emitted Verilog instead of statistics")
    p_elab.add_argument("--json", action="store_true")

    p_verify = sub.add_parser("verify", help="full flow on one design")
    p_verify.add_argument("design", choices=zoo_names())
    p_verify.add_argument("--seed", type=int, default=2004)
    p_verify.add_argument("--mc-engine", choices=("sat", "bdd"),
                          default="sat")
    p_verify.add_argument("--stages", default=None,
                          help="comma-separated subset, e.g. "
                               "lint,conformance")

    args = parser.parse_args(argv)
    return {"list": _cmd_list, "elaborate": _cmd_elaborate,
            "verify": _cmd_verify}[args.command](args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `elaborate --verilog | head`
        sys.exit(0)
