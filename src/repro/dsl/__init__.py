"""``repro.dsl`` -- an embedded design-language frontend.

A design is a handful of decorated Python classes: typed ports,
fixed-width registers and register arrays with write-once-per-cycle
semantics, guarded update rules, and ready/valid channels composing
modules.  One :func:`elaborate` call lowers a design to all three model
levels of the methodology -- an :class:`repro.asm.AsmMachine`, a flat
:class:`repro.rtl.hdl.RtlModule` netlist and a ``repro.sysc`` module
tree -- so the same ~50-line description runs through lint, BDD/SAT
model checking, ABV, functional coverage, fault campaigns and the
verification service unchanged, with a cross-level conformance harness
asserting the three models agree trace for trace.

``repro.dsl.zoo`` ships elaboration-ready designs (FIFO, round-robin
arbiter, QDR-II-style burst controller, 2x2 NoC router);
``python -m repro.dsl verify <design>`` runs the full flow on one.
"""

from __future__ import annotations

from .elab import (
    ElaboratedDesign,
    RtlDslImplementation,
    SyscDslImplementation,
    check_dsl_conformance,
    elaborate,
    netlist_fingerprint,
)
from .flow import DslFlowReport, run_dsl_flow
from .lang import (
    C,
    Array,
    Channel,
    Design,
    DslError,
    DslInterp,
    DslModule,
    Sig,
    cat,
    design_step,
    initial_state,
    module,
    mux,
    ule,
    ult,
)

__all__ = [
    "Array",
    "C",
    "Channel",
    "Design",
    "DslError",
    "DslFlowReport",
    "DslInterp",
    "DslModule",
    "ElaboratedDesign",
    "RtlDslImplementation",
    "SyscDslImplementation",
    "Sig",
    "cat",
    "check_dsl_conformance",
    "design_step",
    "elaborate",
    "initial_state",
    "module",
    "mux",
    "netlist_fingerprint",
    "run_dsl_flow",
    "ule",
    "ult",
]
