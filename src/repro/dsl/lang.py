"""``repro.dsl.lang`` -- the embedded design-language frontend.

An assassyn-style hardware description language embedded in Python:
``@module`` classes declare typed ports, write-once-per-cycle registers,
fixed-width arrays and guarded ``rule`` blocks; a :class:`Design`
instantiates modules and wires them together with 1-deep ready/valid
channels (``send``/``recv`` inside rules).  Every declaration captures
its Python source location so elaboration and lint diagnostics can point
at the frontend line rather than a generated net name.

The expression AST is *dual-interpreted*: :func:`deval` evaluates it
over a plain Python environment (the semantics shared by the ASM and
SystemC lowerings and the reference interpreter), while
``repro.dsl.elab`` lowers the same nodes to ``repro.rtl.hdl``
expressions.  All values are fixed-width unsigned two-state integers;
arithmetic wraps at the declared width.

Write-once-per-cycle registers are the language's core safety contract:
a rule statically updating one target twice is rejected at declaration
time, and two rules dynamically driving *different* values into one
location in the same cycle raise :class:`DslError` at runtime, citing
both writes' source locations.  (Consistent same-value writes are
allowed, mirroring ``repro.asm``'s update-conflict semantics; the RTL
lowering checks the same condition with synthesized conflict monitors.)
"""

from __future__ import annotations

import sys
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DslError",
    "SrcLoc",
    "DExpr",
    "DConst",
    "C",
    "Sig",
    "Array",
    "ArrayRef",
    "Channel",
    "Rule",
    "DslModule",
    "Design",
    "module",
    "mux",
    "cat",
    "ult",
    "ule",
    "MODULE_REGISTRY",
    "initial_state",
    "design_step",
    "eval_outputs",
    "DslInterp",
]


class DslError(Exception):
    """A frontend error: bad declaration, double write, width mismatch.

    The message always embeds the relevant ``file:line`` source
    locations captured when the offending construct was declared."""


class SrcLoc:
    """A captured frontend source location (``file:line``)."""

    __slots__ = ("filename", "line")

    def __init__(self, filename: str, line: int):
        self.filename = filename
        self.line = line

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}"

    def __repr__(self) -> str:
        return f"SrcLoc({self})"


def here(depth: int = 1) -> SrcLoc:
    """Capture the caller's source location ``depth`` frames up."""
    frame = sys._getframe(depth + 1)
    return SrcLoc(os.path.basename(frame.f_code.co_filename),
                  frame.f_lineno)


def _mask(width: int) -> int:
    return (1 << width) - 1


def _check_name(name: str, what: str, loc: SrcLoc) -> None:
    if not name.isidentifier():
        raise DslError(f"{what} name {name!r} is not an identifier "
                       f"(declared at {loc})")


# ---------------------------------------------------------------------------
# expression AST
# ---------------------------------------------------------------------------

class DExpr:
    """Base class of DSL expressions; every node knows its bit width."""

    width = 0

    # -- operator sugar ---------------------------------------------------
    def __and__(self, other): return DBin("and", self, other)
    def __rand__(self, other): return DBin("and", other, self)
    def __or__(self, other): return DBin("or", self, other)
    def __ror__(self, other): return DBin("or", other, self)
    def __xor__(self, other): return DBin("xor", self, other)
    def __rxor__(self, other): return DBin("xor", other, self)
    def __add__(self, other): return DBin("add", self, other)
    def __radd__(self, other): return DBin("add", other, self)
    def __sub__(self, other): return DBin("sub", self, other)
    def __rsub__(self, other): return DBin("sub", other, self)
    def __invert__(self): return DNot(self)

    def eq(self, other) -> "DExpr":
        return DBin("eq", self, other)

    def ne(self, other) -> "DExpr":
        return DNot(DBin("eq", self, other))

    def bit(self, index: int) -> "DExpr":
        return self.slice(index, index)

    def slice(self, lo: int, hi: int) -> "DExpr":
        return DSlice(self, lo, hi)

    def reduce_or(self) -> "DExpr":
        return DReduce("or", self)

    def reduce_and(self) -> "DExpr":
        return DReduce("and", self)

    def reduce_xor(self) -> "DExpr":
        return DReduce("xor", self)

    # -- dual interpretation ---------------------------------------------
    def deval(self, env: Dict[object, object]) -> int:
        """Evaluate over ``env`` (keyed by :class:`Sig`/:class:`Array`
        object identity)."""
        raise NotImplementedError

    def refs(self) -> Iterator[object]:
        """Yield every :class:`Sig`/:class:`Array` the expression reads."""
        return iter(())


def _as_dexpr(value: Union[int, bool, DExpr], width: int,
              loc: Optional[SrcLoc] = None) -> DExpr:
    """Coerce a Python int/bool to a constant of ``width`` bits."""
    if isinstance(value, DExpr):
        return value
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        if width <= 0:
            raise DslError(f"cannot infer a width for bare constant {value}"
                           + (f" (at {loc})" if loc else ""))
        if value < 0 or value > _mask(width):
            raise DslError(f"constant {value} does not fit in {width} bits"
                           + (f" (at {loc})" if loc else ""))
        return DConst(value, width)
    raise DslError(f"expected an expression or int, got {type(value).__name__}"
                   + (f" (at {loc})" if loc else ""))


def _pair(a, b) -> Tuple[DExpr, DExpr]:
    """Coerce the int half of a mixed (expr, int) pair to the other's
    width."""
    aw = a.width if isinstance(a, DExpr) else 0
    bw = b.width if isinstance(b, DExpr) else 0
    ea = _as_dexpr(a, bw)
    eb = _as_dexpr(b, aw)
    return ea, eb


class DConst(DExpr):
    __slots__ = ("value", "width")

    def __init__(self, value: int, width: int):
        if width <= 0:
            raise DslError(f"constant width must be positive, got {width}")
        if value < 0 or value > _mask(width):
            raise DslError(f"constant {value} does not fit in {width} bits")
        self.value = value
        self.width = width

    def deval(self, env):
        return self.value


class DBin(DExpr):
    OPS = ("and", "or", "xor", "add", "sub", "eq")
    __slots__ = ("op", "a", "b", "width")

    def __init__(self, op: str, a, b):
        if op not in self.OPS:
            raise DslError(f"unknown binary op {op!r}")
        self.a, self.b = _pair(a, b)
        if self.a.width != self.b.width:
            raise DslError(f"width mismatch in {op}: "
                           f"{self.a.width} vs {self.b.width}")
        self.op = op
        self.width = 1 if op == "eq" else self.a.width

    def deval(self, env):
        av = self.a.deval(env)
        bv = self.b.deval(env)
        if self.op == "and":
            return av & bv
        if self.op == "or":
            return av | bv
        if self.op == "xor":
            return av ^ bv
        if self.op == "add":
            return (av + bv) & _mask(self.width)
        if self.op == "sub":
            return (av - bv) & _mask(self.width)
        return int(av == bv)

    def refs(self):
        yield from self.a.refs()
        yield from self.b.refs()


class DNot(DExpr):
    __slots__ = ("a", "width")

    def __init__(self, a):
        if not isinstance(a, DExpr):
            raise DslError("~ needs an expression operand")
        self.a = a
        self.width = a.width

    def deval(self, env):
        return (~self.a.deval(env)) & _mask(self.width)

    def refs(self):
        yield from self.a.refs()


class DMux(DExpr):
    __slots__ = ("sel", "if_true", "if_false", "width")

    def __init__(self, sel: DExpr, if_true, if_false):
        if not isinstance(sel, DExpr) or sel.width != 1:
            raise DslError("mux selector must be a 1-bit expression")
        self.sel = sel
        self.if_true, self.if_false = _pair(if_true, if_false)
        if self.if_true.width != self.if_false.width:
            raise DslError(f"mux arm width mismatch: "
                           f"{self.if_true.width} vs {self.if_false.width}")
        self.width = self.if_true.width

    def deval(self, env):
        if self.sel.deval(env):
            return self.if_true.deval(env)
        return self.if_false.deval(env)

    def refs(self):
        yield from self.sel.refs()
        yield from self.if_true.refs()
        yield from self.if_false.refs()


class DSlice(DExpr):
    __slots__ = ("a", "lo", "hi", "width")

    def __init__(self, a: DExpr, lo: int, hi: int):
        if not (0 <= lo <= hi < a.width):
            raise DslError(f"slice [{hi}:{lo}] out of range for "
                           f"{a.width}-bit expression")
        self.a = a
        self.lo = lo
        self.hi = hi
        self.width = hi - lo + 1

    def deval(self, env):
        return (self.a.deval(env) >> self.lo) & _mask(self.width)

    def refs(self):
        yield from self.a.refs()


class DCat(DExpr):
    """Concatenation; ``parts[0]`` is the least-significant part."""

    __slots__ = ("parts", "width")

    def __init__(self, parts: Sequence[DExpr]):
        if not parts or not all(isinstance(p, DExpr) for p in parts):
            raise DslError("cat() needs one or more expressions")
        self.parts = tuple(parts)
        self.width = sum(p.width for p in self.parts)

    def deval(self, env):
        value = 0
        shift = 0
        for part in self.parts:
            value |= part.deval(env) << shift
            shift += part.width
        return value

    def refs(self):
        for part in self.parts:
            yield from part.refs()


class DReduce(DExpr):
    __slots__ = ("op", "a", "width")

    def __init__(self, op: str, a: DExpr):
        if op not in ("or", "and", "xor"):
            raise DslError(f"unknown reduction {op!r}")
        self.op = op
        self.a = a
        self.width = 1

    def deval(self, env):
        value = self.a.deval(env)
        if self.op == "or":
            return int(value != 0)
        if self.op == "xor":
            return bin(value).count("1") & 1
        return int(value == _mask(self.a.width))

    def refs(self):
        yield from self.a.refs()


def C(value: int, width: int = 1) -> DConst:
    """Shorthand constant constructor (mirrors ``repro.rtl.hdl.C``)."""
    return DConst(value, width)


def mux(sel: DExpr, if_true, if_false) -> DExpr:
    """``if_true`` when ``sel`` else ``if_false`` (same widths)."""
    return DMux(sel, if_true, if_false)


def cat(*parts: DExpr) -> DExpr:
    """Concatenate; first argument is the least-significant part."""
    return DCat(parts)


def ult(a, b) -> DExpr:
    """Unsigned ``a < b``, built as a bitwise ripple comparator so it
    lowers through the base op set (and/or/xor/not)."""
    ea, eb = _pair(a, b)
    if ea.width != eb.width:
        raise DslError(f"ult width mismatch: {ea.width} vs {eb.width}")
    lt: DExpr = DConst(0, 1)
    for i in range(ea.width):
        abit = ea.bit(i)
        bbit = eb.bit(i)
        lt = (~abit & bbit) | (~(abit ^ bbit) & lt)
    return lt


def ule(a, b) -> DExpr:
    """Unsigned ``a <= b``."""
    ea, eb = _pair(a, b)
    return ~ult(eb, ea)


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------

class Sig(DExpr):
    """A named signal: an input/output port, a register, or one of a
    channel's internal ``valid``/``data`` state bits."""

    KINDS = ("in", "out", "reg", "chan")

    __slots__ = ("owner", "name", "kind", "width", "init", "loc")

    def __init__(self, owner: str, name: str, kind: str, width: int,
                 init: int, loc: SrcLoc):
        if kind not in self.KINDS:
            raise DslError(f"unknown signal kind {kind!r}")
        if width <= 0:
            raise DslError(f"{owner}.{name}: width must be positive, "
                           f"got {width} (declared at {loc})")
        if init < 0 or init > _mask(width):
            raise DslError(f"{owner}.{name}: initial value {init} does not "
                           f"fit in {width} bits (declared at {loc})")
        self.owner = owner
        self.name = name
        self.kind = kind
        self.width = width
        self.init = init
        self.loc = loc

    @property
    def var_name(self) -> str:
        """The ASM state-variable name."""
        return f"{self.owner}.{self.name}"

    @property
    def rtl_name(self) -> str:
        """The flattened RTL net name."""
        return f"{self.owner}_{self.name}"

    def deval(self, env):
        try:
            return env[self]
        except KeyError:
            raise DslError(f"signal {self.var_name} (declared at "
                           f"{self.loc}) has no value in this context")

    def refs(self):
        yield self

    def __repr__(self):
        return f"Sig({self.kind} {self.var_name}:{self.width})"


class Array(object):
    """A fixed-width register array (a small memory)."""

    __slots__ = ("owner", "name", "depth", "width", "init", "loc")

    def __init__(self, owner: str, name: str, depth: int, width: int,
                 init, loc: SrcLoc):
        if depth <= 0 or width <= 0:
            raise DslError(f"{owner}.{name}: array depth and width must be "
                           f"positive (declared at {loc})")
        if isinstance(init, int):
            init = [init] * depth
        init = tuple(int(v) for v in init)
        if len(init) != depth:
            raise DslError(f"{owner}.{name}: {len(init)} initial values for "
                           f"depth {depth} (declared at {loc})")
        for v in init:
            if v < 0 or v > _mask(width):
                raise DslError(f"{owner}.{name}: initial value {v} does not "
                               f"fit in {width} bits (declared at {loc})")
        self.owner = owner
        self.name = name
        self.depth = depth
        self.width = width
        self.init = init
        self.loc = loc

    @property
    def var_name(self) -> str:
        return f"{self.owner}.{self.name}"

    def entry_rtl_name(self, index: int) -> str:
        return f"{self.owner}_{self.name}_{index}"

    def __getitem__(self, index) -> "ArrayRef":
        if isinstance(index, int):
            if not 0 <= index < self.depth:
                raise DslError(f"{self.var_name}[{index}]: index out of "
                               f"range for depth {self.depth}")
            width = max(1, (self.depth - 1).bit_length())
            index = DConst(index, width)
        if not isinstance(index, DExpr):
            raise DslError(f"{self.var_name}: index must be an int or "
                           f"expression")
        return ArrayRef(self, index)

    def __repr__(self):
        return f"Array({self.var_name}[{self.depth}]:{self.width})"


class ArrayRef(DExpr):
    """``array[index]`` -- readable as an expression, writable as an
    update target.  Out-of-range dynamic reads return entry 0;
    out-of-range dynamic writes are dropped (zoo designs size their
    index expressions so neither can happen)."""

    __slots__ = ("array", "index", "width")

    def __init__(self, array: Array, index: DExpr):
        self.array = array
        self.index = index
        self.width = array.width

    def deval(self, env):
        idx = self.index.deval(env)
        entries = env[self.array]
        if 0 <= idx < self.array.depth:
            return entries[idx]
        return entries[0]

    def refs(self):
        yield self.array
        yield from self.index.refs()

    def __repr__(self):
        return f"ArrayRef({self.array.var_name}[...])"


class Channel:
    """A 1-deep ready/valid channel between modules.

    ``send`` enqueues when the slot is empty (the sending rule's guard
    is conjoined with ``~valid``); ``recv`` dequeues when it is full
    (guard conjoined with ``valid``).  Back-to-back full throughput is
    *not* supported (ready is ``~valid``, not ``~valid | deq``) -- the
    simple semantics keep all three lowerings trivially in lock-step."""

    __slots__ = ("design", "name", "width", "loc", "valid_sig", "data_sig",
                 "sender", "receiver")

    def __init__(self, design: "Design", name: str, width: int, loc: SrcLoc):
        _check_name(name, "channel", loc)
        self.design = design
        self.name = name
        self.width = width
        self.loc = loc
        self.valid_sig = Sig(name, "valid", "chan", 1, 0, loc)
        self.data_sig = Sig(name, "data", "chan", width, 0, loc)
        self.sender: Optional[str] = None    # module name that sends
        self.receiver: Optional[str] = None  # module name that receives

    @property
    def valid(self) -> DExpr:
        """Full flag (readable from any module)."""
        return self.valid_sig

    @property
    def ready(self) -> DExpr:
        """Space available for a send this cycle."""
        return ~self.valid_sig

    @property
    def data(self) -> DExpr:
        """Buffered payload (meaningful only while ``valid``)."""
        return self.data_sig

    def __repr__(self):
        return f"Channel({self.name}:{self.width})"


class Update:
    __slots__ = ("target", "value", "loc")

    def __init__(self, target, value: DExpr, loc: SrcLoc):
        self.target = target
        self.value = value
        self.loc = loc


class Rule:
    """A guarded atomic action: when the guard (conjoined with channel
    readiness) holds, all updates/sends/recvs apply at the clock edge."""

    def __init__(self, module: "DslModule", name: str,
                 when: Optional[DExpr], loc: SrcLoc):
        _check_name(name, "rule", loc)
        self.module = module
        self.name = name
        self.when = when if when is not None else DConst(1, 1)
        if self.when.width != 1:
            raise DslError(f"rule {module.name}.{name}: guard must be 1-bit "
                           f"(declared at {loc})")
        self.loc = loc
        self.updates: List[Update] = []
        self.sends: List[Tuple[Channel, DExpr, SrcLoc]] = []
        self.recvs: List[Tuple[Channel, SrcLoc]] = []

    @property
    def full_name(self) -> str:
        return f"{self.module.name}.{self.name}"

    # -- statements -------------------------------------------------------
    def update(self, target, value) -> "Rule":
        """Schedule ``target <= value`` for cycles where this rule fires."""
        loc = here()
        if isinstance(target, Sig):
            if target.kind != "reg":
                raise DslError(f"rule {self.full_name}: cannot update "
                               f"{target.kind}-signal {target.var_name} "
                               f"(at {loc}); only registers are writable")
            if target.owner != self.module.name:
                raise DslError(f"rule {self.full_name}: register "
                               f"{target.var_name} belongs to another module "
                               f"(at {loc}); communicate over a channel")
            width = target.width
        elif isinstance(target, ArrayRef):
            if target.array.owner != self.module.name:
                raise DslError(f"rule {self.full_name}: array "
                               f"{target.array.var_name} belongs to another "
                               f"module (at {loc})")
            width = target.array.width
        else:
            raise DslError(f"rule {self.full_name}: update target must be a "
                           f"register or array element (at {loc})")
        value = _as_dexpr(value, width, loc)
        if value.width != width:
            raise DslError(f"rule {self.full_name}: update value is "
                           f"{value.width} bits, target is {width} "
                           f"(at {loc})")
        for prev in self.updates:
            if self._same_static_target(prev.target, target):
                raise DslError(f"rule {self.full_name}: double write to "
                               f"{self._target_name(target)} (first at "
                               f"{prev.loc}, again at {loc})")
        self.updates.append(Update(target, value, loc))
        return self

    def send(self, chan: Channel, value) -> "Rule":
        """Enqueue ``value`` into ``chan`` (implies ``chan.ready``)."""
        loc = here()
        if not isinstance(chan, Channel):
            raise DslError(f"rule {self.full_name}: send target must be a "
                           f"Channel (at {loc})")
        for other, rloc in self.recvs:
            if other is chan:
                raise DslError(f"rule {self.full_name}: cannot send and "
                               f"recv on channel {chan.name} in one rule "
                               f"(recv at {rloc}, send at {loc})")
        for other, _, sloc in self.sends:
            if other is chan:
                raise DslError(f"rule {self.full_name}: double send on "
                               f"channel {chan.name} (first at {sloc}, "
                               f"again at {loc})")
        if chan.sender is not None and chan.sender != self.module.name:
            raise DslError(f"channel {chan.name}: modules {chan.sender} and "
                           f"{self.module.name} both send (second sender at "
                           f"{loc}); a channel has one sending module")
        chan.sender = self.module.name
        value = _as_dexpr(value, chan.width, loc)
        if value.width != chan.width:
            raise DslError(f"rule {self.full_name}: send value is "
                           f"{value.width} bits, channel {chan.name} is "
                           f"{chan.width} (at {loc})")
        self.sends.append((chan, value, loc))
        return self

    def recv(self, chan: Channel) -> "Rule":
        """Dequeue from ``chan`` (implies ``chan.valid``); read the
        payload with ``chan.data`` in the same rule."""
        loc = here()
        if not isinstance(chan, Channel):
            raise DslError(f"rule {self.full_name}: recv target must be a "
                           f"Channel (at {loc})")
        for other, _, sloc in self.sends:
            if other is chan:
                raise DslError(f"rule {self.full_name}: cannot send and "
                               f"recv on channel {chan.name} in one rule "
                               f"(send at {sloc}, recv at {loc})")
        for other, rloc in self.recvs:
            if other is chan:
                raise DslError(f"rule {self.full_name}: double recv on "
                               f"channel {chan.name} (first at {rloc}, "
                               f"again at {loc})")
        if chan.receiver is not None and chan.receiver != self.module.name:
            raise DslError(f"channel {chan.name}: modules {chan.receiver} "
                           f"and {self.module.name} both recv (second "
                           f"receiver at {loc})")
        chan.receiver = self.module.name
        self.recvs.append((chan, loc))
        return self

    # -- helpers ----------------------------------------------------------
    @staticmethod
    def _same_static_target(a, b) -> bool:
        if isinstance(a, Sig) and isinstance(b, Sig):
            return a is b
        if isinstance(a, ArrayRef) and isinstance(b, ArrayRef):
            if a.array is not b.array:
                return False
            if isinstance(a.index, DConst) and isinstance(b.index, DConst):
                return a.index.value == b.index.value
            return False
        return False

    @staticmethod
    def _target_name(target) -> str:
        if isinstance(target, Sig):
            return target.var_name
        return f"{target.array.var_name}[...]"

    def fire_expr(self) -> DExpr:
        """The effective guard: ``when`` conjoined with channel
        readiness for every send and recv."""
        fire = self.when
        for chan, _, _ in self.sends:
            fire = fire & ~chan.valid_sig
        for chan, _ in self.recvs:
            fire = fire & chan.valid_sig
        return fire

    def input_refs(self) -> List[Sig]:
        """The input ports this rule's expressions read (for ASM domain
        restriction)."""
        seen: List[Sig] = []
        exprs: List[DExpr] = [self.fire_expr()]
        for upd in self.updates:
            exprs.append(upd.value)
            if isinstance(upd.target, ArrayRef):
                exprs.append(upd.target.index)
        for _, value, _ in self.sends:
            exprs.append(value)
        for expr in exprs:
            for ref in expr.refs():
                if isinstance(ref, Sig) and ref.kind == "in":
                    if ref not in seen:
                        seen.append(ref)
        return seen


class Probe:
    __slots__ = ("name", "expr", "loc")

    def __init__(self, name: str, expr: DExpr, loc: SrcLoc):
        self.name = name
        self.expr = expr
        self.loc = loc


class MonitorDecl:
    __slots__ = ("name", "expr", "message", "loc")

    def __init__(self, name: str, expr: DExpr, message: str, loc: SrcLoc):
        self.name = name
        self.expr = expr
        self.message = message
        self.loc = loc


class DslModule:
    """Base class of ``@module`` design units.  Subclasses implement
    :meth:`build` and declare everything through the ``self.*``
    factories; instantiate through :meth:`Design.instantiate`."""

    def __init__(self, design: "Design", name: str, **params):
        _check_name(name, "module", here())
        self.design = design
        self.name = name
        self.params = dict(params)
        self.inputs: List[Sig] = []
        self.outputs: List[Sig] = []
        self.regs: List[Sig] = []
        self.arrays: List[Array] = []
        self.rules: List[Rule] = []
        self.drives: Dict[Sig, Tuple[DExpr, SrcLoc]] = {}
        self.probes: List[Probe] = []
        self.covers: List[Probe] = []
        self.monitors: List[MonitorDecl] = []
        self.waivers: List[Tuple[str, str, str]] = []
        self._names: Dict[str, SrcLoc] = {}
        self.loc = here()
        self.build(**params)

    # -- declaration factories -------------------------------------------
    def _claim(self, name: str, what: str, loc: SrcLoc) -> None:
        _check_name(name, what, loc)
        if name in self._names:
            raise DslError(f"module {self.name}: duplicate declaration "
                           f"{name!r} (first at {self._names[name]}, again "
                           f"at {loc})")
        self._names[name] = loc

    def input(self, name: str, width: int = 1) -> Sig:
        loc = here()
        self._claim(name, "input", loc)
        sig = Sig(self.name, name, "in", width, 0, loc)
        self.inputs.append(sig)
        return sig

    def output(self, name: str, width: int = 1) -> Sig:
        loc = here()
        self._claim(name, "output", loc)
        sig = Sig(self.name, name, "out", width, 0, loc)
        self.outputs.append(sig)
        return sig

    def reg(self, name: str, width: int = 1, init: int = 0) -> Sig:
        loc = here()
        self._claim(name, "reg", loc)
        sig = Sig(self.name, name, "reg", width, init, loc)
        self.regs.append(sig)
        return sig

    def array(self, name: str, depth: int, width: int, init=0) -> Array:
        loc = here()
        self._claim(name, "array", loc)
        arr = Array(self.name, name, depth, width, init, loc)
        self.arrays.append(arr)
        return arr

    def rule(self, name: str, when: Optional[DExpr] = None) -> Rule:
        loc = here()
        self._claim(name, "rule", loc)
        r = Rule(self, name, when, loc)
        self.rules.append(r)
        return r

    def drive(self, out_sig: Sig, expr) -> None:
        """Combinationally drive an output port."""
        loc = here()
        if not isinstance(out_sig, Sig) or out_sig.kind != "out":
            raise DslError(f"module {self.name}: drive target must be an "
                           f"output port (at {loc})")
        if out_sig.owner != self.name:
            raise DslError(f"module {self.name}: output "
                           f"{out_sig.var_name} belongs to another module "
                           f"(at {loc})")
        if out_sig in self.drives:
            raise DslError(f"module {self.name}: output {out_sig.name} "
                           f"driven twice (first at "
                           f"{self.drives[out_sig][1]}, again at {loc})")
        expr = _as_dexpr(expr, out_sig.width, loc)
        if expr.width != out_sig.width:
            raise DslError(f"module {self.name}: output {out_sig.name} is "
                           f"{out_sig.width} bits, driver is {expr.width} "
                           f"(at {loc})")
        self.drives[out_sig] = (expr, loc)

    def probe(self, name: str, expr: DExpr) -> None:
        """Expose a 1-bit expression as a named observation net -- the
        atom label for PSL properties and the MC engines."""
        loc = here()
        self._claim(name, "probe", loc)
        expr = _as_dexpr(expr, 1, loc)
        if expr.width != 1:
            raise DslError(f"module {self.name}: probe {name} must be "
                           f"1-bit, got {expr.width} (at {loc})")
        self.probes.append(Probe(name, expr, loc))

    def cover(self, name: str, expr: DExpr) -> None:
        """Declare a functional-coverage point sampled every cycle."""
        loc = here()
        # covers get a "cov_" RTL prefix, so they have their own
        # namespace and may share a name with the rule they observe
        _check_name(name, "cover", loc)
        self._claim(f"cov_{name}", "cover", loc)
        if not isinstance(expr, DExpr):
            raise DslError(f"module {self.name}: cover {name} needs an "
                           f"expression (at {loc})")
        if expr.width > 4:
            raise DslError(f"module {self.name}: cover {name} is "
                           f"{expr.width} bits; keep coverpoints <= 4 bits "
                           f"(at {loc})")
        self.covers.append(Probe(name, expr, loc))

    def waive(self, rule: str, pattern: str, reason: str) -> None:
        """Declare a justified lint waiver for this module's RTL nets.

        ``pattern`` is an fnmatch glob over the module-local declaration
        name (e.g. ``"mem_*"``); elaboration prefixes it into the flat
        namespace.  A reason is mandatory -- unexplained suppressions
        are exactly what inline waivers exist to prevent."""
        loc = here()
        if not reason.strip():
            raise DslError(f"module {self.name}: waiver for {rule!r} "
                           f"needs a justification (at {loc})")
        self.waivers.append((rule, pattern, reason))

    def monitor(self, name: str, expr: DExpr, message: str = "") -> None:
        """Declare an error monitor: firing (value 1) at a clock edge is
        a checker failure at every lowered level."""
        loc = here()
        self._claim(name, "monitor", loc)
        expr = _as_dexpr(expr, 1, loc)
        if expr.width != 1:
            raise DslError(f"module {self.name}: monitor {name} must be "
                           f"1-bit, got {expr.width} (at {loc})")
        self.monitors.append(MonitorDecl(
            name, expr, message or f"{self.name}.{name} fired", loc))

    # -- subclass hook ----------------------------------------------------
    def build(self, **params):  # pragma: no cover - abstract
        raise NotImplementedError(
            f"{type(self).__name__} must implement build()")


MODULE_REGISTRY: Dict[str, type] = {}


def module(cls: type) -> type:
    """Class decorator registering a :class:`DslModule` subclass."""
    if not (isinstance(cls, type) and issubclass(cls, DslModule)):
        raise DslError(f"@module needs a DslModule subclass, got {cls!r}")
    MODULE_REGISTRY[cls.__name__] = cls
    return cls


class Design:
    """A closed composition of module instances and channels."""

    def __init__(self, name: str):
        _check_name(name, "design", here())
        self.name = name
        self.loc = here()
        self.modules: List[DslModule] = []
        self.channels: List[Channel] = []
        self._names: Dict[str, SrcLoc] = {}

    def _claim(self, name: str, what: str, loc: SrcLoc) -> None:
        if name in self._names:
            raise DslError(f"design {self.name}: duplicate {what} name "
                           f"{name!r} (first at {self._names[name]}, again "
                           f"at {loc})")
        self._names[name] = loc

    def instantiate(self, cls: type, name: str, **params) -> DslModule:
        loc = here()
        self._claim(name, "module", loc)
        if not (isinstance(cls, type) and issubclass(cls, DslModule)):
            raise DslError(f"design {self.name}: instantiate needs a "
                           f"DslModule subclass (at {loc})")
        inst = cls(self, name, **params)
        self.modules.append(inst)
        return inst

    def channel(self, name: str, width: int) -> Channel:
        loc = here()
        self._claim(name, "channel", loc)
        chan = Channel(self, name, width, loc)
        self.channels.append(chan)
        return chan

    # -- enumeration helpers ---------------------------------------------
    def state_sigs(self) -> List[Sig]:
        """Registers and channel state, in declaration order."""
        sigs: List[Sig] = []
        for mod in self.modules:
            sigs.extend(mod.regs)
        for chan in self.channels:
            sigs.append(chan.valid_sig)
            sigs.append(chan.data_sig)
        return sigs

    def state_arrays(self) -> List[Array]:
        arrays: List[Array] = []
        for mod in self.modules:
            arrays.extend(mod.arrays)
        return arrays

    def input_ports(self) -> List[Tuple[str, Sig]]:
        """``(flat_name, sig)`` pairs for every module input port."""
        ports = []
        for mod in self.modules:
            for sig in mod.inputs:
                ports.append((sig.rtl_name, sig))
        return ports

    def output_ports(self) -> List[Tuple[str, Sig]]:
        ports = []
        for mod in self.modules:
            for sig in mod.outputs:
                ports.append((sig.rtl_name, sig))
        return ports

    def all_rules(self) -> List[Rule]:
        """Every rule in module-declaration order (= write priority)."""
        rules: List[Rule] = []
        for mod in self.modules:
            rules.extend(mod.rules)
        return rules


# ---------------------------------------------------------------------------
# shared cycle semantics
# ---------------------------------------------------------------------------

def initial_state(design: Design) -> Dict[object, object]:
    """The reset state: register inits, empty channels, array inits."""
    state: Dict[object, object] = {}
    for sig in design.state_sigs():
        state[sig] = sig.init
    for arr in design.state_arrays():
        state[arr] = tuple(arr.init)
    return state


def _record_write(writes, key, value, loc: SrcLoc, rule_name: str,
                  name: str) -> None:
    prev = writes.get(key)
    if prev is not None and prev[0] != value:
        raise DslError(
            f"write-once violation on {name}: rule {prev[2]} wrote "
            f"{prev[0]} (at {prev[1]}) and rule {rule_name} wrote {value} "
            f"(at {loc}) in the same cycle")
    writes[key] = (value, loc, rule_name)


def rule_writes(rule: Rule, env: Dict[object, object], writes) -> None:
    """Accumulate one firing rule's writes into ``writes`` (keyed by
    :class:`Sig` or ``(Array, index)``), raising :class:`DslError` on a
    conflicting double write."""
    for upd in rule.updates:
        value = upd.value.deval(env)
        if isinstance(upd.target, Sig):
            _record_write(writes, upd.target, value, upd.loc,
                          rule.full_name, upd.target.var_name)
        else:
            idx = upd.target.index.deval(env)
            if 0 <= idx < upd.target.array.depth:
                _record_write(writes, (upd.target.array, idx), value,
                              upd.loc, rule.full_name,
                              f"{upd.target.array.var_name}[{idx}]")
    for chan, value, loc in rule.sends:
        _record_write(writes, chan.valid_sig, 1, loc, rule.full_name,
                      f"{chan.name}.valid")
        _record_write(writes, chan.data_sig, value.deval(env), loc,
                      rule.full_name, f"{chan.name}.data")
    for chan, loc in rule.recvs:
        _record_write(writes, chan.valid_sig, 0, loc, rule.full_name,
                      f"{chan.name}.valid")


def design_step(design: Design, state: Dict[object, object],
                inputs: Dict[Sig, int],
                modules: Optional[Sequence[DslModule]] = None):
    """One synchronous step: evaluate every rule's guard over the
    *current* state, accumulate writes, return
    ``(new_state, fired_rule_names, monitor_failures)``.

    ``modules`` restricts evaluation to a subset (the per-module SystemC
    processes); the default covers the whole design."""
    env = dict(state)
    env.update(inputs)
    writes: Dict[object, Tuple[int, SrcLoc, str]] = {}
    fired: List[str] = []
    mods = list(modules) if modules is not None else design.modules
    for mod in mods:
        for rule in mod.rules:
            if rule.fire_expr().deval(env):
                fired.append(rule.full_name)
                rule_writes(rule, env, writes)
    failures: List[str] = []
    for mod in mods:
        for mon in mod.monitors:
            if mon.expr.deval(env):
                failures.append(f"{mod.name}_{mon.name}")
    new_state = dict(state)
    array_updates: Dict[Array, Dict[int, int]] = {}
    for key, (value, _, _) in writes.items():
        if isinstance(key, Sig):
            new_state[key] = value
        else:
            arr, idx = key
            array_updates.setdefault(arr, {})[idx] = value
    for arr, entries in array_updates.items():
        current = list(new_state[arr])
        for idx, value in entries.items():
            current[idx] = value
        new_state[arr] = tuple(current)
    return new_state, fired, failures


def eval_outputs(design: Design, state: Dict[object, object],
                 inputs: Dict[Sig, int]) -> Dict[str, int]:
    """Evaluate every driven output port over the given state+inputs."""
    env = dict(state)
    env.update(inputs)
    outs: Dict[str, int] = {}
    for mod in design.modules:
        for sig, (expr, _) in mod.drives.items():
            outs[sig.rtl_name] = expr.deval(env)
    return outs


class DslInterp:
    """The reference interpreter: the executable semantics all three
    lowerings are checked against."""

    def __init__(self, design: Design):
        self.design = design
        self._by_name = {name: sig for name, sig in design.input_ports()}
        self.reset()

    def reset(self) -> None:
        self.state = initial_state(self.design)
        self.failures: List[str] = []

    def _inputs(self, values: Dict[str, int]) -> Dict[Sig, int]:
        inputs: Dict[Sig, int] = {}
        for name, sig in self._by_name.items():
            inputs[sig] = int(values.get(name, 0)) & _mask(sig.width)
        for name in values:
            if name not in self._by_name:
                raise DslError(f"unknown input port {name!r}")
        return inputs

    def step(self, **values) -> List[str]:
        """Advance one cycle; returns the fired rule names."""
        inputs = self._inputs(values)
        self.state, fired, failures = design_step(
            self.design, self.state, inputs)
        self.failures.extend(failures)
        return fired

    def outputs(self, **values) -> Dict[str, int]:
        """Combinational outputs for the current state and the given
        input values."""
        return eval_outputs(self.design, self.state, self._inputs(values))

    def peek(self, sig) -> object:
        """Read a register/array/channel-state value."""
        return self.state[sig]
