"""``repro.dsl.elab`` -- lower one DSL design to all three model levels.

:func:`elaborate` turns a :class:`repro.dsl.lang.Design` into an
:class:`ElaboratedDesign` holding

* an :class:`repro.asm.AsmMachine` -- one always-enabled synchronous
  ``step`` rule (domains = every input port) whose effect is the shared
  :func:`repro.dsl.lang.design_step` semantics, plus one ASM rule per
  DSL rule (restricted domains) for rule-level lint and coverage;
* a flat :class:`repro.rtl.hdl.RtlModule` -- rules become priority-mux
  next-state logic (declaration order = priority), channels become
  ready/valid register pairs, DSL monitors/probes/covers become
  assertion monitors and observation wires, and every net carries the
  frontend ``src_loc`` it was declared at;
* a ``repro.sysc`` module tree (built on demand) -- one method process
  per DSL module, clocked by a toggled ``clk`` signal, executing the
  same shared step semantics over committed signal reads.

The cross-level harness :func:`check_dsl_conformance` co-executes the
ASM machine against the RTL and SystemC lowerings through
``repro.asm.conformance`` and requires bit-identical observations.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..asm.machine import AsmMachine
from ..asm.domains import IntRange
from ..asm.conformance import ConformanceResult, check_conformance
from ..rtl import hdl
from ..rtl.hdl import C, Concat, HdlError, Mux, RtlModule
from ..rtl.netlist import FlatDesign, elaborate as netlist_elaborate
from ..rtl.simulator import RtlSimulator
from ..sysc.kernel import Simulator
from ..sysc.module import Module as SyscModule
from .lang import (
    Array,
    ArrayRef,
    DBin,
    DCat,
    DConst,
    Design,
    DslError,
    DMux,
    DNot,
    DReduce,
    DSlice,
    DExpr,
    Sig,
    design_step,
    initial_state,
)

__all__ = [
    "ElaboratedDesign",
    "elaborate",
    "netlist_fingerprint",
    "RtlDslImplementation",
    "SyscDslImplementation",
    "check_dsl_conformance",
]


# ---------------------------------------------------------------------------
# RTL expression lowering
# ---------------------------------------------------------------------------

class _LowerCtx:
    """Maps frontend declarations to their RTL nets."""

    def __init__(self):
        self.sigs: Dict[Sig, hdl.Net] = {}
        self.arrays: Dict[Array, List[hdl.Net]] = {}


def _zext(expr: hdl.Expr, width: int) -> hdl.Expr:
    if expr.width == width:
        return expr
    return Concat([expr, C(0, width - expr.width)])


def _lower(expr: DExpr, ctx: _LowerCtx) -> hdl.Expr:
    """Lower a DSL expression to a ``repro.rtl.hdl`` expression."""
    if isinstance(expr, DConst):
        return C(expr.value, expr.width)
    if isinstance(expr, Sig):
        return ctx.sigs[expr].ref()
    if isinstance(expr, ArrayRef):
        entries = ctx.arrays[expr.array]
        index = _lower(expr.index, ctx)
        acc: hdl.Expr = entries[0].ref()
        limit = (1 << index.width) - 1
        for i in range(1, len(entries)):
            if i > limit:
                break
            acc = Mux(index.eq(C(i, index.width)), entries[i].ref(), acc)
        return acc
    if isinstance(expr, DBin):
        a = _lower(expr.a, ctx)
        b = _lower(expr.b, ctx)
        if expr.op == "sub":
            # two's-complement: a - b == a + ~b + 1 over the base op set
            return a + ~b + C(1, expr.width)
        return hdl.BinOp(expr.op, a, b)
    if isinstance(expr, DNot):
        return ~_lower(expr.a, ctx)
    if isinstance(expr, DMux):
        return Mux(_lower(expr.sel, ctx), _lower(expr.if_true, ctx),
                   _lower(expr.if_false, ctx))
    if isinstance(expr, DSlice):
        return _lower(expr.a, ctx).slice(expr.lo, expr.hi)
    if isinstance(expr, DCat):
        return Concat([_lower(p, ctx) for p in expr.parts])
    if isinstance(expr, DReduce):
        lowered = _lower(expr.a, ctx)
        if expr.op == "or":
            return lowered.reduce_or()
        if expr.op == "xor":
            return lowered.reduce_xor()
        return lowered.reduce_and()
    raise DslError(f"cannot lower expression node {type(expr).__name__}")


def _hdl_guard(loc, fn, *args):
    """Run an hdl-building call, converting HdlError into a DslError
    that cites the frontend declaration."""
    try:
        return fn(*args)
    except HdlError as exc:
        raise DslError(f"{exc} (from DSL declaration at {loc})") from exc


# ---------------------------------------------------------------------------
# the elaborated container
# ---------------------------------------------------------------------------

class ElaboratedDesign:
    """One design lowered to every model level.

    ``asm``/``rtl`` are built eagerly; the flattened netlist (``flat``)
    and the SystemC module tree (:meth:`build_sysc`) on demand.
    ``source_map`` maps every flat net path to the frontend
    ``file:line`` that declared it; ``probes`` maps ``mod_probe`` names
    to flat net paths for PSL property labels."""

    def __init__(self, design: Design):
        self.design = design
        self.source_map: Dict[str, str] = {}
        self.probes: Dict[str, str] = {}
        self.covers: Dict[str, Tuple[str, int]] = {}
        self._flat: Optional[FlatDesign] = None
        self.rtl = self._build_rtl()
        self.asm = self._build_asm()
        #: ASM observation projection: every state variable
        self.observables: List[str] = [
            sig.var_name for sig in design.state_sigs()
        ] + [arr.var_name for arr in design.state_arrays()]

    # -- netlist ----------------------------------------------------------
    @property
    def flat(self) -> FlatDesign:
        """The flattened netlist (cached); HdlErrors are re-raised as
        DslErrors pointing at the frontend declaration."""
        if self._flat is None:
            try:
                self._flat = netlist_elaborate(self.rtl)
            except HdlError as exc:
                message = str(exc)
                notes = [f"{path} declared at {loc}"
                         for path, loc in self.source_map.items()
                         if path in message]
                suffix = f" ({'; '.join(notes)})" if notes else ""
                raise DslError(f"{message}{suffix}") from exc
        return self._flat

    def probe_labels(self, *names: str) -> Dict[str, Tuple[str, int]]:
        """PSL atom labels for the named probes (atom name == probe
        name)."""
        labels = {}
        for name in names:
            if name not in self.probes:
                raise DslError(f"unknown probe {name!r}; have "
                               f"{sorted(self.probes)}")
            labels[name] = (self.probes[name], 0)
        return labels

    # -- RTL lowering -----------------------------------------------------
    def _note(self, net: hdl.Net, loc) -> hdl.Net:
        net.src_loc = str(loc)
        self.source_map[f"{self.design.name}.{net.name}"] = str(loc)
        return net

    def _build_rtl(self) -> RtlModule:
        design = self.design
        top = RtlModule(design.name)
        ctx = _LowerCtx()

        # 1. ports and state
        for pname, sig in design.input_ports():
            ctx.sigs[sig] = self._note(
                _hdl_guard(sig.loc, top.input, pname, sig.width), sig.loc)
        for sig in design.state_sigs():
            ctx.sigs[sig] = self._note(
                _hdl_guard(sig.loc, top.reg, sig.rtl_name, sig.width, "K",
                           sig.init), sig.loc)
        for arr in design.state_arrays():
            entries = []
            for i in range(arr.depth):
                entries.append(self._note(
                    _hdl_guard(arr.loc, top.reg, arr.entry_rtl_name(i),
                               arr.width, "K", arr.init[i]), arr.loc))
            ctx.arrays[arr] = entries

        # 2. one fire wire per rule (the effective guard)
        fire_nets: Dict[object, hdl.Net] = {}
        for rule in design.all_rules():
            wire = self._note(
                _hdl_guard(rule.loc, top.wire,
                           f"{rule.module.name}_{rule.name}_fire", 1),
                rule.loc)
            _hdl_guard(rule.loc, top.assign, wire,
                       _lower(rule.fire_expr(), ctx))
            fire_nets[rule] = wire

        # 3. gather writes per target in rule-declaration (priority) order
        sig_writes: Dict[Sig, List[Tuple]] = {}
        arr_writes: Dict[Array, List[Tuple]] = {}
        for rule in design.all_rules():
            fire = fire_nets[rule]
            for upd in rule.updates:
                if isinstance(upd.target, Sig):
                    sig_writes.setdefault(upd.target, []).append(
                        (fire, upd.value, rule, upd.loc))
                else:
                    arr_writes.setdefault(upd.target.array, []).append(
                        (fire, upd.target.index, upd.value, rule, upd.loc))
            for chan, value, loc in rule.sends:
                sig_writes.setdefault(chan.valid_sig, []).append(
                    (fire, DConst(1, 1), rule, loc))
                sig_writes.setdefault(chan.data_sig, []).append(
                    (fire, value, rule, loc))
            for chan, loc in rule.recvs:
                sig_writes.setdefault(chan.valid_sig, []).append(
                    (fire, DConst(0, 1), rule, loc))

        # 4. next-state priority muxes (later declaration wins the fold
        #    start, so the FIRST declared writer has highest priority)
        for sig in design.state_sigs():
            reg = ctx.sigs[sig]
            acc: hdl.Expr = reg.ref()
            for fire, value, rule, loc in reversed(sig_writes.get(sig, [])):
                acc = Mux(fire.ref(), _lower(value, ctx), acc)
            _hdl_guard(sig.loc, top.sync, reg, acc)
        for arr in design.state_arrays():
            writes = arr_writes.get(arr, [])
            for i, entry in enumerate(ctx.arrays[arr]):
                acc = entry.ref()
                for fire, index, value, rule, loc in reversed(writes):
                    idx = _lower(index, ctx)
                    if i >= (1 << idx.width):
                        continue  # this write can never address entry i
                    sel = fire.ref() & idx.eq(C(i, idx.width))
                    acc = Mux(sel, _lower(value, ctx), acc)
                _hdl_guard(arr.loc, top.sync, entry, acc)

        # 5. write-once conflict monitors: two rules driving different
        #    values into one location in the same cycle is a checker
        #    failure at RTL, mirroring the runtime DslError
        self._conflict_monitors(top, ctx, fire_nets, sig_writes, arr_writes)

        # 6. combinational outputs
        for mod in design.modules:
            for sig in mod.outputs:
                if sig not in mod.drives:
                    raise DslError(f"output {sig.var_name} (declared at "
                                   f"{sig.loc}) is never driven")
                expr, dloc = mod.drives[sig]
                net = self._note(
                    _hdl_guard(sig.loc, top.output, sig.rtl_name, sig.width),
                    sig.loc)
                _hdl_guard(dloc, top.assign, net, _lower(expr, ctx))

        # 7. probes, covers, DSL monitors
        for mod in design.modules:
            for p in mod.probes:
                name = f"{mod.name}_{p.name}"
                net = self._note(_hdl_guard(p.loc, top.wire, name, 1), p.loc)
                _hdl_guard(p.loc, top.assign, net, _lower(p.expr, ctx))
                self.probes[name] = f"{design.name}.{name}"
            for p in mod.covers:
                name = f"{mod.name}_cov_{p.name}"
                net = self._note(
                    _hdl_guard(p.loc, top.wire, name, p.expr.width), p.loc)
                _hdl_guard(p.loc, top.assign, net, _lower(p.expr, ctx))
                self.covers[f"{mod.name}_{p.name}"] = (
                    f"{design.name}.{name}", p.expr.width)
            for mon in mod.monitors:
                name = f"{mod.name}_{mon.name}"
                net = self._note(_hdl_guard(mon.loc, top.wire, name, 1),
                                 mon.loc)
                _hdl_guard(mon.loc, top.assign, net, _lower(mon.expr, ctx))
                top.monitors.append((net, mon.message, "error", name, "K"))
            for rule_id, pattern, reason in mod.waivers:
                top.lint_waive(rule_id, f"{mod.name}_{pattern}", reason)
        return top

    def _conflict_monitors(self, top, ctx, fire_nets, sig_writes,
                           arr_writes) -> None:
        design = self.design
        counter = 0
        for sig, writes in sig_writes.items():
            for i in range(len(writes)):
                for j in range(i + 1, len(writes)):
                    fa, va, ra, la = writes[i]
                    fb, vb, rb, lb = writes[j]
                    if ra is rb:
                        continue  # same rule: statically checked already
                    if (isinstance(va, DConst) and isinstance(vb, DConst)
                            and va.value == vb.value):
                        continue  # provably consistent
                    cond = fa.ref() & fb.ref()
                    if not (isinstance(va, DConst) and isinstance(vb, DConst)):
                        cond = cond & _lower(va, ctx).ne(_lower(vb, ctx))
                    name = f"{sig.rtl_name}__conflict{counter}"
                    counter += 1
                    net = self._note(top.wire(name, 1), la)
                    top.assign(net, cond)
                    top.monitors.append((
                        net,
                        f"write-once violation on {sig.var_name}: rules "
                        f"{ra.full_name} (at {la}) and {rb.full_name} "
                        f"(at {lb}) disagree", "error", name, "K"))
        for arr, writes in arr_writes.items():
            for i in range(len(writes)):
                for j in range(i + 1, len(writes)):
                    fa, ia, va, ra, la = writes[i]
                    fb, ib, vb, rb, lb = writes[j]
                    if ra is rb:
                        continue  # dynamic same-rule conflicts are caught
                        # at runtime by the shared interpreter semantics
                    lia = _lower(ia, ctx)
                    lib = _lower(ib, ctx)
                    width = max(lia.width, lib.width)
                    cond = (fa.ref() & fb.ref()
                            & _zext(lia, width).eq(_zext(lib, width))
                            & _lower(va, ctx).ne(_lower(vb, ctx)))
                    name = f"{arr.owner}_{arr.name}__conflict{counter}"
                    counter += 1
                    net = self._note(top.wire(name, 1), la)
                    top.assign(net, cond)
                    top.monitors.append((
                        net,
                        f"write-once violation on {arr.var_name}: rules "
                        f"{ra.full_name} (at {la}) and {rb.full_name} "
                        f"(at {lb}) disagree", "error", name, "K"))

    # -- ASM lowering -----------------------------------------------------
    def rule_machine(self) -> AsmMachine:
        """The lint view of the ASM lowering.

        Input ports become shared state variables set by one ``env``
        rule; every DSL rule reads them from state instead of binding
        private choice variables.  Under this view, two rules are
        co-enabled only when one input valuation enables both -- so
        :class:`repro.lint.asm_rules.AsmRulesPass`'s update-conflict
        check is exactly the write-once-per-cycle discipline, with no
        false positives from contradictory per-rule input choices.  The
        synchronous ``step`` product rule is omitted: against it every
        rule's update set trivially differs."""
        design = self.design
        machine = AsmMachine(design.name)
        sigs = design.state_sigs()
        arrays = design.state_arrays()
        ports = design.input_ports()
        for sig in sigs:
            machine.var(sig.var_name, sig.init)
        for arr in arrays:
            machine.var(arr.var_name, tuple(arr.init))
        for pname, __ in ports:
            machine.var(pname, 0)

        def env_of(state) -> dict:
            env = {}
            for sig in sigs:
                env[sig] = state[sig.var_name]
            for arr in arrays:
                env[arr] = state[arr.var_name]
            for pname, sig in ports:
                env[sig] = state[pname]
            return env

        def updates_of(new_env, state) -> dict:
            updates = {}
            for sig in sigs:
                if new_env[sig] != state[sig.var_name]:
                    updates[sig.var_name] = new_env[sig]
            for arr in arrays:
                if new_env[arr] != state[arr.var_name]:
                    updates[arr.var_name] = new_env[arr]
            return updates

        env_domains = {
            pname: IntRange(pname, 0, (1 << sig.width) - 1)
            for pname, sig in ports
        }

        def env_effect(state, **args):
            return {pname: value for pname, value in args.items()
                    if state[pname] != value}

        if env_domains:
            machine.rule("env", lambda state, **args: True, env_effect,
                         env_domains)

        for rule in design.all_rules():
            machine.rule(rule.full_name,
                         self._state_rule_guard(rule, env_of),
                         self._state_rule_effect(rule, env_of, updates_of),
                         {})
        return machine

    @staticmethod
    def _state_rule_guard(rule, env_of):
        def guard(state, **args):
            return bool(rule.fire_expr().deval(env_of(state)))
        return guard

    @staticmethod
    def _state_rule_effect(rule, env_of, updates_of):
        from .lang import rule_writes

        def effect(state, **args):
            env = env_of(state)
            writes: dict = {}
            rule_writes(rule, env, writes)
            new_env = env_of(state)
            arr_updates: Dict[Array, Dict[int, int]] = {}
            for key, (value, _, _) in writes.items():
                if isinstance(key, Sig):
                    new_env[key] = value
                else:
                    arr, idx = key
                    arr_updates.setdefault(arr, {})[idx] = value
            for arr, entries in arr_updates.items():
                current = list(new_env[arr])
                for idx, value in entries.items():
                    current[idx] = value
                new_env[arr] = tuple(current)
            return updates_of(new_env, state)
        return effect

    def _build_asm(self) -> AsmMachine:
        design = self.design
        machine = AsmMachine(design.name)
        sigs = design.state_sigs()
        arrays = design.state_arrays()
        for sig in sigs:
            machine.var(sig.var_name, sig.init)
        for arr in arrays:
            machine.var(arr.var_name, tuple(arr.init))

        def env_of(state) -> dict:
            env = {}
            for sig in sigs:
                env[sig] = state[sig.var_name]
            for arr in arrays:
                env[arr] = state[arr.var_name]
            return env

        def updates_of(new_env, state) -> dict:
            updates = {}
            for sig in sigs:
                if new_env[sig] != state[sig.var_name]:
                    updates[sig.var_name] = new_env[sig]
            for arr in arrays:
                if new_env[arr] != state[arr.var_name]:
                    updates[arr.var_name] = new_env[arr]
            return updates

        ports = design.input_ports()

        # the synchronous product: every rule considered in one step
        step_domains = {
            pname: IntRange(pname, 0, (1 << sig.width) - 1)
            for pname, sig in ports
        }

        def step_guard(state, **args):
            return True

        def step_effect(state, **args):
            env = env_of(state)
            inputs = {sig: args[pname] for pname, sig in ports}
            new_state, _, _ = design_step(design, env, inputs)
            return updates_of(new_state, state)

        machine.rule("step", step_guard, step_effect, step_domains)

        # one ASM rule per DSL rule: rule-level lint + coverage
        for rule in design.all_rules():
            in_refs = rule.input_refs()
            domains = {
                sig.rtl_name: IntRange(sig.rtl_name, 0,
                                       (1 << sig.width) - 1)
                for sig in in_refs
            }
            machine.rule(rule.full_name,
                         self._rule_guard(rule, env_of, in_refs),
                         self._rule_effect(rule, env_of, updates_of,
                                           in_refs),
                         domains)
        return machine

    @staticmethod
    def _rule_guard(rule, env_of, in_refs):
        def guard(state, **args):
            env = env_of(state)
            for sig in in_refs:
                env[sig] = args[sig.rtl_name]
            return bool(rule.fire_expr().deval(env))
        return guard

    @staticmethod
    def _rule_effect(rule, env_of, updates_of, in_refs):
        from .lang import rule_writes

        def effect(state, **args):
            env = env_of(state)
            for sig in in_refs:
                env[sig] = args[sig.rtl_name]
            writes: dict = {}
            rule_writes(rule, env, writes)
            new_env = env_of(state)
            arr_updates: Dict[Array, Dict[int, int]] = {}
            for key, (value, _, _) in writes.items():
                if isinstance(key, Sig):
                    new_env[key] = value
                else:
                    arr, idx = key
                    arr_updates.setdefault(arr, {})[idx] = value
            for arr, entries in arr_updates.items():
                current = list(new_env[arr])
                for idx, value in entries.items():
                    current[idx] = value
                new_env[arr] = tuple(current)
            return updates_of(new_env, state)
        return effect

    # -- SystemC lowering -------------------------------------------------
    def build_sysc(self) -> Tuple[Simulator, "DslSyscTop"]:
        """Build a fresh SystemC module tree for this design."""
        sim = Simulator()
        top = DslSyscTop(sim, self.design)
        return sim, top


class DslSyscTop(SyscModule):
    """The SystemC lowering: one method process per DSL module, all
    clocked on a shared toggled ``clk`` signal; registers, arrays and
    channel state live in :class:`repro.sysc.signal.Signal` objects so
    reads are committed (pre-edge) values -- the synchronous semantics
    the other two levels share."""

    def __init__(self, sim: Simulator, design: Design):
        super().__init__(sim, design.name)
        self.design = design
        self.clk = self.signal("clk", False)
        self.in_sigs = {
            pname: self.signal(pname, 0)
            for pname, _ in design.input_ports()
        }
        self.state_sigs = {
            sig: self.signal(sig.rtl_name, sig.init)
            for sig in design.state_sigs()
        }
        self.array_sigs = {
            arr: self.signal(f"{arr.owner}_{arr.name}", tuple(arr.init))
            for arr in design.state_arrays()
        }
        #: monitor names that fired at any edge (transactor-side checks)
        self.failures: List[str] = []
        self._ports = design.input_ports()
        for mod in design.modules:
            self._spawn(mod)

    def _spawn(self, mod) -> None:
        def on_clk(mod=mod):
            if not self.clk.read():
                return  # initialization run / falling edge
            env = self._env()
            new_state, _, failures = design_step(
                self.design, env, self._input_env(), modules=[mod])
            self.failures.extend(failures)
            for sig in mod.regs:
                if new_state[sig] != env[sig]:
                    self.state_sigs[sig].write(new_state[sig])
            for arr in mod.arrays:
                if new_state[arr] != env[arr]:
                    self.array_sigs[arr].write(new_state[arr])
            for chan in self.design.channels:
                if chan.sender == mod.name or chan.receiver == mod.name:
                    for sig in (chan.valid_sig, chan.data_sig):
                        if new_state[sig] != env[sig]:
                            self.state_sigs[sig].write(new_state[sig])
        self.method_process(on_clk, sensitive=(self.clk.posedge,),
                            name=f"{mod.name}_step")

    def _env(self) -> dict:
        env = {sig: signal.read() for sig, signal in self.state_sigs.items()}
        for arr, signal in self.array_sigs.items():
            env[arr] = signal.read()
        return env

    def _input_env(self) -> dict:
        return {sig: self.in_sigs[pname].read() for pname, sig in self._ports}

    # -- host-side drive helpers -----------------------------------------
    def drive_inputs(self, values: Dict[str, int]) -> None:
        for pname, value in values.items():
            self.in_sigs[pname].write(int(value))

    def tick(self) -> None:
        """One full clock cycle: commit driven inputs, then a posedge."""
        self.clk.write(False)
        self.sim.run(0)
        self.clk.write(True)
        self.sim.run(0)

    def observe(self) -> dict:
        obs = {sig.var_name: signal.read()
               for sig, signal in self.state_sigs.items()}
        for arr, signal in self.array_sigs.items():
            obs[arr.var_name] = signal.read()
        return obs


# ---------------------------------------------------------------------------
# conformance implementations
# ---------------------------------------------------------------------------

class RtlDslImplementation:
    """Adapts the flattened-RTL simulation of an elaborated design to
    the ``repro.asm.conformance`` Implementation protocol."""

    def __init__(self, elab: ElaboratedDesign, backend: str = "interp"):
        self.elab = elab
        self.sim = RtlSimulator(elab.flat, backend=backend)
        self._prefix = elab.design.name

    def reset(self) -> None:
        self.sim.reset()

    def apply(self, rule_name: str, args: dict) -> None:
        if rule_name != "step":
            raise DslError(f"RTL conformance replays only 'step' actions, "
                           f"got {rule_name!r}")
        for pname, value in args.items():
            self.sim.set_input(f"{self._prefix}.{pname}", int(value))
        self.sim.step("K")

    def observe(self) -> dict:
        obs = {}
        for sig in self.elab.design.state_sigs():
            obs[sig.var_name] = self.sim.read(
                f"{self._prefix}.{sig.rtl_name}")
        for arr in self.elab.design.state_arrays():
            obs[arr.var_name] = tuple(
                self.sim.read(f"{self._prefix}.{arr.entry_rtl_name(i)}")
                for i in range(arr.depth))
        return obs


class SyscDslImplementation:
    """Adapts the SystemC lowering to the conformance protocol; every
    ``reset`` builds a fresh simulator (SystemC kernels do not rewind)."""

    def __init__(self, elab: ElaboratedDesign):
        self.elab = elab
        self.reset()

    def reset(self) -> None:
        self.sim, self.top = self.elab.build_sysc()
        self.sim.initialize()

    def apply(self, rule_name: str, args: dict) -> None:
        if rule_name != "step":
            raise DslError(f"SystemC conformance replays only 'step' "
                           f"actions, got {rule_name!r}")
        values = dict.fromkeys(self.top.in_sigs, 0)
        for pname, value in args.items():
            values[pname] = int(value)
        self.top.drive_inputs(values)
        self.top.tick()

    def observe(self) -> dict:
        return self.top.observe()


def _step_only(action) -> bool:
    return action.rule.name == "step"


def check_dsl_conformance(
    elab: ElaboratedDesign,
    levels: Sequence[str] = ("rtl", "sysc"),
    max_depth: int = 3,
    max_paths: int = 4000,
    backend: str = "interp",
) -> Dict[str, ConformanceResult]:
    """BFS co-execution of the ASM model against the other lowerings.

    Branches over every input-port valuation per step, so keep
    ``max_depth`` small for wide designs.  Returns per-level
    :class:`ConformanceResult`; check ``.conformant`` on each."""
    results: Dict[str, ConformanceResult] = {}
    for level in levels:
        if level == "rtl":
            impl = RtlDslImplementation(elab, backend=backend)
        elif level == "sysc":
            impl = SyscDslImplementation(elab)
        else:
            raise DslError(f"unknown conformance level {level!r}")
        results[level] = check_conformance(
            elab.asm, impl, elab.observables, max_depth=max_depth,
            max_paths=max_paths, action_filter=_step_only)
    return results


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def elaborate(design: Design) -> ElaboratedDesign:
    """Lower ``design`` to the ASM + RTL + SystemC model trio."""
    if not design.modules:
        raise DslError(f"design {design.name} has no modules")
    return ElaboratedDesign(design)


def netlist_fingerprint(elab: ElaboratedDesign) -> str:
    """A stable content fingerprint of the *elaborated netlist* (not
    the Python source): the blake2b digest of the emitted Verilog,
    which canonicalizes net names, priority muxes and monitors."""
    from ..rtl.verilog_emit import emit_verilog

    text = emit_verilog(elab.rtl)
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def interp_reference_run(elab: ElaboratedDesign, cycles: int = 32,
                         seed: int = 2004) -> Tuple[float, list]:
    """Drive the reference interpreter with seeded random stimulus;
    returns (cpu_time, per-cycle output log).  Used by benchmarks."""
    import random

    from .lang import DslInterp

    rng = random.Random(seed)
    interp = DslInterp(elab.design)
    ports = elab.design.input_ports()
    log = []
    start = time.perf_counter()
    for _ in range(cycles):
        values = {pname: rng.getrandbits(sig.width) for pname, sig in ports}
        outs = interp.outputs(**values)
        interp.step(**values)
        log.append(tuple(sorted(outs.items())))
    return time.perf_counter() - start, log


def _initial_env(design: Design) -> dict:
    return initial_state(design)
