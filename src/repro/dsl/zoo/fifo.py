"""Zoo design: a parameterised synchronous FIFO.

``push``/``pop`` with combinational ``full``/``empty``/``count``
status, a register-array data store, and an occupancy-bound safety
property that is 1-inductive (the SAT engine proves it immediately).
The count is maintained by two mutually-exclusive guarded rules so the
design exercises the write-once-per-cycle discipline without ever
violating it."""

from __future__ import annotations

from ...psl.builder import always, atom, implies, next_
from ..lang import Design, DslModule, module, ule

NAME = "fifo"

#: default parameters are verification-scale: 2-bit payloads keep the
#: conformance BFS branching (2^4 input valuations per step) tractable
PARAMS = {"depth": 4, "width": 2}

CONFORMANCE = {"max_depth": 3, "max_paths": 6000}


@module
class Fifo(DslModule):
    """Power-of-two-depth FIFO with registered read/write pointers."""

    def build(self, depth: int = 4, width: int = 2):
        iw = max(1, (depth - 1).bit_length())
        cw = iw + 1
        push = self.input("push", 1)
        pop = self.input("pop", 1)
        din = self.input("din", width)

        rd = self.reg("rd", iw)
        wr = self.reg("wr", iw)
        cnt = self.reg("cnt", cw)
        mem = self.array("mem", depth, width)

        full = cnt.eq(depth)
        empty = cnt.eq(0)
        do_enq = push & ~full
        do_deq = pop & ~empty

        self.rule("enq", when=do_enq) \
            .update(mem[wr], din) \
            .update(wr, wr + 1)
        self.rule("deq", when=do_deq) \
            .update(rd, rd + 1)
        # occupancy changes only when exactly one side moves; the two
        # rules are mutually exclusive so cnt stays write-once
        self.rule("count_up", when=do_enq & ~do_deq) \
            .update(cnt, cnt + 1)
        self.rule("count_dn", when=do_deq & ~do_enq) \
            .update(cnt, cnt - 1)

        self.drive(self.output("dout", width), mem[rd])
        self.drive(self.output("count", cw), cnt)
        self.drive(self.output("full", 1), full)
        self.drive(self.output("empty", 1), empty)

        self.probe("bound", ule(cnt, depth))
        self.probe("grow", do_enq & ~do_deq)
        self.probe("nonempty", ~empty)
        self.monitor("oob", ~ule(cnt, depth),
                     "FIFO occupancy left the [0, depth] envelope")
        self.cover("occupancy", cnt)
        self.cover("enq", do_enq)
        self.cover("deq", do_deq)

        # the oob monitor intentionally watches control state only; the
        # datapath is observed through output-log differencing (dout /
        # count), which is how fault campaigns classify silent faults
        self.waive("unobservable-reg", "rd",
                   "read pointer observed through the dout output log")
        self.waive("unobservable-reg", "wr",
                   "write pointer observed through the dout output log")
        self.waive("unobservable-reg", "mem_*",
                   "data store observed through the dout output log")


def build(depth: int = 4, width: int = 2) -> Design:
    design = Design("fifo")
    design.instantiate(Fifo, "core", depth=depth, width=width)
    return design


def properties(elab):
    """The FIFO property set: labels are probe nets of the elaborated
    design, atoms are the probe names."""
    return [
        ("fifo_bound", always(atom("core_bound")),
         elab.probe_labels("core_bound")),
        # the bound atom strengthens the guard so the obligation is
        # inductive over *all* states, not just reachable ones
        ("fifo_grow_nonempty",
         always(implies(atom("core_grow") & atom("core_bound"),
                        next_(atom("core_nonempty")))),
         elab.probe_labels("core_grow", "core_bound", "core_nonempty")),
    ]
