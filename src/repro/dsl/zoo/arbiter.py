"""Zoo design: a 4-way round-robin arbiter.

Combinational grant generation rotates priority from the last granted
requester; the ``last`` pointer advances whenever any request is
granted.  The property set checks the two arbiter invariants -- the
grant vector is one-hot-or-zero and never grants an idle requester --
both combinational consequences of the mux tree, so the SAT engine
proves them at depth 1."""

from __future__ import annotations

from ...psl.builder import always, atom, never
from ..lang import DConst, Design, DslModule, module, mux

NAME = "arbiter"

PARAMS = {"n": 4}

CONFORMANCE = {"max_depth": 3, "max_paths": 6000}


@module
class RoundRobin(DslModule):
    """Rotating-priority arbiter over ``n`` requesters (n power of 2)."""

    def build(self, n: int = 4):
        iw = max(1, (n - 1).bit_length())
        req = self.input("req", n)
        last = self.reg("last", iw)

        # grant vector for a *known* rotation start: first asserted
        # request scanning from ``start`` cyclically
        def grant_from(start: int):
            vec: object = DConst(0, n)
            for k in reversed(range(n)):
                idx = (start + k) % n
                vec = mux(req.bit(idx), DConst(1 << idx, n), vec)
            return vec

        # select the rotation by the registered last-grant pointer
        grant = grant_from(1 % n)
        for value in range(1, n):
            grant = mux(last.eq(value), grant_from((value + 1) % n), grant)

        # binary index of the winner (0 when idle)
        widx: object = DConst(0, iw)
        for k in range(1, n):
            widx = mux(grant.bit(k), DConst(k, iw), widx)

        any_req = req.reduce_or()
        # the pointer's parity shadow: written in the same rule, so any
        # later single-bit corruption of either register (stuck-at, SEU)
        # breaks the pair and trips ptr_corrupt -- the detection net a
        # fault campaign needs for pointer state
        lpar = self.reg("lpar", 1)
        self.rule("advance", when=any_req) \
            .update(last, widx) \
            .update(lpar, widx.reduce_xor())

        self.drive(self.output("grant", n), grant)
        self.drive(self.output("busy", 1), any_req)

        self.probe("multi_grant", (grant & (grant - 1)).reduce_or())
        self.probe("spurious", (grant & ~req).reduce_or())
        self.probe("starved", any_req & ~grant.reduce_or())
        self.monitor("bad_grant",
                     (grant & ~req).reduce_or()
                     | (any_req & ~grant.reduce_or()),
                     "arbiter granted an idle requester or starved all")
        self.probe("ptr_ok", ~(last.reduce_xor() ^ lpar))
        self.monitor("ptr_corrupt", last.reduce_xor() ^ lpar,
                     "rotation pointer disagrees with its parity shadow")
        self.cover("winner", widx)
        self.cover("busy", any_req)


def build(n: int = 4) -> Design:
    design = Design("arbiter")
    design.instantiate(RoundRobin, "core", n=n)
    return design


def properties(elab):
    return [
        ("arb_onehot", never(atom("core_multi_grant")),
         elab.probe_labels("core_multi_grant")),
        ("arb_no_spurious", never(atom("core_spurious")),
         elab.probe_labels("core_spurious")),
        ("arb_no_starve", never(atom("core_starved")),
         elab.probe_labels("core_starved")),
        # pointer/shadow agreement: written as a pair, so 1-inductive
        ("arb_ptr_parity", always(atom("core_ptr_ok")),
         elab.probe_labels("core_ptr_ok")),
    ]
