"""``repro.dsl.zoo`` -- the design zoo: a scenario library and a
standing cross-level stress test.

Every entry elaborates to all three model levels, ships a PSL property
set over its probe nets, declares covergroup points, and is registered
as a :class:`repro.par.workers.ModelSpec` so process-pool workers
warm-start it by name and the service layer fingerprints it by
elaborated-netlist content."""

from __future__ import annotations

from typing import Dict, List

from ..elab import ElaboratedDesign, elaborate
from ..lang import Design, DslError
from . import arbiter, fifo, noc, qdr

__all__ = [
    "ZOO",
    "zoo_names",
    "build_design",
    "build_elaborated",
    "zoo_properties",
    "conformance_budget",
    "zoo_model_spec",
    "build_model",
    "zoo_state_predicates",
]

#: name -> zoo module (each exports NAME, PARAMS, CONFORMANCE,
#: build(**params) and properties(elab))
ZOO = {mod.NAME: mod for mod in (fifo, arbiter, qdr, noc)}

_ELAB_CACHE: Dict[str, ElaboratedDesign] = {}


def zoo_names() -> List[str]:
    return sorted(ZOO)


def _entry(name: str):
    try:
        return ZOO[name]
    except KeyError:
        raise DslError(
            f"unknown zoo design {name!r}; have {zoo_names()}") from None


def build_design(name: str, **params) -> Design:
    """A fresh frontend design; ``params`` override the defaults."""
    entry = _entry(name)
    merged = dict(entry.PARAMS)
    merged.update(params)
    return entry.build(**merged)


def build_elaborated(name: str) -> ElaboratedDesign:
    """The default-parameter elaboration, cached per process -- the
    warm-start object campaign and testgen workers share."""
    if name not in _ELAB_CACHE:
        _ELAB_CACHE[name] = elaborate(build_design(name))
    return _ELAB_CACHE[name]


def zoo_properties(name: str, elab: ElaboratedDesign = None):
    """``(name, Property, labels)`` triples for a zoo design."""
    entry = _entry(name)
    return entry.properties(elab or build_elaborated(name))


def conformance_budget(name: str) -> dict:
    """Per-design BFS budget (depth scales inversely with input width)."""
    return dict(_entry(name).CONFORMANCE)


def zoo_state_predicates(elab: ElaboratedDesign):
    """ASM state predicates for :class:`repro.cover.asm_cov.AsmCoverage`:
    one bin per 1-bit state variable, a non-zero bin for wider ones."""
    predicates = {}
    for sig in elab.design.state_sigs():
        var = sig.var_name
        if sig.width == 1:
            predicates[var] = (lambda state, v=var: bool(state[v]))
        else:
            predicates[f"{var}_nz"] = (
                lambda state, v=var: state[v] != 0)
    return predicates


def build_model(design: str):
    """ModelSpec factory: ``(machine, predicates)`` like the LA-1
    testgen factory, built from the cached elaboration."""
    elab = build_elaborated(design)
    return elab.asm, zoo_state_predicates(elab)


def zoo_model_spec(name: str):
    """The picklable worker recipe for a zoo design."""
    from ...par.workers import ModelSpec

    _entry(name)
    return ModelSpec("repro.dsl.zoo:build_model", {"design": name})
