"""Zoo design: a QDR-II-style burst read/write controller.

The paper's target domain: independent read and write ports, each
request transferring a burst of two words over two cycles (the DDR
data rate of a QDR-II SRAM, modelled at one word per cycle).  Writes
stream ``wr_data`` into the word pair addressed by ``wr_addr``; reads
stream the pair out on ``rd_data`` while ``rd_valid`` is high.  Port
state machines are one-hot guarded rule pairs, so acceptance,
completion and the burst phase are all write-once by construction."""

from __future__ import annotations

from ...psl.builder import always, atom, implies, never, next_
from ..lang import C, Design, DslModule, cat, module

NAME = "qdr"

#: one address bit selects the burst pair; 1-bit words keep the
#: conformance branching at 2^5 input valuations per step
PARAMS = {"aw": 1, "width": 1}

CONFORMANCE = {"max_depth": 2, "max_paths": 6000}


@module
class QdrController(DslModule):
    """Burst-of-2 controller with independent read and write ports."""

    def build(self, aw: int = 1, width: int = 1):
        depth = 2 << aw  # word pairs x burst length
        rd_req = self.input("rd_req", 1)
        rd_addr = self.input("rd_addr", aw)
        wr_req = self.input("wr_req", 1)
        wr_addr = self.input("wr_addr", aw)
        wr_data = self.input("wr_data", width)

        wr_busy = self.reg("wr_busy", 1)
        wr_a = self.reg("wr_a", aw)
        rd_busy = self.reg("rd_busy", 1)
        rd_a = self.reg("rd_a", aw)
        rd_ph = self.reg("rd_ph", 1)
        mem = self.array("mem", depth, width)

        # write port: beat 0 on acceptance, beat 1 the next cycle
        self.rule("wr_start", when=wr_req & ~wr_busy) \
            .update(wr_busy, 1) \
            .update(wr_a, wr_addr) \
            .update(mem[cat(C(0, 1), wr_addr)], wr_data)
        self.rule("wr_finish", when=wr_busy) \
            .update(wr_busy, 0) \
            .update(mem[cat(C(1, 1), wr_a)], wr_data)

        # read port: two-beat burst tracked by the phase bit
        self.rule("rd_start", when=rd_req & ~rd_busy) \
            .update(rd_busy, 1) \
            .update(rd_a, rd_addr) \
            .update(rd_ph, 0)
        self.rule("rd_next", when=rd_busy & ~rd_ph) \
            .update(rd_ph, 1)
        self.rule("rd_done", when=rd_busy & rd_ph) \
            .update(rd_busy, 0) \
            .update(rd_ph, 0)

        self.drive(self.output("rd_data", width), mem[cat(rd_ph, rd_a)])
        self.drive(self.output("rd_valid", 1), rd_busy)
        self.drive(self.output("rd_rdy", 1), ~rd_busy)
        self.drive(self.output("wr_rdy", 1), ~wr_busy)

        self.probe("ph_err", rd_ph & ~rd_busy)
        self.probe("wr_start_p", wr_req & ~wr_busy)
        self.probe("wr_busy_p", wr_busy)
        self.monitor("phase_orphan", rd_ph & ~rd_busy,
                     "read burst phase advanced with no burst in flight")
        self.cover("ports", cat(wr_busy, rd_busy, rd_ph))
        self.cover("wr_beat", wr_busy)

        # the phase monitor watches burst control only; address and data
        # state is observed through rd_data output-log differencing
        self.waive("unobservable-reg", "rd_a",
                   "read address observed through the rd_data output log")
        self.waive("unobservable-reg", "mem_*",
                   "data store observed through the rd_data output log")


def build(aw: int = 1, width: int = 1) -> Design:
    design = Design("qdr")
    design.instantiate(QdrController, "core", aw=aw, width=width)
    return design


def properties(elab):
    return [
        # the burst phase bit only advances inside a burst: 1-inductive
        # because rd_done clears both bits together
        ("qdr_phase_in_burst", never(atom("core_ph_err")),
         elab.probe_labels("core_ph_err")),
        ("qdr_accept_busy",
         always(implies(atom("core_wr_start_p"),
                        next_(atom("core_wr_busy_p")))),
         elab.probe_labels("core_wr_start_p", "core_wr_busy_p")),
    ]
