"""Zoo design: a 2x2 NoC router slice built from channel composition.

Two ``Ingress`` modules inject one-flit packets (``{payload, dest}``)
into ready/valid channels; a ``Route`` module drains both channels and
steers each payload to the destination output register, giving channel
0 priority when both heads target the same output (the losing packet
stays buffered -- the channels' backpressure is the arbitration).

Each endpoint keeps a running parity of the payloads it has sent or
received; the classic in-flight invariant *sent-parity == received-
parity XOR buffered-payload* is 1-inductive over every channel, so the
SAT engine proves end-to-end payload conservation immediately -- and
any stuck-at fault on the channel state fires the parity monitors."""

from __future__ import annotations

from ...psl.builder import atom, never
from ..lang import Design, DslModule, cat, module

NAME = "noc"

PARAMS = {}

CONFORMANCE = {"max_depth": 2, "max_paths": 6000}


@module
class Ingress(DslModule):
    """Packet injector: one flit per accepted request."""

    def build(self, chan=None):
        req = self.input("req", 1)
        dest = self.input("dest", 1)
        data = self.input("data", 1)
        sent_par = self.sent_par = self.reg("sent_par", 1)
        # send blocks while the channel slot is full (ready/valid)
        self.rule("inject", when=req) \
            .send(chan, cat(dest, data)) \
            .update(sent_par, sent_par ^ data)
        self.drive(self.output("rdy", 1), chan.ready)
        self.cover("backpressure", req & chan.valid)


@module
class Route(DslModule):
    """Two-input crossbar: drain both channels, channel 0 wins ties."""

    def build(self, c0=None, c1=None, ing0=None, ing1=None):
        o0 = self.reg("o0", 1)
        o1 = self.reg("o1", 1)
        rp0 = self.reg("recv_par0", 1)
        rp1 = self.reg("recv_par1", 1)

        c0_dest = c0.data.bit(0)
        c0_pay = c0.data.bit(1)
        c1_dest = c1.data.bit(0)
        c1_pay = c1.data.bit(1)
        # channel 0 claims an output port when its head targets it
        c0_takes0 = c0.valid & ~c0_dest
        c0_takes1 = c0.valid & c0_dest

        self.rule("r00", when=~c0_dest) \
            .recv(c0).update(o0, c0_pay).update(rp0, rp0 ^ c0_pay)
        self.rule("r01", when=c0_dest) \
            .recv(c0).update(o1, c0_pay).update(rp0, rp0 ^ c0_pay)
        self.rule("r10", when=~c1_dest & ~c0_takes0) \
            .recv(c1).update(o0, c1_pay).update(rp1, rp1 ^ c1_pay)
        self.rule("r11", when=c1_dest & ~c0_takes1) \
            .recv(c1).update(o1, c1_pay).update(rp1, rp1 ^ c1_pay)

        self.drive(self.output("out0", 1), o0)
        self.drive(self.output("out1", 1), o1)

        # in-flight parity conservation per channel (reads the ingress
        # parity registers across the module boundary -- probes are
        # observation points, not drivers)
        par0_err = (ing0.sent_par ^ rp0 ^ (c0.valid & c0_pay))
        par1_err = (ing1.sent_par ^ rp1 ^ (c1.valid & c1_pay))
        self.probe("par0_err", par0_err)
        self.probe("par1_err", par1_err)
        self.monitor("par0_leak", par0_err,
                     "channel 0 dropped or duplicated a payload bit")
        self.monitor("par1_leak", par1_err,
                     "channel 1 dropped or duplicated a payload bit")
        self.cover("occupancy", cat(c0.valid, c1.valid))
        self.cover("outs", cat(o0, o1))

        # the parity monitors conserve payload bits across the channel;
        # the output holding registers sit past the parity fold and are
        # observed through out0/out1 output-log differencing
        self.waive("unobservable-reg", "o0",
                   "output register observed through the out0 output log")
        self.waive("unobservable-reg", "o1",
                   "output register observed through the out1 output log")


def build() -> Design:
    design = Design("noc")
    c0 = design.channel("c0", 2)
    c1 = design.channel("c1", 2)
    ing0 = design.instantiate(Ingress, "ing0", chan=c0)
    ing1 = design.instantiate(Ingress, "ing1", chan=c1)
    design.instantiate(Route, "route", c0=c0, c1=c1, ing0=ing0, ing1=ing1)
    return design


def properties(elab):
    return [
        ("noc_parity0", never(atom("route_par0_err")),
         elab.probe_labels("route_par0_err")),
        ("noc_parity1", never(atom("route_par1_err")),
         elab.probe_labels("route_par1_err")),
    ]
