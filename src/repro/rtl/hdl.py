"""A synthesizable RTL intermediate representation (the "Verilog level").

The paper's lowest refinement level is a synthesizable Verilog model where
"each class maps to a Verilog module" and multi-bank devices are built "by
instantiating the Read, Write and Memory modules; the connection between
the control signals is performed using tristate buffers".  This module is
the IR those models are built from:

* :class:`Expr` trees -- constants, net references, bitwise operators,
  comparisons, mux, slice, concat, reduction and ripple-carry addition.
  Everything reduces to pure boolean logic, so the same IR feeds both the
  interpreted simulator (:mod:`repro.rtl.simulator`) and the bit-level
  netlist used by the symbolic model checker (:mod:`repro.rtl.netlist`).
* :class:`Net` -- a named bundle of bits, either combinational
  (:class:`Wire`) or state-holding (:class:`Reg` with a clock edge).
* :class:`RtlModule` -- a design unit with ports, nets, continuous
  assignments, registers and child instances.
* :class:`TristateDriver` -- a conditional driver on a shared net;
  elaboration turns a multiply-driven net into a priority mux (the
  standard synthesizable mapping of a tristate bus).

Values are plain non-negative integers interpreted at the net's width
(two-state semantics; the four-valued world lives at the SystemC level).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

__all__ = [
    "Expr",
    "Const",
    "Ref",
    "UnOp",
    "BinOp",
    "Mux",
    "Slice",
    "Concat",
    "Reduce",
    "Net",
    "Wire",
    "Reg",
    "Port",
    "Instance",
    "TristateDriver",
    "RtlModule",
    "HdlError",
    "C",
]


class HdlError(Exception):
    """Raised on malformed RTL (width mismatches, duplicate drivers, ...)."""


def _mask(width: int) -> int:
    return (1 << width) - 1


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class of RTL expressions.  All expressions have a fixed width."""

    width: int

    # -- operator sugar -------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return BinOp("and", self, _as_expr(other, self.width))

    def __or__(self, other: "Expr") -> "Expr":
        return BinOp("or", self, _as_expr(other, self.width))

    def __xor__(self, other: "Expr") -> "Expr":
        return BinOp("xor", self, _as_expr(other, self.width))

    def __invert__(self) -> "Expr":
        return UnOp("not", self)

    def __add__(self, other: "Expr") -> "Expr":
        return BinOp("add", self, _as_expr(other, self.width))

    def eq(self, other: Union["Expr", int]) -> "Expr":
        """1-bit equality comparison."""
        return BinOp("eq", self, _as_expr(other, self.width))

    def ne(self, other: Union["Expr", int]) -> "Expr":
        """1-bit inequality comparison."""
        return UnOp("not", self.eq(other))

    def bit(self, index: int) -> "Expr":
        """Select a single bit."""
        return Slice(self, index, index)

    def slice(self, lo: int, hi: int) -> "Expr":
        """Select bits ``hi:lo`` inclusive (Verilog ``x[hi:lo]``)."""
        return Slice(self, lo, hi)

    def reduce_xor(self) -> "Expr":
        """XOR-reduce to one bit (parity)."""
        return Reduce("xor", self)

    def reduce_or(self) -> "Expr":
        """OR-reduce to one bit (any bit set)."""
        return Reduce("or", self)

    def reduce_and(self) -> "Expr":
        """AND-reduce to one bit (all bits set)."""
        return Reduce("and", self)

    def refs(self) -> Iterable["Net"]:  # pragma: no cover - overridden
        """All nets referenced by this expression tree."""
        raise NotImplementedError

    def evaluate(self, read: Callable[["Net"], int]) -> int:  # pragma: no cover
        """Evaluate with ``read(net) -> int`` supplying net values."""
        raise NotImplementedError


def _as_expr(value: Union[Expr, int, bool], width: int) -> Expr:
    if isinstance(value, Expr):
        return value
    return Const(int(value), width)


class Const(Expr):
    """A literal of explicit width."""

    def __init__(self, value: int, width: int = 1):
        if width <= 0:
            raise HdlError("constant width must be positive")
        if value < 0 or value > _mask(width):
            raise HdlError(f"constant {value} does not fit in {width} bits")
        self.value = value
        self.width = width

    def refs(self):
        return ()

    def evaluate(self, read):
        return self.value

    def __repr__(self):
        return f"Const({self.value}, w={self.width})"


def C(value: int, width: int = 1) -> Const:
    """Shorthand constructor for :class:`Const`."""
    return Const(value, width)


class Ref(Expr):
    """A reference to a :class:`Net`'s current value."""

    def __init__(self, net: "Net"):
        self.net = net
        self.width = net.width

    def refs(self):
        return (self.net,)

    def evaluate(self, read):
        return read(self.net)

    def __repr__(self):
        return f"Ref({self.net.name})"


class UnOp(Expr):
    """Unary operator: ``not`` (bitwise complement at the operand width)."""

    OPS = ("not",)

    def __init__(self, op: str, a: Expr):
        if op not in self.OPS:
            raise HdlError(f"unknown unary op {op}")
        self.op = op
        self.a = a
        self.width = a.width

    def refs(self):
        return self.a.refs()

    def evaluate(self, read):
        return (~self.a.evaluate(read)) & _mask(self.width)

    def __repr__(self):
        return f"UnOp({self.op}, {self.a!r})"


class BinOp(Expr):
    """Binary operator: ``and``, ``or``, ``xor``, ``add`` (same-width) and
    ``eq`` (1-bit result)."""

    OPS = ("and", "or", "xor", "add", "eq")

    def __init__(self, op: str, a: Expr, b: Expr):
        if op not in self.OPS:
            raise HdlError(f"unknown binary op {op}")
        if a.width != b.width:
            raise HdlError(
                f"width mismatch in {op}: {a.width} vs {b.width}"
            )
        self.op = op
        self.a = a
        self.b = b
        self.width = 1 if op == "eq" else a.width

    def refs(self):
        yield from self.a.refs()
        yield from self.b.refs()

    def evaluate(self, read):
        av = self.a.evaluate(read)
        bv = self.b.evaluate(read)
        if self.op == "and":
            return av & bv
        if self.op == "or":
            return av | bv
        if self.op == "xor":
            return av ^ bv
        if self.op == "add":
            return (av + bv) & _mask(self.width)
        return 1 if av == bv else 0

    def __repr__(self):
        return f"BinOp({self.op}, {self.a!r}, {self.b!r})"


class Mux(Expr):
    """Two-way multiplexer: ``sel ? if_true : if_false``."""

    def __init__(self, sel: Expr, if_true: Expr, if_false: Expr):
        if sel.width != 1:
            raise HdlError("mux select must be 1 bit wide")
        if if_true.width != if_false.width:
            raise HdlError(
                f"mux arm widths differ: {if_true.width} vs {if_false.width}"
            )
        self.sel = sel
        self.if_true = if_true
        self.if_false = if_false
        self.width = if_true.width

    def refs(self):
        yield from self.sel.refs()
        yield from self.if_true.refs()
        yield from self.if_false.refs()

    def evaluate(self, read):
        if self.sel.evaluate(read):
            return self.if_true.evaluate(read)
        return self.if_false.evaluate(read)

    def __repr__(self):
        return f"Mux({self.sel!r}, {self.if_true!r}, {self.if_false!r})"


class Slice(Expr):
    """Bit-range selection ``a[hi:lo]`` (inclusive, lo <= hi)."""

    def __init__(self, a: Expr, lo: int, hi: int):
        if not (0 <= lo <= hi < a.width):
            raise HdlError(f"slice [{hi}:{lo}] out of range for width {a.width}")
        self.a = a
        self.lo = lo
        self.hi = hi
        self.width = hi - lo + 1

    def refs(self):
        return self.a.refs()

    def evaluate(self, read):
        return (self.a.evaluate(read) >> self.lo) & _mask(self.width)

    def __repr__(self):
        return f"Slice({self.a!r}, [{self.hi}:{self.lo}])"


class Concat(Expr):
    """Concatenation; ``parts[0]`` occupies the least-significant bits."""

    def __init__(self, parts: Sequence[Expr]):
        if not parts:
            raise HdlError("empty concatenation")
        self.parts = tuple(parts)
        self.width = sum(p.width for p in self.parts)

    def refs(self):
        for part in self.parts:
            yield from part.refs()

    def evaluate(self, read):
        value = 0
        shift = 0
        for part in self.parts:
            value |= part.evaluate(read) << shift
            shift += part.width
        return value

    def __repr__(self):
        return f"Concat({list(self.parts)!r})"


class Reduce(Expr):
    """Reduction operator producing one bit: ``xor`` / ``or`` / ``and``."""

    OPS = ("xor", "or", "and")

    def __init__(self, op: str, a: Expr):
        if op not in self.OPS:
            raise HdlError(f"unknown reduction {op}")
        self.op = op
        self.a = a
        self.width = 1

    def refs(self):
        return self.a.refs()

    def evaluate(self, read):
        value = self.a.evaluate(read)
        if self.op == "xor":
            # deliberately bitwise-serial: the interpreter stands in for a
            # gate-level simulator's cost model (the compiled backend uses
            # int.bit_count instead; both yield the same parity bit)
            return bin(value).count("1") & 1
        if self.op == "or":
            return 1 if value else 0
        return 1 if value == _mask(self.a.width) else 0

    def __repr__(self):
        return f"Reduce({self.op}, {self.a!r})"


# ----------------------------------------------------------------------
# nets and modules
# ----------------------------------------------------------------------
class Net:
    """A named bundle of bits inside a module."""

    def __init__(self, module: "RtlModule", name: str, width: int):
        if width <= 0:
            raise HdlError("net width must be positive")
        self.module = module
        self.name = name
        self.width = width
        #: optional frontend source location ("file:line") when this
        #: net was generated from a design-language declaration
        #: (repro.dsl); carried through flattening into lint diagnostics
        self.src_loc: Optional[str] = None

    @property
    def path(self) -> str:
        """Hierarchical name used by the simulator and netlister."""
        return f"{self.module.path}.{self.name}"

    def ref(self) -> Ref:
        """An expression reading this net."""
        return Ref(self)

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r}, w={self.width})"


class Wire(Net):
    """A combinational net driven by one assign or by tristate drivers."""

    def __init__(self, module: "RtlModule", name: str, width: int):
        super().__init__(module, name, width)
        self.driver: Optional[Expr] = None
        self.tristate_drivers: list[TristateDriver] = []


class Reg(Net):
    """A state-holding net clocked on a named clock edge.

    ``clock`` names a clock domain (e.g. ``"K"`` or ``"K#"``); the register
    updates to ``next`` on that clock's rising edge.  ``init`` is the reset
    (power-up) value.
    """

    def __init__(
        self, module: "RtlModule", name: str, width: int, clock: str, init: int = 0
    ):
        super().__init__(module, name, width)
        if init < 0 or init > _mask(width):
            raise HdlError(f"init value {init} does not fit in {width} bits")
        self.clock = clock
        self.init = init
        self.next: Optional[Expr] = None


class Port:
    """A module port: direction, name and width.

    Top-level input ports become free (testbench-driven) nets; instance
    ports are bound to parent expressions/nets at instantiation.
    """

    def __init__(self, direction: str, name: str, width: int):
        if direction not in ("in", "out"):
            raise HdlError("port direction must be 'in' or 'out'")
        self.direction = direction
        self.name = name
        self.width = width


class TristateDriver:
    """A conditional driver ``enable ? value : Z`` on a shared wire."""

    def __init__(self, enable: Expr, value: Expr):
        if enable.width != 1:
            raise HdlError("tristate enable must be 1 bit")
        self.enable = enable
        self.value = value


class Instance:
    """A child module instantiation with port bindings.

    ``connections`` maps the child's port names to parent-side objects:
    input ports bind to parent :class:`Expr`; output ports bind to a parent
    :class:`Wire` which the child output will drive.
    """

    def __init__(self, module: "RtlModule", name: str, connections: dict):
        self.module = module
        self.name = name
        self.connections = dict(connections)


class RtlModule:
    """A synthesizable RTL design unit.

    A module owns ports, wires, regs, tristate buffers and child
    instances.  ``path`` gives hierarchical names once the module is part
    of an instance tree (the top module's path is its own name).
    """

    def __init__(self, name: str):
        self.name = name
        self.parent_path: Optional[str] = None
        self.ports: list[Port] = []
        self.nets: dict[str, Net] = {}
        self.instances: list[Instance] = []
        # module-level assertion monitors attach here (see repro.ovl)
        self.monitors: list = []
        # inline lint suppressions; see RtlModule.lint_waive
        self.lint_waivers: list[tuple[str, str, str]] = []

    # -- construction API -----------------------------------------------
    @property
    def path(self) -> str:
        """Hierarchical path (set during elaboration; defaults to name)."""
        if self.parent_path is None:
            return self.name
        return f"{self.parent_path}.{self.name}"

    def _add_net(self, net: Net) -> Net:
        if net.name in self.nets:
            raise HdlError(f"duplicate net {net.name} in module {self.name}")
        self.nets[net.name] = net
        return net

    def input(self, name: str, width: int = 1) -> Wire:
        """Declare an input port; returns the port's wire."""
        self.ports.append(Port("in", name, width))
        return self._add_net(Wire(self, name, width))  # type: ignore[return-value]

    def output(self, name: str, width: int = 1) -> Wire:
        """Declare an output port; returns the port's wire (assign to it)."""
        self.ports.append(Port("out", name, width))
        return self._add_net(Wire(self, name, width))  # type: ignore[return-value]

    def wire(self, name: str, width: int = 1) -> Wire:
        """Declare an internal combinational wire."""
        return self._add_net(Wire(self, name, width))  # type: ignore[return-value]

    def reg(self, name: str, width: int = 1, clock: str = "K", init: int = 0) -> Reg:
        """Declare a register clocked on rising ``clock``."""
        return self._add_net(Reg(self, name, width, clock, init))  # type: ignore[return-value]

    def assign(self, wire: Wire, expr: Expr) -> None:
        """Continuous assignment ``assign wire = expr``."""
        if not isinstance(wire, Wire):
            raise HdlError(f"can only assign to wires, not {wire!r}")
        if wire.driver is not None or wire.tristate_drivers:
            raise HdlError(f"wire {wire.name} already driven")
        if expr.width != wire.width:
            raise HdlError(
                f"assign width mismatch on {wire.name}: "
                f"{expr.width} != {wire.width}"
            )
        wire.driver = expr

    def tristate(self, wire: Wire, enable: Expr, value: Expr) -> None:
        """Attach a tristate buffer driving ``wire`` when ``enable`` is high."""
        if wire.driver is not None:
            raise HdlError(f"wire {wire.name} already has a plain driver")
        if value.width != wire.width:
            raise HdlError(
                f"tristate width mismatch on {wire.name}: "
                f"{value.width} != {wire.width}"
            )
        wire.tristate_drivers.append(TristateDriver(enable, value))

    def sync(self, reg: Reg, next_expr: Expr) -> None:
        """Register next-state: ``always @(posedge clock) reg <= next_expr``."""
        if not isinstance(reg, Reg):
            raise HdlError(f"sync target must be a reg, not {reg!r}")
        if reg.next is not None:
            raise HdlError(f"reg {reg.name} already has a next-state assignment")
        if next_expr.width != reg.width:
            raise HdlError(
                f"sync width mismatch on {reg.name}: "
                f"{next_expr.width} != {reg.width}"
            )
        reg.next = next_expr

    def instantiate(self, child: "RtlModule", name: str, connections: dict) -> Instance:
        """Instantiate ``child`` under this module with port ``connections``."""
        port_names = {p.name for p in child.ports}
        for key in connections:
            if key not in port_names:
                raise HdlError(
                    f"{child.name} has no port {key!r} "
                    f"(ports: {sorted(port_names)})"
                )
        for port in child.ports:
            if port.name not in connections:
                raise HdlError(
                    f"port {port.name} of {child.name} left unconnected"
                )
            bound = connections[port.name]
            if port.direction == "in":
                if not isinstance(bound, Expr):
                    raise HdlError(
                        f"input port {port.name} must bind to an expression"
                    )
                if bound.width != port.width:
                    raise HdlError(
                        f"width mismatch binding {port.name}: "
                        f"{bound.width} != {port.width}"
                    )
            else:
                if not isinstance(bound, Wire):
                    raise HdlError(
                        f"output port {port.name} must bind to a parent wire"
                    )
                if bound.width != port.width:
                    raise HdlError(
                        f"width mismatch binding {port.name}: "
                        f"{bound.width} != {port.width}"
                    )
        instance = Instance(child, name, connections)
        self.instances.append(instance)
        return instance

    def lint_waive(self, rule: str, pattern: str, reason: str) -> None:
        """Suppress a lint rule inside this module, with a justification.

        ``pattern`` is a glob over net names *relative to this module*
        (elaboration prefixes it with each occurrence's hierarchical
        path); ``rule`` is a :mod:`repro.lint` rule id or ``"*"``.  The
        finding still appears in lint reports, marked waived with
        ``reason``, but does not fail the run -- the equivalent of an
        inline ``// lint_off`` pragma.
        """
        if not reason:
            raise HdlError("a lint waiver requires a justification")
        self.lint_waivers.append((rule, pattern, reason))

    # -- queries ----------------------------------------------------------
    def input_ports(self) -> list[Port]:
        """All input ports."""
        return [p for p in self.ports if p.direction == "in"]

    def output_ports(self) -> list[Port]:
        """All output ports."""
        return [p for p in self.ports if p.direction == "out"]

    def net(self, name: str) -> Net:
        """Look up a net by local name."""
        return self.nets[name]

    def __repr__(self):
        return f"RtlModule({self.name!r})"
