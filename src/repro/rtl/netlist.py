"""Elaboration: flatten an :class:`~repro.rtl.hdl.RtlModule` tree.

Elaboration produces a :class:`FlatDesign` -- the single data structure
shared by the interpreted RTL simulator and the symbolic model checker:

* every net of every module *occurrence* becomes a :class:`FlatNet` with a
  unique hierarchical path (the same ``RtlModule`` object instantiated N
  times yields N independent copies of its nets, which is how the N-bank
  LA-1 device is built);
* child input ports become combinational nets driven by the parent's
  binding expression, child outputs drive the bound parent wire;
* tristate-driven wires become priority-mux chains (drivers checked in
  attachment order, undriven buses read 0) with optional run-time conflict
  detection;
* combinational nets are topologically sorted; a combinational cycle is a
  hard elaboration error.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .hdl import Expr, HdlError, Net, Reg, RtlModule, TristateDriver, Wire

__all__ = ["FlatNet", "FlatMonitor", "FlatDesign", "elaborate"]


class FlatNet:
    """One flattened net.

    ``kind`` is ``"input"`` (free, testbench-driven), ``"comb"``
    (combinational function of other nets) or ``"reg"`` (state).  ``scope``
    maps the :class:`Net` objects referenced by ``expr`` / ``next_expr``
    to their flat counterparts for this occurrence.  ``slot`` is the net's
    index into the simulator's flat value array (assigned at the end of
    elaboration); both simulator backends and the codegen of
    :mod:`repro.rtl.compile` address state through it.
    """

    __slots__ = (
        "path",
        "width",
        "kind",
        "expr",
        "next_expr",
        "scope",
        "clock",
        "init",
        "tristate",
        "slot",
        "src_loc",
    )

    def __init__(self, path: str, width: int, kind: str):
        self.path = path
        self.width = width
        self.kind = kind
        self.expr: Optional[Expr] = None
        self.next_expr: Optional[Expr] = None
        self.scope: dict[Net, "FlatNet"] = {}
        self.clock: Optional[str] = None
        self.init = 0
        self.tristate: Optional[list[TristateDriver]] = None
        self.slot = -1
        #: frontend source location ("file:line") carried over from the
        #: originating hdl.Net when a design-language frontend set one
        self.src_loc: Optional[str] = None

    def __repr__(self):
        return f"FlatNet({self.path!r}, {self.kind}, w={self.width})"


class FlatMonitor:
    """An assertion monitor surviving elaboration: fires when its net is 1.

    ``clock`` names the edge on which the monitor samples (monitors are
    only checked after edges of their own clock domain, like an OVL
    checker clocked on ``clk``).
    """

    __slots__ = ("fire", "message", "severity", "name", "clock")

    def __init__(self, fire: FlatNet, message: str, severity: str, name: str,
                 clock: str = "K"):
        self.fire = fire
        self.message = message
        self.severity = severity
        self.name = name
        self.clock = clock

    def __repr__(self):
        return f"FlatMonitor({self.name!r}@{self.clock})"


class FlatDesign:
    """The flattened design: inputs, combinational nets (topo order), regs."""

    def __init__(self) -> None:
        self.nets: dict[str, FlatNet] = {}
        self.inputs: list[FlatNet] = []
        self.comb_order: list[FlatNet] = []
        self.regs: list[FlatNet] = []
        self.monitors: list[FlatMonitor] = []
        self.clocks: list[str] = []
        #: flat paths of the top module's output ports (lint observation
        #: points)
        self.top_outputs: list[str] = []
        #: inline lint waivers collected from every module occurrence,
        #: patterns prefixed with the occurrence path
        self.lint_waivers: list[tuple[str, str, str]] = []

    def net(self, path: str) -> FlatNet:
        """Look up a flat net by hierarchical path."""
        return self.nets[path]

    @property
    def num_slots(self) -> int:
        """Size of the flat value array (one slot per net)."""
        return len(self.nets)

    def stats(self) -> dict[str, int]:
        """Size summary used in reports: net/reg/input counts and state bits."""
        return {
            "nets": len(self.nets),
            "inputs": len(self.inputs),
            "comb": len(self.comb_order),
            "regs": len(self.regs),
            "state_bits": sum(r.width for r in self.regs),
            "monitors": len(self.monitors),
        }


def elaborate(top: RtlModule, top_path: Optional[str] = None) -> FlatDesign:
    """Flatten ``top`` (and its instance tree) into a :class:`FlatDesign`.

    Top-level input ports become free inputs; everything else is derived.
    Raises :class:`HdlError` on undriven wires, missing reg next-state
    assignments or combinational cycles.
    """
    design = FlatDesign()
    clocks: set[str] = set()

    def walk(
        module: RtlModule,
        path: str,
        input_bindings: dict[str, tuple[Expr, dict[Net, FlatNet]]],
    ) -> dict[Net, FlatNet]:
        """Flatten one occurrence of ``module``; returns its scope map."""
        scope: dict[Net, FlatNet] = {}
        input_names = {p.name for p in module.input_ports()}
        # 1. create flat nets for every local net
        for net in module.nets.values():
            flat_path = f"{path}.{net.name}"
            if flat_path in design.nets:
                raise HdlError(f"duplicate flat path {flat_path}")
            if isinstance(net, Reg):
                flat = FlatNet(flat_path, net.width, "reg")
                flat.clock = net.clock
                flat.init = net.init
                clocks.add(net.clock)
                design.regs.append(flat)
            elif net.name in input_names:
                if net.name in input_bindings:
                    flat = FlatNet(flat_path, net.width, "comb")
                else:
                    flat = FlatNet(flat_path, net.width, "input")
                    design.inputs.append(flat)
            else:
                flat = FlatNet(flat_path, net.width, "comb")
            flat.src_loc = net.src_loc
            design.nets[flat_path] = flat
            scope[net] = flat
        # 2. wire up drivers
        for net in module.nets.values():
            flat = scope[net]
            if isinstance(net, Reg):
                if net.next is None:
                    raise HdlError(f"reg {flat.path} has no next-state assignment")
                flat.next_expr = net.next
                flat.scope = scope
                continue
            if net.name in input_names:
                if net.name in input_bindings:
                    expr, parent_scope = input_bindings[net.name]
                    flat.expr = expr
                    flat.scope = parent_scope
                continue
            wire = net
            assert isinstance(wire, Wire)
            if wire.tristate_drivers:
                flat.tristate = list(wire.tristate_drivers)
                flat.scope = scope
            elif wire.driver is not None:
                flat.expr = wire.driver
                flat.scope = scope
            # wires with neither driver may be bound to an instance output
            # below; a final validation pass catches truly undriven wires
        # 3. recurse into instances
        for instance in module.instances:
            child_path = f"{path}.{instance.name}"
            bindings: dict[str, tuple[Expr, dict[Net, FlatNet]]] = {}
            for port in instance.module.input_ports():
                bindings[port.name] = (instance.connections[port.name], scope)
            child_scope = walk(instance.module, child_path, bindings)
            for port in instance.module.output_ports():
                parent_wire = instance.connections[port.name]
                parent_flat = scope[parent_wire]
                if parent_flat.expr is not None or parent_flat.tristate:
                    raise HdlError(
                        f"wire {parent_flat.path} bound to instance output "
                        "but already driven"
                    )
                child_net = instance.module.net(port.name)
                parent_flat.expr = child_net.ref()
                parent_flat.scope = child_scope
        # 4. collect monitors declared on this module
        for monitor in module.monitors:
            net, message, severity, name, clock = monitor
            design.monitors.append(
                FlatMonitor(scope[net], message, severity, f"{path}.{name}",
                            clock)
            )
        # 5. carry inline lint waivers, path-prefixed per occurrence
        for rule, pattern, reason in module.lint_waivers:
            design.lint_waivers.append((rule, f"{path}.{pattern}", reason))
        return scope

    top_scope = walk(top, top_path or top.name, {})
    design.top_outputs = [
        f"{top_path or top.name}.{p.name}" for p in top.output_ports()
    ]
    for flat in design.nets.values():
        if flat.kind == "comb" and flat.expr is None and not flat.tristate:
            raise HdlError(f"wire {flat.path} is never driven")
    design.clocks = sorted(clocks)
    _toposort(design)
    for index, flat in enumerate(design.nets.values()):
        flat.slot = index
    design.top_scope = top_scope  # type: ignore[attr-defined]
    return design


def _flat_deps(flat: FlatNet) -> list[FlatNet]:
    deps: list[FlatNet] = []
    exprs: list[Expr] = []
    if flat.expr is not None:
        exprs.append(flat.expr)
    if flat.tristate:
        for driver in flat.tristate:
            exprs.append(driver.enable)
            exprs.append(driver.value)
    for expr in exprs:
        for net in expr.refs():
            try:
                deps.append(flat.scope[net])
            except KeyError:
                raise HdlError(
                    f"net {net.name} referenced by {flat.path} is not in scope"
                ) from None
    return deps


def _toposort(design: FlatDesign) -> None:
    """Order combinational nets so every net follows its dependencies.

    Depth-first with an explicit stack: comb cones can be arbitrarily
    deep (wide-bank elaborations chain thousands of nets), so a recursive
    walk would overflow the Python stack.
    """
    order: list[FlatNet] = []
    state: dict[str, int] = {}  # 0 unvisited / 1 in-progress / 2 done

    for root in design.nets.values():
        if root.kind != "comb" or state.get(root.path, 0) == 2:
            continue
        state[root.path] = 1
        stack: list[tuple[FlatNet, Iterator[FlatNet]]] = [
            (root, iter(_flat_deps(root)))
        ]
        while stack:
            flat, deps = stack[-1]
            descended = False
            for dep in deps:
                if dep.kind != "comb":
                    continue
                mark = state.get(dep.path, 0)
                if mark == 2:
                    continue
                if mark == 1:
                    cycle = " -> ".join([f.path for f, __ in stack]
                                        + [dep.path])
                    raise HdlError(f"combinational cycle: {cycle}")
                state[dep.path] = 1
                stack.append((dep, iter(_flat_deps(dep))))
                descended = True
                break
            if not descended:
                state[flat.path] = 2
                order.append(flat)
                stack.pop()
    design.comb_order = order
