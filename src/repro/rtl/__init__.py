"""``repro.rtl`` -- synthesizable RTL: IR, elaboration, simulation, Verilog.

Substitutes for the Verilog RTL level of the paper's flow.  Designs are
built from :class:`RtlModule` / expression trees, flattened by
:func:`elaborate` into a bit-level :class:`FlatDesign`, executed by
:class:`RtlSimulator` (the stand-in for a commercial Verilog simulator in
Table 3) and rendered to Verilog text by :func:`emit_verilog`.
"""

from .hdl import (
    BinOp,
    C,
    Concat,
    Const,
    Expr,
    HdlError,
    Instance,
    Mux,
    Net,
    Port,
    Reduce,
    Ref,
    Reg,
    RtlModule,
    Slice,
    TristateDriver,
    UnOp,
    Wire,
)
from .netlist import FlatDesign, FlatMonitor, FlatNet, elaborate
from .compile import CompiledDesign, compile_design, mangle_edge
from .bitsim import BitparDesign, compile_bitpar
from .simulator import AssertionFailure, MonitorRecord, RtlSimulator
from .verilog_emit import emit_expr, emit_verilog
from .trace import RtlTracer

__all__ = [
    "Expr",
    "Const",
    "C",
    "Ref",
    "UnOp",
    "BinOp",
    "Mux",
    "Slice",
    "Concat",
    "Reduce",
    "Net",
    "Wire",
    "Reg",
    "Port",
    "Instance",
    "TristateDriver",
    "RtlModule",
    "HdlError",
    "FlatNet",
    "FlatMonitor",
    "FlatDesign",
    "elaborate",
    "CompiledDesign",
    "compile_design",
    "mangle_edge",
    "BitparDesign",
    "compile_bitpar",
    "RtlSimulator",
    "AssertionFailure",
    "MonitorRecord",
    "emit_verilog",
    "RtlTracer",
    "emit_expr",
]
