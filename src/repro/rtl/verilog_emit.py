"""Verilog source emission from the RTL IR.

The final deliverable of the paper's flow is "a synthesizable Verilog
implementation"; :func:`emit_verilog` renders an :class:`RtlModule`
hierarchy as Verilog-2001 text.  Registers clocked on the two LA-1 master
clocks become ``always @(posedge K)`` / ``always @(posedge K_n)`` blocks,
tristate buffers become conditional continuous assignments driving ``'bz``.

The emitted text is for inspection and interoperability; the reproduction
simulates and model-checks the IR directly.
"""

from __future__ import annotations

import io

from .hdl import (
    BinOp,
    Concat,
    Const,
    Expr,
    Mux,
    Reduce,
    Ref,
    Reg,
    RtlModule,
    Slice,
    UnOp,
    Wire,
)

__all__ = ["emit_verilog", "emit_expr"]

_BINOPS = {"and": "&", "or": "|", "xor": "^", "add": "+", "eq": "=="}
_REDUCE = {"xor": "^", "or": "|", "and": "&"}


def _clk_ident(clock: str) -> str:
    """Map clock-domain names onto Verilog identifiers (``K#`` -> ``K_n``)."""
    return clock.replace("#", "_n")


def emit_expr(expr: Expr) -> str:
    """Render one expression as Verilog source."""
    if isinstance(expr, Const):
        return f"{expr.width}'d{expr.value}"
    if isinstance(expr, Ref):
        return expr.net.name
    if isinstance(expr, UnOp):
        return f"(~{emit_expr(expr.a)})"
    if isinstance(expr, BinOp):
        return f"({emit_expr(expr.a)} {_BINOPS[expr.op]} {emit_expr(expr.b)})"
    if isinstance(expr, Mux):
        return (
            f"({emit_expr(expr.sel)} ? {emit_expr(expr.if_true)}"
            f" : {emit_expr(expr.if_false)})"
        )
    if isinstance(expr, Slice):
        if expr.lo == expr.hi:
            return f"{emit_expr(expr.a)}[{expr.lo}]"
        return f"{emit_expr(expr.a)}[{expr.hi}:{expr.lo}]"
    if isinstance(expr, Concat):
        parts = ", ".join(emit_expr(p) for p in reversed(expr.parts))
        return "{" + parts + "}"
    if isinstance(expr, Reduce):
        return f"({_REDUCE[expr.op]}{emit_expr(expr.a)})"
    raise TypeError(f"cannot emit {expr!r}")


def _range(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


def _emit_module(module: RtlModule, out: io.StringIO) -> None:
    clock_domains = sorted(
        {net.clock for net in module.nets.values() if isinstance(net, Reg)}
    )
    clock_ports = [_clk_ident(c) for c in clock_domains]
    port_names = [p.name for p in module.ports] + clock_ports
    out.write(f"module {module.name} (\n")
    out.write(",\n".join(f"    {name}" for name in port_names))
    out.write("\n);\n")
    for clk in clock_ports:
        out.write(f"  input {clk};\n")
    for port in module.ports:
        direction = "input" if port.direction == "in" else "output"
        out.write(f"  {direction} {_range(port.width)}{port.name};\n")
    declared_ports = {p.name for p in module.ports}
    for net in module.nets.values():
        if net.name in declared_ports and not isinstance(net, Reg):
            continue
        if isinstance(net, Reg):
            out.write(f"  reg {_range(net.width)}{net.name} = {net.width}'d{net.init};\n")
        else:
            out.write(f"  wire {_range(net.width)}{net.name};\n")
    out.write("\n")
    for net in module.nets.values():
        if isinstance(net, Wire):
            if net.driver is not None:
                out.write(f"  assign {net.name} = {emit_expr(net.driver)};\n")
            for driver in net.tristate_drivers:
                out.write(
                    f"  assign {net.name} = {emit_expr(driver.enable)} ? "
                    f"{emit_expr(driver.value)} : {net.width}'bz;\n"
                )
    out.write("\n")
    for net in module.nets.values():
        if isinstance(net, Reg) and net.next is not None:
            out.write(f"  always @(posedge {_clk_ident(net.clock)})\n")
            out.write(f"    {net.name} <= {emit_expr(net.next)};\n")
    out.write("\n")
    for instance in module.instances:
        child_clocks = sorted(
            {
                net.clock
                for net in instance.module.nets.values()
                if isinstance(net, Reg)
            }
        )
        bindings = []
        for clk in child_clocks:
            ident = _clk_ident(clk)
            bindings.append(f".{ident}({ident})")
        for port in instance.module.ports:
            bound = instance.connections[port.name]
            if isinstance(bound, Wire):
                text = bound.name
            else:
                text = emit_expr(bound)
            bindings.append(f".{port.name}({text})")
        out.write(
            f"  {instance.module.name} {instance.name} ("
            + ", ".join(bindings)
            + ");\n"
        )
    out.write("endmodule\n\n")


def emit_verilog(top: RtlModule) -> str:
    """Emit ``top`` and every distinct module it instantiates as Verilog."""
    seen: dict[str, RtlModule] = {}

    def collect(module: RtlModule) -> None:
        for instance in module.instances:
            collect(instance.module)
        if module.name not in seen:
            seen[module.name] = module

    collect(top)
    out = io.StringIO()
    out.write("// Generated by repro.rtl.verilog_emit\n")
    out.write("// LA-1 reproduction of Habibi et al., DATE 2004\n\n")
    for module in seen.values():
        _emit_module(module, out)
    return out.getvalue()
