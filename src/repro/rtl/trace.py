"""Waveform tracing for the RTL simulator.

Records selected flat nets after every edge and renders the result as a
VCD document or an ASCII table -- the RTL counterpart of
:class:`repro.sysc.trace.Tracer`, so both Table 3 simulators offer the
same debug observability.
"""

from __future__ import annotations

import io
from typing import Optional, Sequence

from .netlist import FlatNet
from .simulator import RtlSimulator

__all__ = ["RtlTracer"]


class RtlTracer:
    """Per-edge change recorder for flat nets."""

    def __init__(self, sim: RtlSimulator, paths: Sequence[str]):
        self.sim = sim
        self._nets: list[FlatNet] = [sim.design.net(p) for p in paths]
        self._history: dict[str, list[tuple[int, int]]] = {
            net.path: [(sim.edge_count, sim.values[net])]
            for net in self._nets
        }
        sim.add_edge_hook(self._on_edge)

    def _on_edge(self, edge: str, sim: RtlSimulator) -> None:
        for net in self._nets:
            history = self._history[net.path]
            value = sim.values[net]
            if history[-1][1] != value:
                history.append((sim.edge_count, value))

    # ------------------------------------------------------------------
    def history(self, path: str) -> list[tuple[int, int]]:
        """``(edge_count, value)`` change list for a traced net."""
        return list(self._history[path])

    def value_at(self, path: str, edge: int) -> Optional[int]:
        """Value of a traced net after the given edge."""
        value = None
        for when, v in self._history[path]:
            if when > edge:
                break
            value = v
        return value

    def to_vcd(self) -> str:
        """Render all traced nets as a VCD document (time = edge count)."""
        out = io.StringIO()
        out.write("$date 2004 $end\n$version repro.rtl tracer $end\n")
        out.write("$timescale 1ns $end\n$scope module rtl $end\n")
        codes = {}
        for i, net in enumerate(self._nets):
            code = chr(33 + i % 94) + (str(i // 94) if i >= 94 else "")
            codes[net.path] = code
            out.write(f"$var wire {net.width} {code} {net.path} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        events: dict[int, list[str]] = {}
        for net in self._nets:
            code = codes[net.path]
            for when, value in self._history[net.path]:
                rendered = (
                    f"{value}{code}" if net.width == 1
                    else f"b{bin(value)[2:]} {code}"
                )
                events.setdefault(when, []).append(rendered)
        for when in sorted(events):
            out.write(f"#{when}\n")
            for line in events[when]:
                out.write(line + "\n")
        return out.getvalue()

    def to_table(self) -> str:
        """Render as an ASCII table (one row per edge with a change)."""
        edges = sorted({e for h in self._history.values() for e, __ in h})
        names = [net.path for net in self._nets]
        rows = ["edge | " + " | ".join(names)]
        for edge in edges:
            cells = [str(self.value_at(name, edge)) for name in names]
            rows.append(f"{edge:4d} | " + " | ".join(cells))
        return "\n".join(rows)
