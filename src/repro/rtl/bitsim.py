"""Bit-parallel (PPSFP) compiled backend: 64 simulations per word.

Classic parallel-pattern single-fault-propagation packs many independent
two-state simulations into one machine word: the netlist is *bit-sliced*
so that each bit of each net occupies one slot holding a Python int
whose bit *i* is that bit's value in simulation **lane** *i*.  Every
gate then becomes a single word-wide ``&``/``|``/``^`` over lane words,
so one settle pass advances all lanes at once -- the golden machine in
lane 0 plus up to ``lanes - 1`` faulty machines (or independent
stimulus walks) in the remaining lanes.

The lowering mirrors :mod:`repro.rtl.compile` (same elaboration-order
slot layout, same topological order, same constant folding and the same
tristate priority/conflict semantics) but decomposes every word-level
operator into per-bit boolean form:

* ``and``/``or``/``xor`` -- the per-bit word op;
* ``not`` -- ``x ^ M`` where ``M`` is the lane mask (all lanes set);
* ``add`` -- a ripple-carry chain with memoised carry words;
* ``eq``  -- the AND of per-bit XNORs, one lane word out;
* ``Mux`` -- ``(t & s) | (f & ~s)`` with the select word shared across
  all bits of the arm;
* ``Slice``/``Concat`` -- free bit routing (no code at all);
* reductions -- an OR/AND/XOR fold over the operand's bit words.

A two-pass emitter counts how often each (sub)expression bit is needed
and materialises shared values (mux selects, address decoders, carry
chains) into local temporaries, so the generated function stays
straight-line three-address-ish code over the flat bit-slot array.

Hierarchical port wiring is *slot-aliased* away: a combinational bit
that is pure routing (its expression resolves through Slice/Concat to a
plain ``Ref``) does not get a slot of its own -- it shares the slot of
the bit it routes to, transitively.  On a hierarchical design most comb
nets are exactly such port aliases (``top.w -> bank.w -> port.w``
chains), so this removes the majority of all settle assignments: the
alias is bit-identical to its source by construction, so no code needs
to run to keep it current.  The cost is that a net's bit slots are no
longer contiguous; ``bit_slots`` maps each net path to its per-bit slot
tuple and every consumer indexes through it.

Large mux chains get an *activity guard*: a combinational net with a
deep select tree (the SRAM read mux above all) is recomputed only when
one of its support nets -- the registers and free inputs its expression
transitively reads -- actually changed since the last settle.  Each
guarded net owns a dirty flag in ``ctx``; register commits that change
a watched net, input drives, and fault-injector forces raise the flags
of the guards they feed, and a clean flag lets settle skip the whole
block (its output slots still hold the previous, still-correct words).
The guard is conservative (flags may be raised without a value change)
so skipping never alters a single lane bit.

Lane count is arbitrary (Python ints are unbounded); 64 is the default
because one native machine word per slot is the classic PPSFP sweet
spot.  Tristate conflicts are tracked *per lane*: a conflict in lane 0
raises exactly like the compiled backend (the golden machine is the
reference), while conflicts confined to faulty lanes are accumulated in
``ctx[0]`` so campaign code can degrade those lanes to per-fault runs.
"""

from __future__ import annotations

import sys
from typing import Callable, Optional

from .compile import _Emitter, _make_conflict, mangle_edge
from .hdl import (
    BinOp,
    Concat,
    Const,
    Expr,
    HdlError,
    Mux,
    Net,
    Reduce,
    Ref,
    Slice,
    UnOp,
)
from .netlist import FlatDesign, FlatNet

__all__ = ["BitparDesign", "compile_bitpar", "trace_bit"]

#: textual size at which a subexpression is spilled to a temporary --
#: bounds CPython's parser nesting limits on deep mux/reduce chains and
#: keeps shared decode logic from being re-evaluated inline
_SPILL_LEN = 240


def trace_bit(expr: Expr, scope: dict, bit: int,
              follow_comb: bool = True):
    """Follow pure wiring from bit ``bit`` of ``expr`` to its source.

    Walks ``Ref``/``Slice``/``Concat`` routing (and, with
    ``follow_comb``, through combinational nets that are themselves pure
    wiring) and returns the underlying ``(FlatNet, bit)`` -- a register
    or free input bit when the wiring bottoms out there.  Returns
    ``None`` as soon as real logic (gates, muxes, tristates) is hit.
    This is the support-resolution rule used both for fault collapsing
    (equivalent stuck-ats land on one register/input bit) and for the
    hold-register peephole of the bitpar codegen.
    """
    for __ in range(10_000):  # cycle guard; netlists are acyclic anyway
        while True:
            if isinstance(expr, Slice):
                bit += expr.lo
                expr = expr.a
                continue
            if isinstance(expr, Concat):
                for part in expr.parts:
                    if bit < part.width:
                        expr = part
                        break
                    bit -= part.width
                else:
                    return None
                continue
            break
        if not isinstance(expr, Ref):
            return None
        flat = scope.get(expr.net)
        if flat is None or bit >= flat.width:
            return None
        if flat.kind != "comb":
            return (flat, bit)
        if not follow_comb or flat.tristate is not None or flat.expr is None:
            return None
        expr, scope = flat.expr, flat.scope
    return None


def _atomic(src: str) -> bool:
    """True when ``src`` is free to duplicate: a name, a literal, or a
    direct slot read."""
    if src.isidentifier() or src.isdigit():
        return True
    return (src.startswith("v[") and src.endswith("]")
            and src[2:-1].isdigit())


# ----------------------------------------------------------------------
# lane-word boolean algebra on (source, const) pairs
# ----------------------------------------------------------------------
# ``const`` is the statically known *bit* value (0/1, broadcast to every
# lane) when the subtree folds; the source is then "0" or "M".
_PAIR = "tuple[str, Optional[int]]"


def _const_pair(bit: int) -> tuple:
    return ("M", 1) if bit else ("0", 0)


def _and2(a, b):
    (asrc, ac), (bsrc, bc) = a, b
    if ac == 0 or bc == 0:
        return _const_pair(0)
    if ac == 1:
        return b
    if bc == 1:
        return a
    return (f"({asrc} & {bsrc})", None)


def _or2(a, b):
    (asrc, ac), (bsrc, bc) = a, b
    if ac == 1 or bc == 1:
        return _const_pair(1)
    if ac == 0:
        return b
    if bc == 0:
        return a
    return (f"({asrc} | {bsrc})", None)


def _xor2(a, b):
    (asrc, ac), (bsrc, bc) = a, b
    if ac is not None and bc is not None:
        return _const_pair(ac ^ bc)
    if ac == 0:
        return b
    if bc == 0:
        return a
    if ac == 1:
        return (f"({bsrc} ^ M)", None)
    if bc == 1:
        return (f"({asrc} ^ M)", None)
    return (f"({asrc} ^ {bsrc})", None)


def _not1(a):
    src, c = a
    if c is not None:
        return _const_pair(1 - c)
    return (f"({src} ^ M)", None)


class _LaneLowerer:
    """Per-function expression lowering with shared-subterm temps.

    Used in two passes over identical request sequences: a *recording*
    pass counts how many times each ``(expr, scope, bit)`` value is
    needed, then the *emitting* pass materialises any value requested
    more than once (and every ripple carry) into a local temporary.
    Temporaries stay valid for the whole generated function because
    every net slot is written at most once per settle pass.
    """

    def __init__(self, emit: _Emitter, bit_slots: dict, record: bool,
                 counts: dict, indent: str = "    "):
        self.emit = emit
        self.bit_slots = bit_slots
        self.record = record
        self.counts = counts
        self.indent = indent
        self.memo: dict = {}

    def _spill(self, src: str) -> str:
        name = self.emit.temp("_b")
        self.emit.w(f"{self.indent}{name} = {src}")
        return name

    # -- the count/temp cache ------------------------------------------
    def cached(self, key, compute: Callable, force_temp: bool = False):
        if self.record:
            self.counts[key] = self.counts.get(key, 0) + 1
            hit = self.memo.get(key)
            if hit is None:
                src, const = compute()
                # spill oversized sources even in the recording pass so
                # string growth stays linear (output is discarded)
                if const is None and not _atomic(src) \
                        and len(src) > _SPILL_LEN:
                    src = self._spill(src)
                hit = (src, const)
                self.memo[key] = hit
            return hit
        hit = self.memo.get(key)
        if hit is not None:
            return hit
        src, const = compute()
        if const is None and not _atomic(src) and (
                force_temp or len(src) > _SPILL_LEN
                or self.counts.get(key, 0) > 1):
            src = self._spill(src)
        pair = (src, const)
        self.memo[key] = pair
        return pair

    def flush(self, pair):
        """Cap the textual size of a fold accumulator by spilling it to
        a temp mid-fold (wide reductions and equalities would otherwise
        nest past CPython's parser limits)."""
        src, const = pair
        if const is not None or _atomic(src) or len(src) <= _SPILL_LEN:
            return pair
        return (self._spill(src), const)

    # -- expression lowering -------------------------------------------
    def lower(self, expr: Expr, scope: dict, bit: int):
        """Lower bit ``bit`` of ``expr`` to a lane-word (source, const)."""
        key = (id(expr), id(scope), bit)
        return self.cached(key, lambda: self._compute(expr, scope, bit))

    def _compute(self, expr: Expr, scope: dict, bit: int):
        if isinstance(expr, Const):
            return _const_pair((expr.value >> bit) & 1)
        if isinstance(expr, Ref):
            flat = scope.get(expr.net)
            if flat is None:
                raise HdlError(
                    f"net {expr.net.name} referenced by bitpar expression "
                    "is not in scope"
                )
            return (f"v[{self.bit_slots[flat.path][bit]}]", None)
        if isinstance(expr, UnOp):
            return _not1(self.lower(expr.a, scope, bit))
        if isinstance(expr, BinOp):
            return self._binop(expr, scope, bit)
        if isinstance(expr, Mux):
            return self._mux(expr, scope, bit)
        if isinstance(expr, Slice):
            return self.lower(expr.a, scope, bit + expr.lo)
        if isinstance(expr, Concat):
            offset = 0
            for part in expr.parts:
                if bit < offset + part.width:
                    return self.lower(part, scope, bit - offset)
                offset += part.width
            raise HdlError(f"concat bit {bit} out of range")
        if isinstance(expr, Reduce):
            return self._reduce(expr, scope)
        raise HdlError(
            f"bitpar backend cannot lower expression {type(expr).__name__}"
        )

    def _binop(self, expr: BinOp, scope: dict, bit: int):
        op = expr.op
        if op in ("and", "or", "xor"):
            a = self.lower(expr.a, scope, bit)
            b = self.lower(expr.b, scope, bit)
            return {"and": _and2, "or": _or2, "xor": _xor2}[op](a, b)
        if op == "eq":
            # one lane word out: AND of per-bit XNORs
            out = _const_pair(1)
            for i in range(expr.a.width):
                a = self.lower(expr.a, scope, i)
                b = self.lower(expr.b, scope, i)
                out = self.flush(_and2(out, _not1(_xor2(a, b))))
                if out[1] == 0:
                    return out
            return out
        if op == "add":
            a = self.lower(expr.a, scope, bit)
            b = self.lower(expr.b, scope, bit)
            c = self._carry(expr, scope, bit)
            return _xor2(_xor2(a, b), c)
        raise HdlError(f"bitpar backend cannot lower binop {op!r}")

    def _carry(self, expr: BinOp, scope: dict, bit: int):
        """The ripple carry *into* bit ``bit`` of an add (always a temp:
        inlining would nest the whole chain into one expression)."""
        if bit == 0:
            return _const_pair(0)
        key = ("carry", id(expr), id(scope), bit)

        def compute():
            a = self.lower(expr.a, scope, bit - 1)
            b = self.lower(expr.b, scope, bit - 1)
            c = self._carry(expr, scope, bit - 1)
            # carry-out = (a & b) | (c & (a ^ b))
            return _or2(_and2(a, b), _and2(c, _xor2(a, b)))

        return self.cached(key, compute, force_temp=True)

    def _mux(self, expr: Mux, scope: dict, bit: int):
        s = self.lower(expr.sel, scope, 0)
        if s[1] is not None:
            arm = expr.if_true if s[1] else expr.if_false
            return self.lower(arm, scope, bit)
        t = self.lower(expr.if_true, scope, bit)
        f = self.lower(expr.if_false, scope, bit)
        if t[1] is not None and t[1] == f[1]:
            return t
        ns = self.cached(("nsel", id(expr.sel), id(scope)),
                         lambda: _not1(s))
        return _or2(_and2(t, s), _and2(f, ns))

    def _reduce(self, expr: Reduce, scope: dict):
        width = expr.a.width
        bits = [self.lower(expr.a, scope, i) for i in range(width)]
        if expr.op == "or":
            out = _const_pair(0)
            for b in bits:
                out = self.flush(_or2(out, b))
                if out[1] == 1:
                    return out
            return out
        if expr.op == "and":
            out = _const_pair(1)
            for b in bits:
                out = self.flush(_and2(out, b))
                if out[1] == 0:
                    return out
            return out
        out = _const_pair(0)
        for b in bits:
            out = self.flush(_xor2(out, b))
        return out


# ----------------------------------------------------------------------
# hold-register peephole
# ----------------------------------------------------------------------
def _route(expr: Expr, bit: int):
    """Resolve which node actually produces bit ``bit`` of ``expr``
    (unwrapping Slice/Concat routing only)."""
    while True:
        if isinstance(expr, Slice):
            bit += expr.lo
            expr = expr.a
            continue
        if isinstance(expr, Concat):
            for part in expr.parts:
                if bit < part.width:
                    expr = part
                    break
                bit -= part.width
            else:
                raise HdlError(f"concat bit {bit} out of range")
            continue
        return expr, bit


#: minimum run length for the guarded-commit peephole; below this the
#: guard costs as much as the muxes it skips
_MIN_HOLD = 4


def _hold_groups(flat: FlatNet) -> list:
    """Partition a register's bits into plain runs and *hold groups*.

    A hold group is a maximal run of bits whose next value is
    ``Mux(load, x, self)`` with one shared select and the else-arm wired
    straight back to the same bit -- the load-enable idiom of every
    pipeline capture register and of each word of the SRAM write mux.
    Such runs commit through a lane-word guard: when no lane asserts
    ``load`` this edge, the whole group is skipped, which is what makes
    bit-sliced simulation of memories affordable (at most one SRAM word
    is written per edge, but all words would otherwise be re-muxed).
    Returns ``("plain", start, stop)`` / ``("hold", mux_node, start,
    stop)`` triples covering ``range(flat.width)`` in order.
    """
    groups: list = []

    def add_plain(start, stop):
        if groups and groups[-1][0] == "plain" and groups[-1][2] == start:
            groups[-1] = ("plain", groups[-1][1], stop)
        else:
            groups.append(("plain", start, stop))

    def holds(b):
        node, nb = _route(flat.next_expr, b)
        if not isinstance(node, Mux) or isinstance(node.sel, Const):
            return None
        if trace_bit(node.if_false, flat.scope, nb) != (flat, b):
            return None
        return node

    b = 0
    while b < flat.width:
        node = holds(b)
        if node is None:
            add_plain(b, b + 1)
            b += 1
            continue
        start = b
        b += 1
        while b < flat.width and holds(b) is node:
            b += 1
        if b - start >= _MIN_HOLD:
            groups.append(("hold", node, start, b))
        else:
            add_plain(start, b)
    return groups


# ----------------------------------------------------------------------
# activity guards
# ----------------------------------------------------------------------
#: minimum number of Mux nodes in a net's own expression before it gets
#: an activity guard; below this the flag bookkeeping costs more than
#: the recompute it skips.  The SRAM read mux (one Mux per memory word)
#: is the target; narrow control muxes stay unguarded.
_GUARD_MIN_MUXES = 8


def _count_muxes(expr: Expr) -> int:
    """Mux nodes in ``expr`` itself (shared subtrees once, Refs not
    followed -- a net is judged by its own logic, not its inputs')."""
    count = 0
    seen: set = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Mux):
            count += 1
            stack += (node.sel, node.if_true, node.if_false)
        elif isinstance(node, UnOp):
            stack.append(node.a)
        elif isinstance(node, BinOp):
            stack += (node.a, node.b)
        elif isinstance(node, Slice):
            stack.append(node.a)
        elif isinstance(node, Concat):
            stack += node.parts
        elif isinstance(node, Reduce):
            stack.append(node.a)
    return count


def _guard_support(expr: Expr, scope: dict):
    """The state/input nets ``expr`` transitively reads, as a path map.

    Recurses through combinational nets down to registers and free
    inputs.  Returns ``None`` when the support cannot be pinned down
    (a tristate bus or an undriven net in the cone): such a net is
    simply recomputed every settle, like before.
    """
    support: dict = {}
    seen: set = set()
    stack = [(expr, scope)]
    while stack:
        node, sc = stack.pop()
        key = (id(node), id(sc))
        if key in seen:
            continue
        seen.add(key)
        if isinstance(node, Const):
            continue
        if isinstance(node, Ref):
            flat = sc.get(node.net)
            if flat is None:
                return None
            if flat.kind == "comb":
                if flat.tristate is not None or flat.expr is None:
                    return None
                stack.append((flat.expr, flat.scope))
            else:
                support[flat.path] = flat
            continue
        if isinstance(node, UnOp):
            stack.append((node.a, sc))
        elif isinstance(node, BinOp):
            stack += ((node.a, sc), (node.b, sc))
        elif isinstance(node, Mux):
            stack += ((node.sel, sc), (node.if_true, sc),
                      (node.if_false, sc))
        elif isinstance(node, Slice):
            stack.append((node.a, sc))
        elif isinstance(node, Concat):
            stack += [(part, sc) for part in node.parts]
        elif isinstance(node, Reduce):
            stack.append((node.a, sc))
        else:
            return None
    return support


def _guard_plan(design: FlatDesign, aliased: set) -> tuple:
    """Pick the nets worth activity-guarding.

    Returns ``(guarded, watched)``: ``guarded`` maps a comb net path to
    its dirty-flag index in ``ctx`` (flag 0 is the conflict word, so
    guards start at 1); ``watched`` maps each support net path to the
    tuple of flag indexes that must be raised when it changes.
    """
    guarded: dict = {}
    watched: dict = {}
    for flat in design.comb_order:
        if flat.tristate is not None or flat.expr is None:
            continue
        if all((flat.path, b) in aliased for b in range(flat.width)):
            continue                     # pure routing: no code to guard
        if _count_muxes(flat.expr) < _GUARD_MIN_MUXES:
            continue
        support = _guard_support(flat.expr, flat.scope)
        if support is None:
            continue
        flag = len(guarded) + 1
        guarded[flat.path] = flag
        for path in support:
            watched.setdefault(path, []).append(flag)
    return guarded, {path: tuple(flags) for path, flags in watched.items()}


# ----------------------------------------------------------------------
# function codegen
# ----------------------------------------------------------------------
def _emit_comb(low: _LaneLowerer, emit: _Emitter, flat: FlatNet,
               slots, aliased, detect: bool,
               conflict_paths: list) -> None:
    """One combinational net: per-bit word assignments, or a lane-wise
    tristate priority network.  Bits in ``aliased`` share their source's
    slot and need no code at all."""
    if flat.tristate is None:
        assert flat.expr is not None
        for b in range(flat.width):
            if (flat.path, b) in aliased:
                continue
            src, __ = low.lower(flat.expr, flat.scope, b)
            emit.w(f"    v[{slots[b]}] = {src}  # {flat.path}[{b}]")
        return
    drivers = flat.tristate
    # evaluate every enable word once (like the compiled backend)
    enables = []
    for i, driver in enumerate(drivers):
        src, __ = low.lower(driver.enable, flat.scope, 0)
        name = emit.temp("_e")
        emit.w(f"    {name} = {src}  # {flat.path} en[{i}]")
        enables.append(name)
    # priority words: pri[i] = en[i] & ~(en[0] | ... | en[i-1]);
    # lanes where an earlier driver already won mask later drivers out,
    # mirroring the interpreter's first-enabled-wins driver order
    if detect and len(drivers) > 1:
        taken = enables[0]
        conflict = emit.temp("_c")
        emit.w(f"    {conflict} = 0")
        pris = [enables[0]]
        for i in range(1, len(drivers)):
            emit.w(f"    {conflict} |= {enables[i]} & {taken}")
            pri = emit.temp("_p")
            emit.w(f"    {pri} = {enables[i]} & ({taken} ^ M)")
            pris.append(pri)
            if i + 1 < len(drivers):
                new_taken = emit.temp("_k")
                emit.w(f"    {new_taken} = {taken} | {enables[i]}")
                taken = new_taken
        index = len(conflict_paths)
        conflict_paths.append(flat.path)
        # a conflict in the golden lane is a hard error, exactly like
        # the scalar backends; other lanes are only recorded in ctx
        emit.w(f"    if {conflict} & 1:")
        emit.w(f"        _conflict({index})")
        emit.w(f"    ctx[0] |= {conflict}")
    else:
        taken = None
        pris = [enables[0]]
        for i in range(1, len(drivers)):
            taken = enables[0] if taken is None else taken
            pri = emit.temp("_p")
            emit.w(f"    {pri} = {enables[i]} & ({taken} ^ M)")
            pris.append(pri)
            if i + 1 < len(drivers):
                new_taken = emit.temp("_k")
                emit.w(f"    {new_taken} = {taken} | {enables[i]}")
                taken = new_taken
    for b in range(flat.width):
        terms = []
        for i, driver in enumerate(drivers):
            vsrc, vc = low.lower(driver.value, flat.scope, b)
            if vc == 0:
                continue
            if vc == 1:
                terms.append(pris[i])
            else:
                terms.append(f"({pris[i]} & {vsrc})")
        out = " | ".join(terms) if terms else "0"
        emit.w(f"    v[{slots[b]}] = {out}  # {flat.path}[{b}]")


def _emit_guarded(bit_slots: dict, emit: _Emitter, flat: FlatNet,
                  slots, aliased, flag: int) -> None:
    """One activity-guarded combinational net: the per-bit assignments
    run only when the net's dirty flag is raised; a clean flag means no
    support bit changed, so the output slots are already correct."""
    def body(low: _LaneLowerer, out: _Emitter) -> None:
        for b in range(flat.width):
            if (flat.path, b) in aliased:
                continue
            src, __ = low.lower(flat.expr, flat.scope, b)
            out.w(f"        v[{slots[b]}] = {src}  # {flat.path}[{b}]")

    emit.w(f"    if ctx[{flag}]:  # guard {flat.path}")
    emit.w(f"        ctx[{flag}] = 0")
    # the block gets a private two-pass lowering: its temps live under
    # the guard, so nothing outside may rely on them (and vice versa)
    counts: dict = {}
    trial = _Emitter()
    body(_LaneLowerer(trial, bit_slots, True, counts,
                      indent="        "), trial)
    body(_LaneLowerer(emit, bit_slots, False, counts,
                      indent="        "), emit)


class BitparDesign:
    """The executable bit-sliced form of a flattened design.

    ``settle(v, ctx)`` re-evaluates all combinational bit words in
    topological order (``ctx[0]`` accumulates the lane word of tristate
    conflicts); ``steps[edge](v, fired, ctx)`` applies one clock edge --
    ``fired`` collects ``(monitor_index, lane_word)`` pairs for every
    monitor whose fire word is non-zero in any lane.  ``bit_slots`` maps
    net path to the tuple of that net's per-bit slots -- pure-routing
    alias bits share their source's slot, so the tuple need not be
    contiguous; ``init`` is the power-up lane word of every bit slot
    (register init bits broadcast to all lanes).  ``work`` counts the
    word assignments per generated function for the ``words_evaluated``
    statistic.  ``num_guards`` activity guards occupy ``ctx[1:]`` (all
    raised at reset); ``state_guards`` maps a watched register/input
    path to the guard flags that must be raised when external code --
    input drives, fault forces -- changes its bits.
    """

    __slots__ = ("design", "lanes", "lane_mask", "detect_bus_conflicts",
                 "settle", "steps", "init", "source", "bit_slots",
                 "num_bit_slots", "work", "num_guards", "state_guards")

    def __init__(self, design: FlatDesign, lanes: int,
                 detect_bus_conflicts: bool, settle: Callable,
                 steps: dict, init: tuple, source: str, bit_slots: dict,
                 num_bit_slots: int, work: dict, num_guards: int,
                 state_guards: dict):
        self.design = design
        self.lanes = lanes
        self.lane_mask = (1 << lanes) - 1
        self.detect_bus_conflicts = detect_bus_conflicts
        self.settle = settle
        self.steps = steps
        self.init = init
        self.source = source
        self.bit_slots = bit_slots
        self.num_bit_slots = num_bit_slots
        self.work = work
        self.num_guards = num_guards
        self.state_guards = state_guards


def _count_work(lines: list, start: int) -> int:
    return sum(1 for line in lines[start:] if " = " in line)


def compile_bitpar(design: FlatDesign, detect_bus_conflicts: bool = True,
                   lanes: int = 64) -> BitparDesign:
    """Lower ``design`` to bit-sliced lane-word ``settle`` / step code."""
    if lanes < 1:
        raise HdlError(f"lane count must be positive, got {lanes}")
    # per-bit lowering recurses one frame deeper per mux-chain level than
    # the scalar lowerer; address-decode chains on big memories (e.g. the
    # 256-word SRAM at addr_bits=8) need more headroom than the default
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 50_000))
    try:
        return _compile_bitpar(design, detect_bus_conflicts, lanes)
    finally:
        sys.setrecursionlimit(limit)


def _alias_layout(design: FlatDesign) -> tuple:
    """Assign bit slots with pure-routing aliases folded onto their
    source bit.

    Returns ``(bit_slots, num_bit_slots, aliased)`` where ``aliased`` is
    the set of ``(path, bit)`` keys that own no slot (and therefore get
    no settle assignment).  Only non-tristate combinational bits whose
    expression resolves through Slice/Concat routing to a plain ``Ref``
    alias; registers and free inputs always own their slots, so ``init``
    and the input-drive paths are unaffected.
    """
    route_to: dict = {}
    for flat in design.nets.values():
        if (flat.kind != "comb" or flat.tristate is not None
                or flat.expr is None):
            continue
        for b in range(flat.width):
            node, nb = _route(flat.expr, b)
            if isinstance(node, Ref):
                target = flat.scope.get(node.net)
                if target is not None and nb < target.width:
                    route_to[(flat.path, b)] = (target.path, nb)

    def resolve(key):
        chain = []
        while key in route_to:
            chain.append(key)
            key = route_to[key]
            if len(chain) > len(route_to):
                raise HdlError(f"combinational routing cycle at {key}")
        for item in chain:  # path compression
            route_to[item] = key
        return key

    slot_of: dict = {}
    next_slot = 0
    for flat in design.nets.values():
        for b in range(flat.width):
            if (flat.path, b) not in route_to:
                slot_of[(flat.path, b)] = next_slot
                next_slot += 1
    bit_slots = {
        flat.path: tuple(slot_of[resolve((flat.path, b))]
                         for b in range(flat.width))
        for flat in design.nets.values()
    }
    return bit_slots, next_slot, set(route_to)


def _compile_bitpar(design: FlatDesign, detect_bus_conflicts: bool,
                    lanes: int) -> BitparDesign:
    # bit-slot layout: nets in elaboration (slot) order, one slot per
    # non-aliased bit
    bit_slots, num_bit_slots, aliased = _alias_layout(design)
    guarded, watched = _guard_plan(design, aliased)
    # slots of watched nets, for flag-raising at register commit sites
    watched_slots: dict = {}
    for path, flags in watched.items():
        for slot in bit_slots[path]:
            watched_slots[slot] = flags

    emit = _Emitter()
    conflict_paths: list = []
    counts: dict = {}
    work: dict = {}

    def settle_body(low: _LaneLowerer, out: _Emitter,
                    paths: list) -> None:
        start = len(out.lines)
        for flat in design.comb_order:
            flag = guarded.get(flat.path)
            if flag is None:
                _emit_comb(low, out, flat, bit_slots[flat.path], aliased,
                           detect_bus_conflicts, paths)
            elif not low.record:
                # guarded blocks lower privately (emit pass only): their
                # temps are conditional, so nothing outside shares them
                _emit_guarded(bit_slots, out, flat,
                              bit_slots[flat.path], aliased, flag)
        if len(out.lines) == start:   # everything aliased (or no comb)
            out.w("    pass")

    # pass 1 (recording): count shared subexpressions, discard output
    trial = _Emitter()
    settle_body(_LaneLowerer(trial, bit_slots, True, counts), trial, [])
    # pass 2: emit with temps for everything requested more than once
    emit.w("def settle(v, ctx):")
    mark = len(emit.lines)
    settle_body(_LaneLowerer(emit, bit_slots, False, counts), emit,
                conflict_paths)
    work["settle"] = _count_work(emit.lines, mark)

    edges = sorted(set(design.clocks)
                   | {monitor.clock for monitor in design.monitors})
    step_names: dict = {}
    for edge in edges:
        name = f"step_{mangle_edge(edge)}"
        while name in step_names.values():
            name += "_"
        step_names[edge] = name
        regs = [flat for flat in design.regs if flat.clock == edge]

        def next_state(low: _LaneLowerer, out: _Emitter):
            temps = []   # unconditional commits: (slot, temp)
            holds = []   # guarded commits: (sel_name, [(slot, temp)])
            for flat in regs:
                slots = bit_slots[flat.path]
                scope = flat.scope
                for group in _hold_groups(flat):
                    if group[0] == "plain":
                        __, start, stop = group
                        for b in range(start, stop):
                            src, ___ = low.lower(flat.next_expr, scope, b)
                            temp = out.temp("_n")
                            temps.append((slots[b], temp))
                            out.w(f"    {temp} = {src}"
                                  f"  # next {flat.path}[{b}]")
                        continue
                    __, node, start, stop = group
                    ssrc, ___ = low.lower(node.sel, scope, 0)
                    sel = out.temp("_g")
                    out.w(f"    {sel} = {ssrc}"
                          f"  # load {flat.path}[{start}:{stop}]")
                    out.w(f"    if {sel}:")
                    # the guarded block gets its own lowerer: its temps
                    # must never leak to (possibly unguarded) later code
                    block = _LaneLowerer(out, bit_slots, low.record, {},
                                         indent="        ")
                    pairs = []
                    for b in range(start, stop):
                        ___, nb = _route(flat.next_expr, b)
                        tsrc, ___ = block.lower(node.if_true, scope, nb)
                        temp = out.temp("_h")
                        out.w(f"        {temp} = {tsrc}")
                        pairs.append((slots[b], temp))
                    holds.append((sel, pairs))
            return temps, holds

        edge_counts: dict = {}
        trial = _Emitter()
        next_state(_LaneLowerer(trial, bit_slots, True, edge_counts), trial)
        emit.w()
        emit.w(f"def {name}(v, fired, ctx):")
        mark = len(emit.lines)
        temps, holds = next_state(
            _LaneLowerer(emit, bit_slots, False, edge_counts), emit)
        for slot, temp in temps:
            flags = watched_slots.get(slot)
            if flags is None:
                emit.w(f"    v[{slot}] = {temp}")
            else:
                # a watched bit raises its guards' flags, but only on a
                # real change -- commits are unconditional every edge
                emit.w(f"    if v[{slot}] != {temp}:")
                emit.w(f"        v[{slot}] = {temp}")
                for flag in flags:
                    emit.w(f"        ctx[{flag}] = 1")
        for sel, pairs in holds:
            # lanes that assert the load take the sampled value, the
            # rest hold -- one guard skips the whole group when idle
            emit.w(f"    if {sel}:")
            gn = emit.temp("_gn")
            emit.w(f"        {gn} = {sel} ^ M")
            for slot, temp in pairs:
                emit.w(f"        v[{slot}] = ({temp} & {sel})"
                       f" | (v[{slot}] & {gn})")
            hold_flags: dict = {}
            for slot, __t in pairs:
                for flag in watched_slots.get(slot, ()):
                    hold_flags[flag] = True
            for flag in hold_flags:
                emit.w(f"        ctx[{flag}] = 1")
        emit.w("    settle(v, ctx)")
        for index, monitor in enumerate(design.monitors):
            if monitor.clock != edge:
                continue
            fire_slot = bit_slots[monitor.fire.path][0]
            word = emit.temp("_m")
            emit.w(f"    {word} = v[{fire_slot}]  # {monitor.name}")
            emit.w(f"    if {word}:")
            emit.w(f"        fired.append(({index}, {word}))")
        work[edge] = work["settle"] + _count_work(emit.lines, mark)

    source = "\n".join(emit.lines) + "\n"
    lane_mask = (1 << lanes) - 1
    namespace: dict = {
        "__builtins__": {},
        "M": lane_mask,
        "_conflict": _make_conflict(tuple(conflict_paths)),
    }
    exec(compile(source, "<repro.rtl.bitsim>", "exec"), namespace)

    init = [0] * num_bit_slots
    for flat in design.regs:
        slots = bit_slots[flat.path]
        for b in range(flat.width):
            if (flat.init >> b) & 1:
                init[slots[b]] = lane_mask
    return BitparDesign(
        design,
        lanes,
        detect_bus_conflicts,
        namespace["settle"],
        {edge: namespace[name] for edge, name in step_names.items()},
        tuple(init),
        source,
        bit_slots,
        num_bit_slots,
        work,
        len(guarded),
        watched,
    )
