"""Compiled-simulation backend: codegen a :class:`FlatDesign` to Python.

The interpreted simulator re-walks every expression tree through virtual
``evaluate(read)`` calls on each edge, paying a closure allocation per
register and a dict lookup per net read.  This module does what a
Verilator-style compiled simulator does at a smaller scale: it walks the
flattened netlist **once**, lowers every expression to inline Python
source over a flat slot array ``v`` (``v[slot]`` per net, no dicts, no
closures), and compiles the result with ``compile()``/``exec()`` into

* one ``settle(v)`` function -- the combinational nets in topological
  order, each a single ``v[slot] = <expr>`` statement (tristate nets
  lower to ``if``/``elif`` priority ladders, mirroring the interpreter's
  driver ordering and conflict detection);
* one ``step_<edge>(v, fired)`` function per clock edge (``step_K``,
  ``step_Ksharp``, ...) -- next-state temporaries, simultaneous commit,
  a ``settle`` call, then the edge's assertion monitors lowered to
  inline guard checks appending monitor indices to ``fired``.

Lowering performs constant folding (any subtree without net references
becomes a literal) and width-mask elision: the invariant is that every
emitted expression already fits its declared width, so masks are only
materialised where an operator can overflow it (``~``, ``+``, inner
slices) -- exactly the places the interpreter masks too, which keeps the
two backends bit-identical.
"""

from __future__ import annotations

from typing import Callable, Optional

from .hdl import (
    BinOp,
    Concat,
    Const,
    Expr,
    HdlError,
    Mux,
    Net,
    Reduce,
    Ref,
    Slice,
    UnOp,
)
from .netlist import FlatDesign, FlatNet

__all__ = ["CompiledDesign", "compile_design", "mangle_edge"]


def _mask(width: int) -> int:
    return (1 << width) - 1


def mangle_edge(edge: str) -> str:
    """A Python-identifier-safe rendering of a clock edge name."""
    out = []
    for ch in edge:
        if ch.isalnum():
            out.append(ch)
        elif ch == "#":
            out.append("sharp")
        else:
            out.append("_")
    return "".join(out) or "edge"


# ----------------------------------------------------------------------
# expression lowering
# ----------------------------------------------------------------------
def _lower(expr: Expr, scope: dict[Net, FlatNet]) -> tuple[str, Optional[int]]:
    """Lower ``expr`` to ``(source, const_value)``.

    ``const_value`` is the statically known value when the subtree folds
    to a constant (``source`` is then its literal).  The emitted source is
    always parenthesised or atomic, and its run-time value is guaranteed
    to fit ``expr.width`` -- the same invariant the interpreter maintains
    for stored net values.
    """
    if isinstance(expr, Const):
        return str(expr.value), expr.value
    if isinstance(expr, Ref):
        flat = scope.get(expr.net)
        if flat is None:
            raise HdlError(
                f"net {expr.net.name} referenced by compiled expression "
                "is not in scope"
            )
        return f"v[{flat.slot}]", None
    if isinstance(expr, UnOp):
        a, ac = _lower(expr.a, scope)
        mask = _mask(expr.width)
        if ac is not None:
            value = (~ac) & mask
            return str(value), value
        return f"(~{a} & {mask})", None
    if isinstance(expr, BinOp):
        return _lower_binop(expr, scope)
    if isinstance(expr, Mux):
        s, sc = _lower(expr.sel, scope)
        if sc is not None:
            return _lower(expr.if_true if sc else expr.if_false, scope)
        t, tc = _lower(expr.if_true, scope)
        f, fc = _lower(expr.if_false, scope)
        if tc is not None and tc == fc:
            return t, tc
        return f"({t} if {s} else {f})", None
    if isinstance(expr, Slice):
        a, ac = _lower(expr.a, scope)
        if ac is not None:
            value = (ac >> expr.lo) & _mask(expr.width)
            return str(value), value
        top = expr.hi == expr.a.width - 1
        if expr.lo == 0:
            return (a, None) if top else (f"({a} & {_mask(expr.width)})", None)
        if top:
            return f"({a} >> {expr.lo})", None
        return f"(({a} >> {expr.lo}) & {_mask(expr.width)})", None
    if isinstance(expr, Concat):
        shift = 0
        const_bits = 0
        terms = []
        for part in expr.parts:
            src, c = _lower(part, scope)
            if c is not None:
                const_bits |= c << shift
            else:
                terms.append(src if shift == 0 else f"({src} << {shift})")
            shift += part.width
        if not terms:
            return str(const_bits), const_bits
        if const_bits:
            terms.append(str(const_bits))
        if len(terms) == 1:
            return terms[0], None
        return "(" + " | ".join(terms) + ")", None
    if isinstance(expr, Reduce):
        a, ac = _lower(expr.a, scope)
        full = _mask(expr.a.width)
        if ac is not None:
            if expr.op == "xor":
                value = ac.bit_count() & 1
            elif expr.op == "or":
                value = 1 if ac else 0
            else:
                value = 1 if ac == full else 0
            return str(value), value
        if expr.a.width == 1:
            return a, None  # all three reductions are identity on one bit
        if expr.op == "xor":
            return f"(({a}).bit_count() & 1)", None
        if expr.op == "or":
            return f"(1 if {a} else 0)", None
        return f"(1 if {a} == {full} else 0)", None
    raise HdlError(
        f"compiled backend cannot lower expression {type(expr).__name__}"
    )


def _lower_binop(expr: BinOp, scope: dict[Net, FlatNet]) -> tuple[str, Optional[int]]:
    a, ac = _lower(expr.a, scope)
    b, bc = _lower(expr.b, scope)
    op = expr.op
    if ac is not None and bc is not None:
        if op == "and":
            value = ac & bc
        elif op == "or":
            value = ac | bc
        elif op == "xor":
            value = ac ^ bc
        elif op == "add":
            value = (ac + bc) & _mask(expr.width)
        else:
            value = 1 if ac == bc else 0
        return str(value), value
    full = _mask(expr.width)
    if op == "and":
        if ac == 0 or bc == 0:
            return "0", 0
        if ac == full:
            return b, None
        if bc == full:
            return a, None
        return f"({a} & {b})", None
    if op == "or":
        if ac == 0:
            return b, None
        if bc == 0:
            return a, None
        return f"({a} | {b})", None
    if op == "xor":
        if ac == 0:
            return b, None
        if bc == 0:
            return a, None
        return f"({a} ^ {b})", None
    if op == "add":
        if ac == 0:
            return b, None
        if bc == 0:
            return a, None
        return f"(({a} + {b}) & {full})", None
    return f"(1 if {a} == {b} else 0)", None


# ----------------------------------------------------------------------
# function codegen
# ----------------------------------------------------------------------
class _Emitter:
    """Accumulates source lines and fresh temporary names."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._temp = 0

    def w(self, line: str = "") -> None:
        self.lines.append(line)

    def temp(self, prefix: str = "_t") -> str:
        name = f"{prefix}{self._temp}"
        self._temp += 1
        return name


def _emit_comb(emit: _Emitter, flat: FlatNet, detect: bool,
               conflict_paths: list[str], indent: str = "    ") -> None:
    """One combinational net: plain assignment or tristate ladder."""
    if flat.tristate is None:
        assert flat.expr is not None
        src, __ = _lower(flat.expr, flat.scope)
        emit.w(f"{indent}v[{flat.slot}] = {src}  # {flat.path}")
        return
    drivers = flat.tristate
    values = [_lower(d.value, flat.scope)[0] for d in drivers]
    if detect:
        # evaluate every enable once, then check for multiple drivers
        # exactly like the interpreter (second enabled driver conflicts
        # before its value is computed)
        enables = []
        for driver in drivers:
            en_src, __ = _lower(driver.enable, flat.scope)
            name = emit.temp("_e")
            emit.w(f"{indent}{name} = {en_src}")
            enables.append(name)
        conflict_index = len(conflict_paths)
        conflict_paths.append(flat.path)
        for i, enable in enumerate(enables):
            kw = "if" if i == 0 else "elif"
            emit.w(f"{indent}{kw} {enable}:  # {flat.path}[{i}]")
            later = " or ".join(enables[i + 1:])
            if later:
                emit.w(f"{indent}    if {later}:")
                emit.w(f"{indent}        _conflict({conflict_index})")
            emit.w(f"{indent}    v[{flat.slot}] = {values[i]}")
        emit.w(f"{indent}else:")
        emit.w(f"{indent}    v[{flat.slot}] = 0")
    else:
        # first enabled driver wins; later enables are never evaluated
        # (the interpreter breaks out of its driver loop the same way)
        for i, driver in enumerate(drivers):
            en_src, __ = _lower(driver.enable, flat.scope)
            kw = "if" if i == 0 else "elif"
            emit.w(f"{indent}{kw} {en_src}:  # {flat.path}[{i}]")
            emit.w(f"{indent}    v[{flat.slot}] = {values[i]}")
        emit.w(f"{indent}else:")
        emit.w(f"{indent}    v[{flat.slot}] = 0")


def _make_conflict(paths: tuple[str, ...]) -> Callable[[int], None]:
    def _conflict(index: int) -> None:
        raise HdlError(
            f"bus conflict on {paths[index]}: multiple tristate "
            "drivers enabled"
        )

    return _conflict


class CompiledDesign:
    """The executable form of a flattened design.

    ``settle(v)`` re-evaluates all combinational nets in topological
    order; ``steps[edge](v, fired)`` applies one rising edge of the named
    clock (simultaneous register commit, settle, monitor guards --
    ``fired`` collects indices into ``design.monitors``).  ``init`` is
    the power-up value of every slot; ``source`` keeps the generated
    Python for inspection and tests.
    """

    __slots__ = ("design", "detect_bus_conflicts", "settle", "steps",
                 "init", "source")

    def __init__(self, design: FlatDesign, detect_bus_conflicts: bool,
                 settle: Callable, steps: dict[str, Callable],
                 init: tuple[int, ...], source: str):
        self.design = design
        self.detect_bus_conflicts = detect_bus_conflicts
        self.settle = settle
        self.steps = steps
        self.init = init
        self.source = source


def compile_design(design: FlatDesign,
                   detect_bus_conflicts: bool = True) -> CompiledDesign:
    """Lower ``design`` to compiled ``settle`` / per-edge step functions."""
    emit = _Emitter()
    conflict_paths: list[str] = []

    emit.w("def settle(v):")
    if design.comb_order:
        for flat in design.comb_order:
            _emit_comb(emit, flat, detect_bus_conflicts, conflict_paths)
    else:
        emit.w("    pass")

    edges = sorted(set(design.clocks)
                   | {monitor.clock for monitor in design.monitors})
    step_names: dict[str, str] = {}
    for edge in edges:
        name = f"step_{mangle_edge(edge)}"
        while name in step_names.values():  # distinct edges, same mangle
            name += "_"
        step_names[edge] = name
        emit.w()
        emit.w(f"def {name}(v, fired):")
        regs = [flat for flat in design.regs if flat.clock == edge]
        temps = []
        for flat in regs:
            src, __ = _lower(flat.next_expr, flat.scope)
            temp = emit.temp("_n")
            temps.append(temp)
            emit.w(f"    {temp} = {src}  # next {flat.path}")
        for flat, temp in zip(regs, temps):
            emit.w(f"    v[{flat.slot}] = {temp}")
        emit.w("    settle(v)")
        for index, monitor in enumerate(design.monitors):
            if monitor.clock != edge:
                continue
            emit.w(f"    if v[{monitor.fire.slot}]:")
            emit.w(f"        fired.append({index})  # {monitor.name}")

    source = "\n".join(emit.lines) + "\n"
    namespace: dict = {
        "__builtins__": {},
        "_conflict": _make_conflict(tuple(conflict_paths)),
    }
    exec(compile(source, "<repro.rtl.compile>", "exec"), namespace)

    init = [0] * design.num_slots
    for flat in design.regs:
        init[flat.slot] = flat.init
    return CompiledDesign(
        design,
        detect_bus_conflicts,
        namespace["settle"],
        {edge: namespace[name] for edge, name in step_names.items()},
        tuple(init),
        source,
    )
