"""Synchronous simulator for flattened RTL designs (three backends).

This plays the role of the commercial Verilog simulator in the paper's
Table 3 experiment: the design is evaluated at the bit level, gate by gate,
once per clock edge, with OVL assertion monitors loaded *as part of the
simulated design* (each monitor adds nets and registers to the netlist,
which is exactly the overhead the paper attributes to the OVL approach).

Three backends share the flat slot-array state representation:

* ``"compiled"`` (default) -- the design is lowered once to Python
  bytecode by :mod:`repro.rtl.compile`: one function per clock edge plus
  a ``settle`` function, with expressions inlined over the slot array
  (``FlatNet.slot`` indexes a flat ``list[int]``, one slot per net).
* ``"interp"`` -- the original tree-walking interpreter, kept as the
  executable reference semantics; the differential suite in
  ``tests/test_rtl_compiled.py`` holds the two bit-identical.
* ``"bitpar"`` -- the bit-parallel (PPSFP) codegen of
  :mod:`repro.rtl.bitsim`: the netlist is bit-sliced so each *bit* of
  each net holds one lane word whose bit *i* is that bit's value in
  independent simulation lane *i* (``lanes`` per pass, default 64).
  Lane 0 is held bit-identical to the compiled backend by
  ``tests/test_rtl_bitpar.py``; the other lanes carry faulty machines
  or alternative stimulus walks.

The simulator steps at half-cycle granularity.  With the LA-1 clock pair,
edge ``"K"`` is the rising edge of the K master clock and edge ``"K#"``
the rising edge of its complement; :meth:`RtlSimulator.cycle` performs one
full clock period (K edge then K# edge).
"""

from __future__ import annotations

from typing import Callable, Union

from .bitsim import compile_bitpar
from .compile import compile_design
from .hdl import HdlError, RtlModule
from .netlist import FlatDesign, FlatMonitor, FlatNet, elaborate

__all__ = ["AssertionFailure", "MonitorRecord", "RtlSimulator"]


class AssertionFailure(Exception):
    """Raised when a monitor of severity ``"error"`` fires and
    ``stop_on_failure`` is enabled."""

    def __init__(self, record: "MonitorRecord"):
        super().__init__(f"{record.name}: {record.message} (at edge {record.time})")
        self.record = record


class MonitorRecord:
    """One firing of an assertion monitor."""

    __slots__ = ("name", "message", "severity", "time", "edge")

    def __init__(self, name: str, message: str, severity: str, time: int, edge: str):
        self.name = name
        self.message = message
        self.severity = severity
        self.time = time
        self.edge = edge

    def __repr__(self):
        return (
            f"MonitorRecord({self.name!r}, {self.severity}, "
            f"edge={self.edge}@{self.time})"
        )


class _SlotValues:
    """Dict-like view of the slot array keyed by :class:`FlatNet`.

    Keeps ``sim.values[net]`` working (tracers and tests use it) now that
    the state of record is a flat ``list[int]`` indexed by ``net.slot``.
    """

    __slots__ = ("_v",)

    def __init__(self, v: list[int]):
        self._v = v

    def __getitem__(self, net: FlatNet) -> int:
        return self._v[net.slot]

    def __setitem__(self, net: FlatNet, value: int) -> None:
        self._v[net.slot] = value

    def __len__(self) -> int:
        return len(self._v)


class _LaneSlotValues:
    """The :class:`FlatNet`-keyed view for the bitpar backend.

    Reads assemble lane 0 (the golden lane) from the bit-sliced words;
    writes broadcast a scalar value into every lane, matching what
    :meth:`RtlSimulator.set_input` does for scalar drives.
    """

    __slots__ = ("_sim",)

    def __init__(self, sim: "RtlSimulator"):
        self._sim = sim

    def __getitem__(self, net: FlatNet) -> int:
        return self._sim.read_lane(net.path, 0)

    def __setitem__(self, net: FlatNet, value: int) -> None:
        self._sim._broadcast(net, value)

    def __len__(self) -> int:
        return len(self._sim.design.nets)


class RtlSimulator:
    """Evaluate a flattened RTL design edge by edge.

    Parameters
    ----------
    top:
        The top-level module (an :class:`RtlModule`) or an already
        elaborated :class:`FlatDesign`.
    stop_on_failure:
        When True, a firing monitor of severity ``"error"`` raises
        :class:`AssertionFailure`; otherwise failures are only recorded.
    detect_bus_conflicts:
        When True, two simultaneously enabled tristate drivers on one net
        raise :class:`HdlError` (a real bus would go ``X``).
    backend:
        ``"compiled"`` (default) runs the design through the code
        generator of :mod:`repro.rtl.compile`; ``"interp"`` walks the
        expression trees directly; ``"bitpar"`` runs ``lanes``
        independent simulations per pass over bit-sliced lane words
        (:mod:`repro.rtl.bitsim`).
    lanes:
        Number of parallel simulation lanes for ``backend="bitpar"``
        (ignored otherwise; :attr:`lanes` reads back 0 for the scalar
        backends).  Python ints are unbounded, so any positive count is
        legal; 64 keeps one native machine word per bit slot.
    """

    def __init__(
        self,
        top: Union[RtlModule, FlatDesign],
        stop_on_failure: bool = False,
        detect_bus_conflicts: bool = True,
        backend: str = "compiled",
        lanes: int = 64,
    ):
        if backend not in ("compiled", "interp", "bitpar"):
            raise HdlError(f"unknown simulator backend {backend!r}")
        self.design = top if isinstance(top, FlatDesign) else elaborate(top)
        self.backend = backend
        self.stop_on_failure = stop_on_failure
        self.detect_bus_conflicts = detect_bus_conflicts
        self._compiled = (
            compile_design(self.design, detect_bus_conflicts)
            if backend == "compiled"
            else None
        )
        self._bitpar = (
            compile_bitpar(self.design, detect_bus_conflicts, lanes)
            if backend == "bitpar"
            else None
        )
        self.lanes = lanes if backend == "bitpar" else 0
        self.lane_mask = self._bitpar.lane_mask if self._bitpar else 0
        self._slots: dict[str, int] = {
            path: flat.slot for path, flat in self.design.nets.items()
        }
        # lane-word accounting (cumulative across resets, like the
        # coverage counters below)
        self._lane_passes = 0
        self._words_evaluated = 0
        self._occupied_lanes = 0
        self._occupancy_passes = 0
        self.edge_count = 0
        self.failures: list[MonitorRecord] = []
        self.firings: list[MonitorRecord] = []
        self._edge_hooks: list[Callable[[str, "RtlSimulator"], None]] = []
        # coverage-probe accounting (cumulative across resets, like the
        # wall-clock of a campaign that reuses one simulator)
        self._cover_probe_calls = 0
        self._cover_collectors: list[object] = []
        self._cover_tracked_nets = 0
        self.reset()

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return every register to its init value and re-settle logic."""
        if self._bitpar is not None:
            self._v = list(self._bitpar.init)
            self.values = _LaneSlotValues(self)
            # ctx[0]: tristate conflict lane word; ctx[1:]: activity
            # guard flags, all raised so the first settle computes
            # every guarded net
            self._ctx = [0] + [1] * self._bitpar.num_guards
            self._lane_fire_words: dict[int, int] = {}
        else:
            v = [0] * self.design.num_slots
            for flat in self.design.regs:
                v[flat.slot] = flat.init
            self._v = v
            self.values = _SlotValues(v)
        self.edge_count = 0
        self.failures = []
        self.firings = []
        self._inputs_dirty = False
        self._settle()

    def _broadcast(self, flat: FlatNet, value: int) -> bool:
        """Drive ``value`` into every lane of a bit-sliced net; True when
        any lane word changed."""
        assert self._bitpar is not None
        slots = self._bitpar.bit_slots[flat.path]
        mask = self._bitpar.lane_mask
        v = self._v
        changed = False
        for b in range(flat.width):
            word = mask if (value >> b) & 1 else 0
            if v[slots[b]] != word:
                v[slots[b]] = word
                changed = True
        if changed:
            self._raise_guards(flat.path)
        return changed

    def _raise_guards(self, path: str) -> None:
        """Flag the activity guards watching ``path`` after an external
        write (input drive, fault force) changed one of its bits."""
        for flag in self._bitpar.state_guards.get(path, ()):
            self._ctx[flag] = 1

    def set_input(self, path: str, value: int) -> None:
        """Drive a free (testbench) input net by hierarchical path.

        On the bitpar backend the scalar value is broadcast into every
        lane (use :meth:`set_input_lanes` for per-lane stimulus).
        """
        flat = self.design.net(path)
        if flat.kind != "input":
            raise HdlError(f"{path} is not a free input ({flat.kind})")
        if value < 0 or value >= (1 << flat.width):
            raise HdlError(f"value {value} does not fit {flat.width}-bit {path}")
        if self._bitpar is not None:
            if self._broadcast(flat, value):
                self._inputs_dirty = True
            return
        if self._v[flat.slot] != value:
            self._v[flat.slot] = value
            self._inputs_dirty = True

    def set_input_lanes(self, path: str, values) -> None:
        """Drive one value per lane into a free input (bitpar only).

        ``values`` must hold exactly :attr:`lanes` ints; value *i* is
        packed into lane *i* of each of the net's bit words.
        """
        if self._bitpar is None:
            raise HdlError("set_input_lanes requires backend='bitpar'")
        flat = self.design.net(path)
        if flat.kind != "input":
            raise HdlError(f"{path} is not a free input ({flat.kind})")
        if len(values) != self.lanes:
            raise HdlError(
                f"expected {self.lanes} lane values for {path}, "
                f"got {len(values)}"
            )
        limit = 1 << flat.width
        for value in values:
            if value < 0 or value >= limit:
                raise HdlError(
                    f"value {value} does not fit {flat.width}-bit {path}")
        slots = self._bitpar.bit_slots[flat.path]
        v = self._v
        changed = False
        for b in range(flat.width):
            word = 0
            for lane, value in enumerate(values):
                word |= ((value >> b) & 1) << lane
            if v[slots[b]] != word:
                v[slots[b]] = word
                changed = True
        if changed:
            self._raise_guards(flat.path)
            self._inputs_dirty = True

    def read(self, path: str) -> int:
        """Read any flat net's current settled value by path.

        Pending input changes are settled lazily here, so a read of a
        combinational net immediately after :meth:`set_input` observes
        the updated logic rather than the pre-update values.  On the
        bitpar backend this returns lane 0 (the golden lane).
        """
        if self._inputs_dirty:
            self._settle()
            self._inputs_dirty = False
        if self._bitpar is not None:
            return self._assemble(path, 0)
        return self._v[self._slots[path]]

    def _assemble(self, path: str, lane: int) -> int:
        slots = self._bitpar.bit_slots[path]
        v = self._v
        value = 0
        for b, slot in enumerate(slots):
            value |= ((v[slot] >> lane) & 1) << b
        return value

    def read_lane(self, path: str, lane: int) -> int:
        """Read one lane's value of a net (bitpar only)."""
        if self._bitpar is None:
            raise HdlError("read_lane requires backend='bitpar'")
        if self._inputs_dirty:
            self._settle()
            self._inputs_dirty = False
        return self._assemble(path, lane)

    def read_lanes(self, path: str) -> list[int]:
        """Read every lane's value of a net as a list (bitpar only)."""
        if self._bitpar is None:
            raise HdlError("read_lanes requires backend='bitpar'")
        if self._inputs_dirty:
            self._settle()
            self._inputs_dirty = False
        v = self._v
        words = [v[slot] for slot in self._bitpar.bit_slots[path]]
        return [
            sum(((word >> lane) & 1) << b for b, word in enumerate(words))
            for lane in range(self.lanes)
        ]

    def lane_word(self, path: str, bit: int = 0) -> int:
        """The raw lane word of one bit of a net (bitpar only): bit *i*
        of the result is ``path[bit]`` in lane *i*."""
        if self._bitpar is None:
            raise HdlError("lane_word requires backend='bitpar'")
        if self._inputs_dirty:
            self._settle()
            self._inputs_dirty = False
        return self._v[self._bitpar.bit_slots[path][bit]]

    def add_edge_hook(self, hook: Callable[[str, "RtlSimulator"], None]) -> None:
        """Register ``hook(edge_name, sim)`` called after every edge settles."""
        self._edge_hooks.append(hook)

    def remove_edge_hook(self, hook: Callable[[str, "RtlSimulator"], None]) -> None:
        """Detach a hook registered with :meth:`add_edge_hook` (no-op if
        absent), so transient instrumentation such as fault injectors can
        release a shared simulator."""
        if hook in self._edge_hooks:
            self._edge_hooks.remove(hook)

    def _register_cover_collector(self, collector: object,
                                  tracked_nets: int) -> None:
        """Bookkeeping entry point for :mod:`repro.cover` collectors so
        probe overhead shows up in :meth:`stats`."""
        if collector not in self._cover_collectors:
            self._cover_collectors.append(collector)
            self._cover_tracked_nets += tracked_nets

    def _unregister_cover_collector(self, collector: object,
                                    tracked_nets: int) -> None:
        if collector in self._cover_collectors:
            self._cover_collectors.remove(collector)
            self._cover_tracked_nets -= tracked_nets

    #: the stats() schema shared by both backends -- every key is present
    #: for backend="interp" and backend="compiled" alike, so campaign and
    #: flow reports can be compared across backends without key checks
    STATS_KEYS = (
        "nets", "inputs", "comb", "regs", "state_bits", "monitors",
        "backend", "edges", "firings", "failures",
        "cover_probe_calls", "cover_tracked_nets", "cover_collectors",
        "lanes", "lane_passes", "words_evaluated", "lane_utilization",
    )

    def note_pass_occupancy(self, occupied: int) -> None:
        """Record how many lanes of one campaign-level pass carried live
        work (golden + fault/pattern lanes); feeds ``lane_utilization``.

        The simulator cannot see occupancy itself -- every lane word is
        always evaluated -- so the batching layer reports it per pass.
        """
        budget = self.lanes or 1
        self._occupied_lanes += max(0, min(occupied, budget))
        self._occupancy_passes += 1

    def stats(self) -> dict:
        """Design-size and run accounting for flow/campaign reports.

        The returned dict has exactly the keys of :data:`STATS_KEYS`,
        independent of the backend: design size from
        :meth:`FlatDesign.stats`, run accounting (``edges``,
        ``firings``, ``failures``), and the coverage-probe overhead
        counters (``cover_probe_calls`` -- cumulative probe invocations
        across resets; ``cover_tracked_nets`` / ``cover_collectors`` --
        currently attached instrumentation).
        """
        stats = dict(self.design.stats())
        stats.update(
            backend=self.backend,
            edges=self.edge_count,
            firings=len(self.firings),
            failures=len(self.failures),
            cover_probe_calls=self._cover_probe_calls,
            cover_tracked_nets=self._cover_tracked_nets,
            cover_collectors=len(self._cover_collectors),
            # bit-parallel accounting: zero on the scalar backends so the
            # schema stays comparable across all three
            lanes=self.lanes,
            lane_passes=self._lane_passes,
            words_evaluated=self._words_evaluated,
            lane_utilization=(
                round(
                    self._occupied_lanes
                    / ((self.lanes or 1) * self._occupancy_passes),
                    4,
                )
                if self._occupancy_passes
                else 0.0
            ),
        )
        assert set(stats) == set(self.STATS_KEYS)
        return stats

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _eval_flat(self, flat: FlatNet) -> int:
        v = self._v
        scope = flat.scope
        read = lambda net: v[scope[net].slot]  # noqa: E731
        if flat.tristate is not None:
            driven = None
            for driver in flat.tristate:
                if driver.enable.evaluate(read):
                    if driven is not None and self.detect_bus_conflicts:
                        raise HdlError(
                            f"bus conflict on {flat.path}: multiple tristate "
                            "drivers enabled"
                        )
                    driven = driver.value.evaluate(read)
                    if not self.detect_bus_conflicts:
                        break
            return 0 if driven is None else driven
        assert flat.expr is not None
        return flat.expr.evaluate(read)

    def _settle(self) -> None:
        """Propagate combinational logic (single topological pass)."""
        if self._compiled is not None:
            self._compiled.settle(self._v)
            return
        if self._bitpar is not None:
            self._bitpar.settle(self._v, self._ctx)
            self._lane_passes += 1
            self._words_evaluated += self._bitpar.work["settle"]
            return
        v = self._v
        for flat in self.design.comb_order:
            v[flat.slot] = self._eval_flat(flat)

    def step(self, edge: str) -> None:
        """Apply one rising clock edge of domain ``edge``.

        Sequence: sample next-state of all regs in the domain from the
        currently settled values, commit them simultaneously, re-settle
        combinational logic, then check assertion monitors.
        """
        if self._inputs_dirty:
            self._settle()
            self._inputs_dirty = False
        if self._bitpar is not None:
            step_fn = self._bitpar.steps.get(edge)
            lane_fired: list[tuple[int, int]] = []
            if step_fn is not None:
                step_fn(self._v, lane_fired, self._ctx)
                self._words_evaluated += self._bitpar.work[edge]
            else:  # edge without regs or monitors: just re-settle
                self._bitpar.settle(self._v, self._ctx)
                self._words_evaluated += self._bitpar.work["settle"]
            self._lane_passes += 1
            self.edge_count += 1
            if lane_fired:
                self._record_lane_firings(lane_fired, edge)
        elif self._compiled is not None:
            step_fn = self._compiled.steps.get(edge)
            fired: list[int] = []
            if step_fn is not None:
                step_fn(self._v, fired)
            else:  # edge without regs or monitors: just re-settle
                self._compiled.settle(self._v)
            self.edge_count += 1
            if fired:
                self._record_firings(fired, edge)
        else:
            v = self._v
            nexts: list[tuple[FlatNet, int]] = []
            for flat in self.design.regs:
                if flat.clock != edge:
                    continue
                scope = flat.scope
                read = lambda net: v[scope[net].slot]  # noqa: E731
                assert flat.next_expr is not None
                nexts.append((flat, flat.next_expr.evaluate(read)))
            for flat, value in nexts:
                v[flat.slot] = value
            self._settle()
            self.edge_count += 1
            self._check_monitors(edge)
        for hook in self._edge_hooks:
            hook(edge, self)

    def cycle(self, n: int = 1) -> None:
        """Run ``n`` full clock periods (a K edge followed by a K# edge)."""
        for __ in range(n):
            self.step("K")
            self.step("K#")

    # ------------------------------------------------------------------
    # monitors
    # ------------------------------------------------------------------
    def _record(self, monitor: FlatMonitor, edge: str) -> None:
        record = MonitorRecord(
            monitor.name,
            monitor.message,
            monitor.severity,
            self.edge_count,
            edge,
        )
        self.firings.append(record)
        if monitor.severity == "error":
            self.failures.append(record)
            if self.stop_on_failure:
                raise AssertionFailure(record)

    def _record_firings(self, fired: list[int], edge: str) -> None:
        """Turn compiled-backend monitor indices into records."""
        monitors = self.design.monitors
        for index in fired:
            self._record(monitors[index], edge)

    def _record_lane_firings(self, fired: list[tuple[int, int]],
                             edge: str) -> None:
        """Bitpar firing handling: lane-0 firings become ordinary
        :class:`MonitorRecord` entries (so firings/failures/ok and
        ``stop_on_failure`` see exactly what the compiled backend sees),
        while the full lane words accumulate per monitor for per-lane
        verdicts."""
        monitors = self.design.monitors
        words = self._lane_fire_words
        for index, word in fired:
            words[index] = words.get(index, 0) | word
            if word & 1:
                self._record(monitors[index], edge)

    @property
    def conflict_lanes(self) -> int:
        """Lane word of tristate bus conflicts seen since reset (bitpar
        only; lane 0 conflicts raise instead, like the scalar backends)."""
        if self._bitpar is None:
            return 0
        if self._inputs_dirty:
            self._settle()
            self._inputs_dirty = False
        return self._ctx[0]

    def monitor_lane_word(self, index: int) -> int:
        """Accumulated fire word of monitor ``index`` since reset (bitpar
        only): bit *i* set means the monitor fired at least once in lane
        *i*."""
        if self._bitpar is None:
            raise HdlError("monitor_lane_word requires backend='bitpar'")
        return self._lane_fire_words.get(index, 0)

    def lane_failure_names(self, lane: int) -> list[str]:
        """Sorted names of error-severity monitors that fired in ``lane``
        at any point since reset (bitpar only)."""
        if self._bitpar is None:
            raise HdlError("lane_failure_names requires backend='bitpar'")
        mask = 1 << lane
        monitors = self.design.monitors
        return sorted({
            monitors[index].name
            for index, word in self._lane_fire_words.items()
            if word & mask and monitors[index].severity == "error"
        })

    def _check_monitors(self, edge: str) -> None:
        for monitor in self.design.monitors:
            if monitor.clock != edge:
                continue
            if self._v[monitor.fire.slot]:
                self._record(monitor, edge)

    @property
    def ok(self) -> bool:
        """True while no error-severity monitor has fired."""
        return not self.failures
