"""Minimal in-tree PEP 517 / PEP 660 build backend.

The reproduction environment is offline and has no ``wheel`` package, so
the standard setuptools editable-install path (``bdist_wheel``) is
unavailable.  This backend implements just enough of PEP 517/660 for
``pip install -e .`` and ``pip install .`` to work: it produces wheels by
hand (a wheel is only a zip archive with a ``*.dist-info`` directory).

It is intentionally specific to this project: package name ``repro``,
sources under ``src/``.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

NAME = "repro"
VERSION = "1.0.0"
DIST_INFO = f"{NAME}-{VERSION}.dist-info"
TAG = "py3-none-any"

METADATA = f"""Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: Reproduction of the DATE 2004 Look-Aside Interface design & verification methodology paper
Requires-Python: >=3.10
"""

WHEEL_FILE = f"""Wheel-Version: 1.0
Generator: _local_build (repro)
Root-Is-Purelib: true
Tag: {TAG}
"""


def _record_entry(arcname: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest()).rstrip(b"=")
    return f"{arcname},sha256={digest.decode()},{len(data)}"


def _write_wheel(wheel_directory: str, files: dict[str, bytes]) -> str:
    wheel_name = f"{NAME}-{VERSION}-{TAG}.whl"
    path = os.path.join(wheel_directory, wheel_name)
    record_lines = []
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
        for arcname, data in files.items():
            zf.writestr(arcname, data)
            record_lines.append(_record_entry(arcname, data))
        record_lines.append(f"{DIST_INFO}/RECORD,,")
        zf.writestr(f"{DIST_INFO}/RECORD", "\n".join(record_lines) + "\n")
    return wheel_name


def _dist_info_files() -> dict[str, bytes]:
    return {
        f"{DIST_INFO}/METADATA": METADATA.encode(),
        f"{DIST_INFO}/WHEEL": WHEEL_FILE.encode(),
    }


# ----------------------------------------------------------------------
# PEP 517 hooks
# ----------------------------------------------------------------------

def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    info_dir = os.path.join(metadata_directory, DIST_INFO)
    os.makedirs(info_dir, exist_ok=True)
    with open(os.path.join(info_dir, "METADATA"), "w") as fh:
        fh.write(METADATA)
    with open(os.path.join(info_dir, "WHEEL"), "w") as fh:
        fh.write(WHEEL_FILE)
    return DIST_INFO


prepare_metadata_for_build_editable = prepare_metadata_for_build_wheel


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    files = _dist_info_files()
    src_root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    for dirpath, __, filenames in os.walk(os.path.join(src_root, NAME)):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            full = os.path.join(dirpath, filename)
            arcname = os.path.relpath(full, src_root).replace(os.sep, "/")
            with open(full, "rb") as fh:
                files[arcname] = fh.read()
    return _write_wheel(wheel_directory, files)


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    src_root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    files = _dist_info_files()
    files[f"__editable__.{NAME}.pth"] = (src_root + "\n").encode()
    return _write_wheel(wheel_directory, files)


def build_sdist(sdist_directory, config_settings=None):
    raise NotImplementedError("sdist builds are not supported offline")
